//! The daemon core: admission, batch coalescing, execution, journaling,
//! and observability — everything except the transport.
//!
//! [`ServeCore`] is single-threaded and fully deterministic. The
//! reference and FM-index are loaded once (shared behind the
//! [`ReferenceSet`]'s internal `Arc`); each submitted job is validated
//! against the server's pinned limits, journaled, and queued; each
//! [`ServeCore::run_batch`] call fair-dequeues up to one run of
//! same-configuration jobs *per live device*, partitions the live
//! devices round-robin into disjoint subsets, and executes the groups
//! as independent scheduler batches whose simulated timelines overlap
//! (the clock advances by the slowest group's makespan, not the sum).
//! `--serial-batches` restores the one-batch-per-call behaviour.
//!
//! Per-job output is byte-identical to `repute map` on the same reads
//! and configuration by construction: mapping happens in the executor's
//! deterministic host phase (independent of batching, scheduling, and
//! faults), and the SAM assembly uses the same resolve-and-write path
//! as the batch CLI.
//!
//! # Fault tolerance
//!
//! The execution path is the fault-aware executor, armed with the
//! daemon's `--fault-plan` re-based onto each batch window
//! ([`FaultPlan::rebased`]). A [`DeviceHealth`] registry tracks every
//! device down the healthy → degraded → quarantined → lost ladder:
//! plan losses and retry-budget kill-escalations retire devices from
//! future scheduling, admission recomputes the queue bound and the
//! quarter-RAM batch cap from the survivors, and when the last device
//! dies the daemon turns `SERVICE_UNAVAILABLE`: queued jobs are
//! answered with a typed refusal and the transport drains and exits
//! instead of panicking. With `--shed-overdue`, a job whose deadline
//! expires while still queued is shed with a typed `DEADLINE_EXCEEDED`
//! (journaled, so a crash-resume replays the same refusals). Batch
//! records carry per-device fault/retry/migration provenance, so a
//! resume during a fault episode reconstructs health — and therefore
//! scheduling — bit-identically.

use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::Arc;

use repute_core::journal::Fnv64;
use repute_core::{
    map_scheduled_on_subset_traced, write_atomic, MappingRun, ReputeConfig, ReputeError,
    ReputeMapper, RunFingerprint, Schedule, ScheduleMode, DEFAULT_MAX_RETRIES,
};
use repute_eval::sam;
use repute_genome::DnaSeq;
use repute_hetsim::{DeviceHealth, FaultKind, FaultPlan, HealthState, LaunchErrorKind, Platform};
use repute_mappers::multiref::ReferenceSet;
use repute_mappers::{
    bwamem::BwaMemLike, coral::CoralLike, gem::GemLike, hobbes3::Hobbes3Like, razers3::Razers3Like,
    yara::YaraLike, Mapper, Mapping,
};
use repute_obs::json::JsonObject;
use repute_obs::trace::{device_pid, write_chrome_trace, SCHEDULER_PID};
use repute_obs::{Samples, SloReport, SloTracker, Span};
use repute_prefilter::{qgram, PrefilterMode};

use crate::admission::{AdmissionQueue, ConfigKey, JobSpec, TenantQuota, DEFAULT_QUEUE_CAPACITY};
use crate::envelope::{prefilter_code, resolve_reads, JobEnvelope, JobResponse, JobStatus};
use crate::journal::{
    BatchRecord, DeviceProvenance, JobJournal, JobResult, Recovered, ShedRecord, StateRecord,
};

/// Bytes one read's output occupies in a device result buffer (the
/// executor's `max_locations × 12` convention).
const BYTES_PER_LOCATION: usize = 12;

/// Admission limits the server pins; per-job overrides must stay inside
/// them.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeLimits {
    /// Largest read count a single job may carry; bigger jobs are
    /// `REJECTED` (they would not fit one scheduler batch). Clamped to
    /// the platform's quarter-RAM batch cap at server construction, and
    /// re-clamped to the *surviving* devices' cap as losses accrue.
    pub max_reads_per_job: usize,
    /// Largest per-job δ override accepted.
    pub max_delta: u32,
    /// Admission-queue capacity; a full queue answers `RETRY_LATER`.
    /// Scaled down proportionally as devices are lost.
    pub queue_capacity: usize,
}

impl Default for ServeLimits {
    fn default() -> ServeLimits {
        ServeLimits {
            max_reads_per_job: usize::MAX,
            max_delta: 16,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
        }
    }
}

/// Server configuration: mapping defaults, pinned limits, fairness
/// weights, fault injection, and observability switches.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Default error budget δ for jobs without an override.
    pub delta: u32,
    /// Minimum k-mer length `S_min` (server-pinned, not overridable).
    pub s_min: usize,
    /// Output-slot limit per read (server-pinned; also sets the batch
    /// cap via the executor's bytes-per-read convention).
    pub max_locations: usize,
    /// Default prefilter mode for jobs without an override.
    pub prefilter: PrefilterMode,
    /// Q-gram length of the bin prefilter.
    pub prefilter_q: usize,
    /// Reference bin width (bases) of the bin prefilter.
    pub prefilter_bin: usize,
    /// Multi-device scheduling policy of every batch.
    pub schedule: ScheduleMode,
    /// Host-thread cap of the executor (`0` = automatic).
    pub host_threads: usize,
    /// Transient-fault retry budget of every batch execution.
    pub max_retries: usize,
    /// Simulated device faults, in daemon simulated time (re-based onto
    /// each batch window). Host-crash events are refused at
    /// construction — crashes are the harness's job, not the plan's.
    pub fault_plan: FaultPlan,
    /// Shed queued jobs whose deadline has already passed with a typed
    /// `DEADLINE_EXCEEDED` instead of mapping them late.
    pub shed_overdue: bool,
    /// Execute independent same-configuration batches concurrently on
    /// disjoint device subsets (`false` = one batch at a time).
    pub concurrent_batches: bool,
    /// Collect per-batch and per-job trace spans.
    pub tracing: bool,
    /// Pinned admission limits.
    pub limits: ServeLimits,
    /// Weighted-fair tenant weights (unlisted tenants get 1.0).
    pub tenant_weights: Vec<(String, f64)>,
    /// Sliding-window read budgets per tenant (unlisted tenants are
    /// unbudgeted); an exceeded budget answers `QUOTA_EXCEEDED`.
    pub tenant_quotas: Vec<(String, u64)>,
    /// Length of the quota sliding window, in simulated seconds (also
    /// the SLO hit-rate window).
    pub quota_window_s: f64,
    /// Compact the journal once this many dead records accumulate
    /// (committed batches, shed commits, and their acceptance records);
    /// `0` disables compaction. Not part of the resume fingerprint — it
    /// is safe to change across restarts.
    pub journal_compact_threshold: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            delta: 5,
            s_min: 12,
            max_locations: 100,
            prefilter: PrefilterMode::None,
            prefilter_q: qgram::DEFAULT_Q,
            prefilter_bin: qgram::DEFAULT_BIN_WIDTH,
            schedule: ScheduleMode::Dynamic,
            host_threads: 0,
            max_retries: DEFAULT_MAX_RETRIES,
            fault_plan: FaultPlan::new(),
            shed_overdue: false,
            concurrent_batches: true,
            tracing: false,
            limits: ServeLimits::default(),
            tenant_weights: Vec::new(),
            tenant_quotas: Vec::new(),
            quota_window_s: 60.0,
            journal_compact_threshold: 0,
        }
    }
}

/// Monotone service counters, exported in the `serve` telemetry record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Jobs that passed admission (journaled and queued).
    pub accepted: u64,
    /// Jobs permanently refused (over-limit or malformed).
    pub rejected: u64,
    /// Jobs bounced by queue backpressure.
    pub retry_later: u64,
    /// Jobs refused because the tenant's sliding-window read budget was
    /// exhausted.
    pub quota_exceeded: u64,
    /// Jobs whose batch committed (responses produced).
    pub completed: u64,
    /// Completed jobs whose responses were replayed from the journal on
    /// resume instead of re-executed.
    pub replayed: u64,
    /// Scheduler batches committed.
    pub batches: u64,
    /// Journal compactions performed.
    pub compactions: u64,
    /// Client connections dropped after an I/O or protocol failure (the
    /// daemon keeps serving).
    pub connection_errors: u64,
    /// Spool inputs skipped because a response for them already existed
    /// (crash-window idempotence).
    pub spool_skipped: u64,
    /// Queued jobs shed with `DEADLINE_EXCEEDED` (`--shed-overdue`).
    pub shed: u64,
    /// Jobs answered `SERVICE_UNAVAILABLE` (all devices lost).
    pub unavailable: u64,
    /// Device faults observed across all committed batches.
    pub faults: u64,
    /// Kernel retries across all committed batches.
    pub retries: u64,
    /// Batches migrated off a lost device across all committed batches.
    pub migrated: u64,
}

/// Telemetry facts of one completed job.
#[derive(Debug, Clone, PartialEq)]
struct JobRecord {
    seq: u64,
    id: String,
    tenant: String,
    reads: u64,
    mappings: u64,
    batch: u64,
    latency_s: f64,
    replayed: bool,
}

impl JobRecord {
    fn to_json_line(&self) -> String {
        let mut obj = JsonObject::new();
        obj.str_field("type", "job");
        obj.u64_field("seq", self.seq);
        obj.str_field("id", &self.id);
        obj.str_field("tenant", &self.tenant);
        obj.u64_field("reads", self.reads);
        obj.u64_field("mappings", self.mappings);
        obj.u64_field("batch", self.batch);
        obj.f64_field("latency_s", self.latency_s);
        obj.bool_field("replayed", self.replayed);
        obj.finish()
    }
}

/// The refusal text of every `SERVICE_UNAVAILABLE` response — one
/// constant so live refusals and resume-era refusals stay
/// byte-identical.
const UNAVAILABLE_REASON: &str = "every simulated device has been lost; the daemon is draining";

/// The refusal text of a shed job (also used by resume replay — the
/// strings must match byte-for-byte for response-union identity).
fn shed_reason(deadline_s: f64, at_s: f64) -> String {
    format!("deadline {deadline_s:.3}s passed at {at_s:.3}s while the job was queued")
}

/// The mapping-as-a-service core (see the module docs).
pub struct ServeCore {
    set: ReferenceSet,
    platform: Platform,
    options: ServeOptions,
    /// Configured per-job read cap (full platform; journal identity).
    max_reads_per_job: usize,
    /// Live per-job read cap, re-clamped as devices are lost.
    live_max_reads: usize,
    health: DeviceHealth,
    unavailable: bool,
    queue: AdmissionQueue,
    quota: TenantQuota,
    slo: SloTracker,
    journal: Option<JobJournal>,
    next_seq: u64,
    sim_clock: f64,
    dead_records: usize,
    counters: ServeCounters,
    latency: Samples,
    jobs: Vec<JobRecord>,
    spans: Vec<Span>,
}

impl ServeCore {
    /// Builds the core: validates the default configuration and the
    /// fault plan, computes the platform batch cap, and sets up the
    /// admission queue. No journal is attached yet (see
    /// [`ServeCore::attach_journal`]).
    ///
    /// # Errors
    ///
    /// [`ReputeError::Config`] when the default δ/`S_min` combination is
    /// invalid, when the fault plan names a device the platform does not
    /// have or carries a host-crash event, or when the plan loses every
    /// device at time zero (nothing could ever be served).
    pub fn new(
        set: ReferenceSet,
        platform: Platform,
        options: ServeOptions,
    ) -> Result<ServeCore, ReputeError> {
        // Fail fast: the default config must be constructible, or every
        // default-config job would die at batch time.
        ReputeConfig::new(options.delta, options.s_min)
            .map_err(|e| ReputeError::Config(e.to_string()))?;
        if options.delta > options.limits.max_delta {
            return Err(ReputeError::Config(format!(
                "default delta {} exceeds --max-delta {}",
                options.delta, options.limits.max_delta
            )));
        }
        let n_dev = platform.devices().len();
        if let Some(max_dev) = options.fault_plan.max_device() {
            if max_dev >= n_dev {
                return Err(ReputeError::Config(format!(
                    "fault plan names device {max_dev} but the platform has {n_dev} devices"
                )));
            }
        }
        if options.fault_plan.host_crash_at().is_some() {
            return Err(ReputeError::Config(
                "host-crash fault events are not supported by serve (the journal models \
                 crashes; use --resume); use loss/degrade/transient device faults"
                    .to_string(),
            ));
        }
        let cap = platform
            .max_batch_items(options.max_locations * BYTES_PER_LOCATION)
            .max(1);
        let max_reads_per_job = options.limits.max_reads_per_job.min(cap);
        let queue = AdmissionQueue::new(options.limits.queue_capacity, &options.tenant_weights);
        let quota = TenantQuota::new(options.quota_window_s, &options.tenant_quotas);
        let slo = SloTracker::new(options.quota_window_s);
        let health = DeviceHealth::new(n_dev);
        let mut core = ServeCore {
            set,
            platform,
            options,
            max_reads_per_job,
            live_max_reads: max_reads_per_job,
            health,
            unavailable: false,
            queue,
            quota,
            slo,
            journal: None,
            next_seq: 0,
            sim_clock: 0.0,
            dead_records: 0,
            counters: ServeCounters::default(),
            latency: Samples::new(),
            jobs: Vec::new(),
            spans: Vec::new(),
        };
        // Losses the plan schedules at t = 0 shrink admission before the
        // first job ever arrives; a plan that leaves nothing alive is a
        // configuration error, not a serving state.
        core.observe_plan_faults(0.0);
        if core.health.none_live() {
            return Err(ReputeError::Config(
                "the fault plan loses every device at time zero; nothing could be served"
                    .to_string(),
            ));
        }
        Ok(core)
    }

    /// The config/limits identity of this server. A journal written
    /// under a different reference, platform, limit set, fairness
    /// table, or fault plan is refused on resume.
    pub fn fingerprint(&self) -> RunFingerprint {
        let mut cfg = Fnv64::new();
        cfg.write(self.platform.name().as_bytes());
        cfg.write_u64(u64::from(self.options.delta));
        cfg.write_u64(self.options.s_min as u64);
        cfg.write_u64(self.options.max_locations as u64);
        cfg.write_u64(u64::from(prefilter_code(self.options.prefilter)));
        cfg.write_u64(self.options.prefilter_q as u64);
        cfg.write_u64(self.options.prefilter_bin as u64);
        cfg.write_u64(match self.options.schedule {
            ScheduleMode::Static => 0,
            ScheduleMode::Dynamic => 1,
        });
        cfg.write_u64(self.options.host_threads as u64);
        cfg.write_u64(self.options.max_retries as u64);
        cfg.write_u64(u64::from(self.options.limits.max_delta));
        cfg.write_u64(self.max_reads_per_job as u64);
        // The fault plan and the degradation switches change batch
        // composition and responses, so they are journal identity.
        cfg.write_u64(self.options.fault_plan.events().len() as u64);
        for event in self.options.fault_plan.events() {
            cfg.write_u64(event.device as u64);
            cfg.write_u64(event.at_seconds.to_bits());
            match event.kind {
                FaultKind::Transient => cfg.write_u64(1),
                FaultKind::Loss => cfg.write_u64(2),
                FaultKind::HostCrash => cfg.write_u64(3),
                FaultKind::Degrade { factor } => {
                    cfg.write_u64(4);
                    cfg.write_u64(factor.to_bits());
                }
            }
        }
        cfg.write_u64(u64::from(self.options.shed_overdue));
        cfg.write_u64(u64::from(self.options.concurrent_batches));
        for (name, weight) in &self.options.tenant_weights {
            cfg.write(name.as_bytes());
            cfg.write_u64(weight.to_bits());
        }
        // Quota budgets change which jobs get admitted, so they are part
        // of the journal identity (the compaction threshold is not: it
        // only changes *when* dead bytes are dropped, never a response).
        cfg.write_u64(self.options.quota_window_s.to_bits());
        for (name, budget) in &self.options.tenant_quotas {
            cfg.write(name.as_bytes());
            cfg.write_u64(*budget);
        }
        let mut wl = Fnv64::new();
        for (name, len) in self.set.records() {
            wl.write(name.as_bytes());
            wl.write_u64(*len as u64);
        }
        RunFingerprint::new(cfg.finish(), wl.finish())
    }

    /// Attaches the crash-safe job journal. With `resume = false` a
    /// fresh journal is created (truncating any existing file). With
    /// `resume = true` the existing journal is replayed: committed jobs
    /// get their responses reconstructed from stored mappings
    /// (byte-identical, no re-execution — returned here), shed jobs get
    /// their typed `DEADLINE_EXCEEDED` refusals replayed, jobs accepted
    /// but not committed are re-queued in arrival order, and the
    /// simulated clock, batch counter, device health, and per-tenant
    /// fairness state continue exactly where the crashed daemon left
    /// them — so a resume during a fault episode schedules (and
    /// answers) bit-identically to the uninterrupted run.
    ///
    /// # Errors
    ///
    /// [`ReputeError::ResumeMismatch`] for a journal written by a
    /// different server configuration, [`ReputeError::JournalCorrupt`]
    /// for interior corruption, [`ReputeError::Io`] on filesystem
    /// failures.
    pub fn attach_journal(
        &mut self,
        path: &Path,
        resume: bool,
    ) -> Result<Vec<JobResponse>, ReputeError> {
        let fingerprint = self.fingerprint();
        let (journal, recovered) = if resume {
            JobJournal::open(path, &fingerprint)?
        } else {
            (
                JobJournal::create(path, &fingerprint)?,
                Recovered::default(),
            )
        };
        // A compacted journal opens with a state snapshot standing in
        // for the dead records it dropped: restore the clock, counters,
        // fairness service, device health, and quota window before
        // replaying frames.
        let state_next_seq = recovered.state.as_ref().map_or(0, |s| s.next_seq);
        if let Some(state) = &recovered.state {
            self.next_seq = state.next_seq;
            self.sim_clock = state.sim_clock;
            self.counters.accepted = state.accepted;
            self.counters.completed = state.completed;
            self.counters.replayed = state.replayed;
            self.counters.shed = state.shed;
            for (tenant, served) in &state.served {
                self.queue.set_served(tenant, *served);
            }
            for (seq, tenant, at, reads) in &state.quota {
                self.quota.restore(*seq, tenant, *at, *reads);
            }
            for &(device, code, faults) in &state.health {
                if let Some(hs) = HealthState::from_code(code) {
                    self.health.restore(device as usize, hs, faults);
                }
            }
            // Transient-fault totals are recoverable from the health
            // snapshot (both accumulate the same per-device counts);
            // retry/migration totals restart at the snapshot.
            self.counters.faults = state.health.iter().map(|&(_, _, f)| f).sum();
        }
        let mut by_seq: HashMap<u64, (u64, f64, &JobResult)> = HashMap::new();
        for batch in &recovered.batches {
            for job in &batch.jobs {
                by_seq.insert(job.seq, (batch.batch, batch.completion_s, job));
            }
        }
        // Shed commits name seqs that were refused, not completed.
        let mut shed_at: HashMap<u64, f64> = HashMap::new();
        for record in &recovered.shed {
            for seq in &record.seqs {
                shed_at.insert(*seq, record.at_s);
            }
        }
        let mut replayed = Vec::new();
        for job in &recovered.accepted {
            self.next_seq = self.next_seq.max(job.seq + 1);
            // Records below the snapshot's next_seq are live jobs the
            // compaction rewrote — the snapshot counters and quota
            // window already cover them (restore dedups by seq).
            if job.seq >= state_next_seq {
                self.counters.accepted += 1;
            }
            self.quota
                .restore(job.seq, &job.tenant, job.arrival_s, job.reads.len() as u64);
            if let Some(&at) = shed_at.get(&job.seq) {
                // Shed before the crash: replay the typed refusal
                // byte-for-byte (no re-queue, no fairness charge).
                self.counters.shed += 1;
                if let Some(deadline) = job.deadline_s {
                    self.slo.record(&job.tenant, at, false);
                    replayed.push(JobResponse::shed(
                        job.id.clone(),
                        job.seq,
                        job.reads.len() as u64,
                        JobStatus::DeadlineExceeded,
                        shed_reason(deadline, at),
                    ));
                }
                continue;
            }
            match by_seq.get(&job.seq) {
                Some((batch, completion, result)) => {
                    // Dispatched and committed before the crash: restore
                    // the fairness charge and replay the response.
                    self.queue.restore_served(&job.tenant, job.cost());
                    let response = self.job_response(job, &result.mappings, *batch, *completion)?;
                    self.finish_job(job, response.mappings, *batch, *completion, true);
                    replayed.push(response);
                }
                None => {
                    // Accepted but never committed: back in the queue.
                    // A resumed push bypasses the capacity gate, so a
                    // restart can never bounce already-accepted work.
                    let _ = self.queue.push(job.clone(), true);
                }
            }
        }
        let state_batches = recovered.state.as_ref().map_or(0, |s| s.batches);
        self.counters.batches = state_batches + recovered.batches.len() as u64;
        // Concurrent groups commit in group order, not completion order,
        // and shed commits carry their own timestamps: the resumed clock
        // is the max over everything durable, not the last frame.
        for batch in &recovered.batches {
            self.sim_clock = self.sim_clock.max(batch.completion_s);
        }
        for record in &recovered.shed {
            self.sim_clock = self.sim_clock.max(record.at_s);
        }
        // Re-observe fault provenance so device health — and therefore
        // capacity and scheduling — continues exactly as before the
        // crash (the ladder is monotone, so re-observation after a
        // snapshot restore is order-insensitive).
        for batch in &recovered.batches {
            for p in &batch.provenance {
                self.health.observe_faults(p.device as usize, p.faults);
                self.counters.faults += p.faults;
                self.counters.retries += p.retries;
                self.counters.migrated += p.migrated;
            }
            for &device in &batch.lost {
                self.health.observe_loss(device as usize);
            }
        }
        self.observe_plan_faults(self.sim_clock);
        // Replayed responses, their batch/shed frames, and their
        // acceptance records are dead the moment this returns; the
        // rewritten state frame stays live.
        self.dead_records = replayed.len() + recovered.batches.len() + recovered.shed.len();
        self.journal = Some(journal);
        Ok(replayed)
    }

    /// Submits one job. Returns `Ok(None)` when the job was accepted
    /// (its `OK` response comes from a later [`ServeCore::run_batch`] /
    /// [`ServeCore::drain`]) or `Ok(Some(refusal))` with a `REJECTED`,
    /// `RETRY_LATER`, `QUOTA_EXCEEDED`, or `SERVICE_UNAVAILABLE`
    /// response the transport should answer immediately.
    ///
    /// # Errors
    ///
    /// [`ReputeError::Io`] when journaling the acceptance fails — the
    /// daemon must not acknowledge work it cannot make durable.
    pub fn submit(
        &mut self,
        mut envelope: JobEnvelope,
    ) -> Result<Option<JobResponse>, ReputeError> {
        if self.unavailable || self.health.none_live() {
            self.unavailable = true;
            self.counters.unavailable += 1;
            return Ok(Some(JobResponse::refusal(
                envelope.id,
                JobStatus::ServiceUnavailable,
                UNAVAILABLE_REASON,
            )));
        }
        if let Err(e) = resolve_reads(&mut envelope) {
            self.counters.rejected += 1;
            return Ok(Some(JobResponse::refusal(
                envelope.id,
                JobStatus::Rejected,
                e.to_string(),
            )));
        }
        let delta = envelope.delta.unwrap_or(self.options.delta);
        if delta > self.options.limits.max_delta {
            self.counters.rejected += 1;
            return Ok(Some(JobResponse::refusal(
                envelope.id,
                JobStatus::Rejected,
                format!(
                    "delta {delta} exceeds the server limit {}",
                    self.options.limits.max_delta
                ),
            )));
        }
        if envelope.reads.len() > self.live_max_reads {
            self.counters.rejected += 1;
            return Ok(Some(JobResponse::refusal(
                envelope.id,
                JobStatus::Rejected,
                format!(
                    "job carries {} reads but the server accepts at most {} per job \
                     ({} of {} devices live)",
                    envelope.reads.len(),
                    self.live_max_reads,
                    self.health.live_count(),
                    self.health.len()
                ),
            )));
        }
        if let Err((used, budget)) = self.quota.check(
            &envelope.tenant,
            envelope.reads.len() as u64,
            self.sim_clock,
        ) {
            self.counters.quota_exceeded += 1;
            return Ok(Some(JobResponse::refusal(
                envelope.id,
                JobStatus::QuotaExceeded,
                format!(
                    "tenant '{}' has used {used} of {budget} reads in the current \
                     {:.0}s window; resubmit after the window slides",
                    envelope.tenant, self.options.quota_window_s
                ),
            )));
        }
        if self.queue.is_full() {
            self.counters.retry_later += 1;
            return Ok(Some(JobResponse::refusal(
                envelope.id,
                JobStatus::RetryLater,
                format!(
                    "admission queue is full ({} jobs); resubmit after the backlog drains",
                    self.queue.len()
                ),
            )));
        }
        let (read_ids, reads): (Vec<String>, Vec<DnaSeq>) = envelope.reads.into_iter().unzip();
        let job = JobSpec {
            seq: self.next_seq,
            id: envelope.id,
            tenant: envelope.tenant,
            key: ConfigKey {
                delta,
                prefilter: envelope.prefilter.unwrap_or(self.options.prefilter),
                mapper: envelope.mapper.unwrap_or_default(),
            },
            arrival_s: self.sim_clock,
            // The envelope's deadline is relative to admission; the
            // scheduler works in absolute simulated time.
            deadline_s: envelope.deadline_s.map(|d| self.sim_clock + d),
            priority: envelope.priority,
            read_ids,
            reads,
        };
        if let Some(journal) = &mut self.journal {
            journal.record_accepted(&job)?;
        }
        self.quota
            .book(job.seq, &job.tenant, job.reads.len() as u64, self.sim_clock);
        if let Err(job) = self.queue.push(job, false) {
            // Unreachable after the capacity check above; refuse rather
            // than panic if the invariant ever breaks.
            self.counters.retry_later += 1;
            return Ok(Some(JobResponse::refusal(
                job.id,
                JobStatus::RetryLater,
                "admission queue refused the job",
            )));
        }
        self.next_seq += 1;
        self.counters.accepted += 1;
        Ok(None)
    }

    /// Executes (and commits) the next round of scheduler batches — up
    /// to one per live device in concurrent mode, exactly one in serial
    /// mode; no-op on an empty queue. Returns the responses of the
    /// round's jobs, including any typed `DEADLINE_EXCEEDED` /
    /// `SERVICE_UNAVAILABLE` refusals.
    ///
    /// # Errors
    ///
    /// Propagates executor launch failures and journal I/O errors.
    pub fn run_batch(&mut self) -> Result<Vec<JobResponse>, ReputeError> {
        self.run_batch_impl(true)
    }

    /// Runs batches until the queue is empty (graceful drain). Returns
    /// every produced response in completion order.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ServeCore::run_batch`] failure.
    pub fn drain(&mut self) -> Result<Vec<JobResponse>, ReputeError> {
        let mut responses = Vec::new();
        while !self.queue.is_empty() {
            responses.extend(self.run_batch()?);
        }
        Ok(responses)
    }

    /// Fair-dequeues up to one maximal run of same-configuration jobs
    /// per live device (one in serial mode), partitions the live
    /// devices round-robin into disjoint subsets, executes the groups
    /// as independent scheduler batches sharing one start time, and —
    /// when `commit` is true — journals them in group order, advances
    /// the clock by the slowest group's makespan, and records
    /// telemetry. `commit = false` models a crash after the work
    /// started but before the commit: the jobs have left the queue and
    /// nothing is durable, so a resume re-executes exactly this round
    /// (the harness's `crash_mid_batch`).
    pub(crate) fn run_batch_impl(&mut self, commit: bool) -> Result<Vec<JobResponse>, ReputeError> {
        let now = self.sim_clock;
        // Plan faults that have already struck retire their devices
        // before dequeue — a lost device must not shape the partition.
        self.observe_plan_faults(now);
        if self.unavailable || self.health.none_live() {
            return self.go_unavailable(Vec::new());
        }
        let mut responses = Vec::new();
        if self.options.shed_overdue {
            responses.extend(self.shed_overdue_queued(now, commit)?);
        }

        // Group formation: each group is one maximal same-key run under
        // the surviving devices' quarter-RAM cap, fair-dequeued at the
        // shared start time.
        let live = self.health.live();
        let max_groups = if self.options.concurrent_batches {
            live.len()
        } else {
            1
        };
        let cap = self.live_max_reads.max(1);
        let mut groups: Vec<Vec<JobSpec>> = Vec::new();
        while groups.len() < max_groups {
            let Some(first) = self.queue.pop_fair(now) else {
                break;
            };
            let key = first.key;
            let mut total_reads = first.reads.len();
            let mut jobs = vec![first];
            while let Some(next) = self.queue.peek_fair(now) {
                if next.key != key || total_reads + next.reads.len() > cap {
                    break;
                }
                let Some(job) = self.queue.pop_fair(now) else {
                    break;
                };
                total_reads += job.reads.len();
                jobs.push(job);
            }
            groups.push(jobs);
        }
        if groups.is_empty() {
            return Ok(responses);
        }

        // Round-robin partition: group g owns the live devices at
        // positions ≡ g (mod k). Disjoint subsets, every group served.
        let k = groups.len();
        let subsets: Vec<Vec<usize>> = (0..k)
            .map(|g| {
                live.iter()
                    .copied()
                    .enumerate()
                    .filter_map(|(p, d)| (p % k == g).then_some(d))
                    .collect()
            })
            .collect();

        // Execute the groups host-sequentially (phase-1 mapping inside
        // each is host-parallel); their simulated timelines all start at
        // `now` and overlap. Device health evolves as each group's run
        // reports faults, so a loss in group g is visible to group g+1's
        // retry path but never re-partitions its planned subset.
        let start = now;
        let tracing = self.options.tracing;
        let mut group_runs: Vec<(Vec<JobSpec>, MappingRun)> = Vec::new();
        let mut doomed: Vec<JobSpec> = Vec::new();
        for (g, jobs) in groups.into_iter().enumerate() {
            if self.health.none_live() {
                doomed.extend(jobs);
                continue;
            }
            let key = jobs[0].key;
            let reads: Vec<DnaSeq> = jobs.iter().flat_map(|j| j.reads.iter().cloned()).collect();
            let config = self.batch_config(key)?;
            let threads = config.host_threads();
            let mapper = self.build_mapper(key, config);
            let mapper = mapper.as_ref();
            let plan = self.options.fault_plan.rebased(start);
            // The planned subset, pruned of devices an earlier group's
            // retry lost; a fully-dead subset falls back to whatever
            // still lives (documented timeline overlap).
            let mut subset: Vec<usize> = subsets[g]
                .iter()
                .copied()
                .filter(|&d| self.health.state(d).is_live())
                .collect();
            if subset.is_empty() {
                subset = self.health.live();
            }
            let run = loop {
                let schedule =
                    Schedule::for_config(&config, &self.sub_platform(&subset), reads.len());
                match map_scheduled_on_subset_traced(
                    &mapper,
                    &self.platform,
                    &subset,
                    &schedule,
                    threads,
                    &plan,
                    self.options.max_retries,
                    tracing,
                    &reads,
                ) {
                    Ok((run, _metrics)) => break Some(run),
                    Err(e) if matches!(e.kind(), LaunchErrorKind::AllDevicesLost { .. }) => {
                        // The whole subset died mid-run: retire it and
                        // retry the group from the same start time on
                        // the remaining fleet.
                        for &d in &subset {
                            self.health.observe_loss(d);
                        }
                        self.recompute_live_caps();
                        let survivors = self.health.live();
                        if survivors.is_empty() {
                            break None;
                        }
                        subset = survivors;
                    }
                    Err(e) => return Err(e.into()),
                }
            };
            match run {
                Some(run) => {
                    for (dr, fc) in run.device_runs.iter().zip(&run.fault_counters) {
                        if fc.faults > 0 {
                            self.health.observe_faults(dr.device, fc.faults);
                        }
                        self.counters.faults += fc.faults;
                        self.counters.retries += fc.retries;
                        self.counters.migrated += fc.migrated_batches;
                    }
                    for &d in &run.lost_devices {
                        self.health.observe_loss(d);
                    }
                    self.recompute_live_caps();
                    group_runs.push((jobs, run));
                }
                None => doomed.extend(jobs),
            }
        }

        // Commit phase, in group order (deterministic for any
        // --host-threads): journal frame, responses, telemetry.
        let base = self.counters.batches;
        let mut max_makespan = 0.0f64;
        let mut committed_jobs = 0usize;
        for (ordinal, (jobs, run)) in group_runs.iter().enumerate() {
            let batch_index = base + ordinal as u64;
            let completion = start + run.simulated_seconds;
            max_makespan = max_makespan.max(run.simulated_seconds);
            let mut provenance: BTreeMap<u32, DeviceProvenance> = BTreeMap::new();
            for (dr, fc) in run.device_runs.iter().zip(&run.fault_counters) {
                if fc.is_zero() {
                    continue;
                }
                let entry = provenance
                    .entry(dr.device as u32)
                    .or_insert(DeviceProvenance {
                        device: dr.device as u32,
                        faults: 0,
                        retries: 0,
                        migrated: 0,
                    });
                entry.faults += fc.faults;
                entry.retries += fc.retries;
                entry.migrated += fc.migrated_batches;
            }
            let mut record = BatchRecord {
                batch: batch_index,
                completion_s: completion,
                jobs: Vec::with_capacity(jobs.len()),
                lost: run.lost_devices.iter().map(|&d| d as u32).collect(),
                provenance: provenance.into_values().collect(),
            };
            let mut offset = 0usize;
            for job in jobs {
                let n = job.reads.len();
                let mappings: Vec<Vec<Mapping>> = run.outputs[offset..offset + n]
                    .iter()
                    .map(|o| o.mappings.clone())
                    .collect();
                offset += n;
                record.jobs.push(JobResult {
                    seq: job.seq,
                    mappings,
                });
            }
            if commit {
                if let Some(journal) = &mut self.journal {
                    journal.record_batch(&record)?;
                }
            }
            for (job, result) in jobs.iter().zip(&record.jobs) {
                let response = self.job_response(job, &result.mappings, batch_index, completion)?;
                if commit {
                    self.finish_job(job, response.mappings, batch_index, completion, false);
                }
                responses.push(response);
            }
            if commit && tracing {
                // Batch spans come out of the executor on a zero-based
                // clock; shift them onto the daemon's continuous one.
                for span in &run.trace {
                    let mut span = span.clone();
                    span.begin_seconds += start;
                    span.end_seconds += start;
                    self.spans.push(span);
                }
            }
            committed_jobs += jobs.len();
        }
        if commit && !group_runs.is_empty() {
            self.sim_clock = start + max_makespan;
            self.counters.batches += group_runs.len() as u64;
            // The round's acceptance records and batch frames are now
            // dead weight in the journal.
            self.dead_records += committed_jobs + group_runs.len();
            if self.options.journal_compact_threshold > 0
                && self.dead_records >= self.options.journal_compact_threshold
            {
                self.compact_journal()?;
            }
        }
        if !doomed.is_empty() || self.health.none_live() {
            responses.extend(self.go_unavailable(doomed)?);
        }
        Ok(responses)
    }

    /// Sheds every queued job whose deadline has passed at `now` with a
    /// typed `DEADLINE_EXCEEDED`, journaling the shed commit first so a
    /// crash-resume replays the same refusals.
    fn shed_overdue_queued(
        &mut self,
        now: f64,
        commit: bool,
    ) -> Result<Vec<JobResponse>, ReputeError> {
        let overdue = self.queue.take_overdue(now);
        if overdue.is_empty() {
            return Ok(Vec::new());
        }
        if commit {
            if let Some(journal) = &mut self.journal {
                journal.record_shed(&ShedRecord {
                    at_s: now,
                    seqs: overdue.iter().map(|j| j.seq).collect(),
                })?;
            }
            // The shed frame and the jobs' acceptance records are dead.
            self.dead_records += overdue.len() + 1;
        }
        let mut responses = Vec::with_capacity(overdue.len());
        for job in &overdue {
            let deadline = job.deadline_s.unwrap_or(now);
            if commit {
                self.counters.shed += 1;
                self.slo.record(&job.tenant, now, false);
            }
            responses.push(JobResponse::shed(
                job.id.clone(),
                job.seq,
                job.reads.len() as u64,
                JobStatus::DeadlineExceeded,
                shed_reason(deadline, now),
            ));
        }
        Ok(responses)
    }

    /// Enters (or continues) the unavailable state: `doomed` jobs and
    /// everything still queued are answered with a typed
    /// `SERVICE_UNAVAILABLE`; the transport sees
    /// [`ServeCore::is_unavailable`] and drains instead of panicking.
    fn go_unavailable(&mut self, doomed: Vec<JobSpec>) -> Result<Vec<JobResponse>, ReputeError> {
        self.unavailable = true;
        let mut refused = doomed;
        while let Some(job) = self.queue.pop_fair(self.sim_clock) {
            refused.push(job);
        }
        refused.sort_by_key(|j| j.seq);
        let mut responses = Vec::with_capacity(refused.len());
        for job in &refused {
            self.counters.unavailable += 1;
            if job.deadline_s.is_some() {
                self.slo.record(&job.tenant, self.sim_clock, false);
            }
            responses.push(JobResponse::shed(
                job.id.clone(),
                job.seq,
                job.reads.len() as u64,
                JobStatus::ServiceUnavailable,
                UNAVAILABLE_REASON,
            ));
        }
        Ok(responses)
    }

    /// Folds the fault plan's already-struck persistent faults into the
    /// health registry and recomputes the live capacity bounds.
    fn observe_plan_faults(&mut self, up_to_seconds: f64) {
        if !self.options.fault_plan.has_device_events() {
            return;
        }
        self.health
            .apply_plan(&self.options.fault_plan, up_to_seconds);
        self.recompute_live_caps();
    }

    /// Recomputes the per-job read cap (quarter-RAM cap of the smallest
    /// *surviving* device) and the admission-queue bound (scaled by the
    /// live-device fraction) after any health change.
    fn recompute_live_caps(&mut self) {
        let live = self.health.live();
        if live.is_empty() {
            self.unavailable = true;
            return;
        }
        let cap = self
            .sub_platform(&live)
            .max_batch_items(self.options.max_locations * BYTES_PER_LOCATION)
            .max(1);
        self.live_max_reads = self.options.limits.max_reads_per_job.min(cap);
        let total = self.health.len();
        let scaled = (self.options.limits.queue_capacity * live.len()).div_ceil(total);
        self.queue.set_capacity(scaled);
    }

    /// The sub-platform holding exactly the devices in `subset`
    /// (ascending global indices).
    fn sub_platform(&self, subset: &[usize]) -> Platform {
        Platform::new(
            self.platform.name(),
            self.platform.idle_power_w(),
            subset
                .iter()
                .map(|&d| self.platform.devices()[d].clone())
                .collect(),
        )
    }

    /// Compacts the journal down to a state snapshot plus the still-
    /// queued jobs' acceptance records (see [`JobJournal::compact`]).
    /// No-op without a journal. Returns whether a compaction ran.
    ///
    /// # Errors
    ///
    /// [`ReputeError::Io`] on filesystem failures.
    pub fn compact_journal(&mut self) -> Result<bool, ReputeError> {
        let fingerprint = self.fingerprint();
        let state = StateRecord {
            sim_clock: self.sim_clock,
            next_seq: self.next_seq,
            batches: self.counters.batches,
            accepted: self.counters.accepted,
            completed: self.counters.completed,
            replayed: self.counters.replayed,
            shed: self.counters.shed,
            served: self.queue.served_snapshot(),
            quota: self.quota.snapshot(self.sim_clock),
            health: self
                .health
                .snapshot()
                .iter()
                .enumerate()
                .map(|(device, &(state, faults))| (device as u32, state.code(), faults))
                .collect(),
        };
        let Some(journal) = &mut self.journal else {
            return Ok(false);
        };
        let live = self.queue.queued_snapshot();
        journal.compact(&fingerprint, &state, &live)?;
        self.dead_records = 0;
        self.counters.compactions += 1;
        Ok(true)
    }

    /// Current journal file size in bytes, when a journal is attached
    /// (compaction ablations assert the post-compaction bound).
    ///
    /// # Errors
    ///
    /// [`ReputeError::Io`] when the metadata read fails.
    pub fn journal_size_bytes(&self) -> Result<Option<u64>, ReputeError> {
        self.journal
            .as_ref()
            .map(JobJournal::size_bytes)
            .transpose()
    }

    /// Books one dropped client connection (transport layer).
    pub fn note_connection_error(&mut self) {
        self.counters.connection_errors += 1;
    }

    /// Books one spool input skipped for an already-present response
    /// (crash-window idempotence, transport layer).
    pub fn note_spool_skipped(&mut self) {
        self.counters.spool_skipped += 1;
    }

    /// Books a rejection issued by a transport before the envelope ever
    /// reached [`ServeCore::submit`] — an unparseable request line, a
    /// malformed spool file, or an unreadable one — so telemetry counts
    /// every refusal the daemon sent, not just validation failures.
    pub fn note_rejected(&mut self) {
        self.counters.rejected += 1;
    }

    /// Books a completed (or replayed) job into counters, latency
    /// samples, SLO outcomes, telemetry records, and the trace.
    fn finish_job(
        &mut self,
        job: &JobSpec,
        mappings: u64,
        batch: u64,
        completion: f64,
        replayed: bool,
    ) {
        let latency = completion - job.arrival_s;
        self.latency.record(latency);
        self.counters.completed += 1;
        if replayed {
            self.counters.replayed += 1;
        }
        if let Some(deadline) = job.deadline_s {
            self.slo
                .record(&job.tenant, completion, completion <= deadline);
        }
        self.jobs.push(JobRecord {
            seq: job.seq,
            id: job.id.clone(),
            tenant: job.tenant.clone(),
            reads: job.reads.len() as u64,
            mappings,
            batch,
            latency_s: latency,
            replayed,
        });
        if self.options.tracing {
            self.spans.push(
                Span::new(
                    format!("job {}", job.id),
                    "job",
                    SCHEDULER_PID,
                    job.arrival_s,
                    completion,
                )
                .on_tid(1)
                .arg_str("tenant", job.tenant.clone())
                .arg_u64("reads", job.reads.len() as u64)
                .arg_u64("batch", batch),
            );
        }
    }

    /// Assembles a job's `OK` response — the SAM block uses the same
    /// header/resolve/record path as `repute map`, so the bytes match
    /// the batch CLI on the same reads and configuration.
    fn job_response(
        &self,
        job: &JobSpec,
        raw: &[Vec<Mapping>],
        batch: u64,
        completion: f64,
    ) -> Result<JobResponse, ReputeError> {
        let names: Vec<&str> = self.set.records().iter().map(|(n, _)| n.as_str()).collect();
        let header: Vec<(&str, usize)> = self
            .set
            .records()
            .iter()
            .map(|(n, l)| (n.as_str(), *l))
            .collect();
        let mut out: Vec<u8> = Vec::new();
        sam::write_header_multi(&mut out, &header)?;
        let mut total_mappings = 0u64;
        for ((read_id, seq), mappings) in job.read_ids.iter().zip(&job.reads).zip(raw) {
            let resolved = self.set.resolve_mappings(seq.len(), mappings);
            total_mappings += resolved.len() as u64;
            sam::write_resolved_record(&mut out, &names, read_id, seq, &resolved, None)?;
        }
        Ok(JobResponse {
            id: job.id.clone(),
            seq: Some(job.seq),
            status: JobStatus::Ok,
            reason: None,
            reads: job.reads.len() as u64,
            mappings: total_mappings,
            batch: Some(batch),
            latency_s: Some(completion - job.arrival_s),
            sam: Some(String::from_utf8_lossy(&out).into_owned()),
        })
    }

    fn batch_config(&self, key: ConfigKey) -> Result<ReputeConfig, ReputeError> {
        Ok(ReputeConfig::new(key.delta, self.options.s_min)
            .map_err(|e| ReputeError::Config(e.to_string()))?
            .with_max_locations(self.options.max_locations)
            .with_prefilter(key.prefilter)
            .with_prefilter_qgram(self.options.prefilter_q, self.options.prefilter_bin)
            .with_schedule(self.options.schedule)
            .with_host_threads(self.options.host_threads)
            .with_max_retries(self.options.max_retries))
    }

    /// Instantiates the mapper a batch's configuration key selects;
    /// every kind shares the one `Arc`-held FM-index.
    fn build_mapper(&self, key: ConfigKey, config: ReputeConfig) -> Box<dyn Mapper> {
        use crate::envelope::MapperKind;
        let indexed = Arc::clone(self.set.indexed());
        let max_locations = self.options.max_locations;
        match key.mapper {
            MapperKind::Repute => Box::new(ReputeMapper::new(indexed, config)),
            MapperKind::Coral => Box::new(
                CoralLike::new(indexed, key.delta)
                    .with_s_min(self.options.s_min)
                    .with_max_locations(max_locations),
            ),
            MapperKind::Razers3 => {
                Box::new(Razers3Like::new(indexed, key.delta).with_max_locations(max_locations))
            }
            MapperKind::Hobbes3 => {
                Box::new(Hobbes3Like::new(indexed, key.delta).with_max_locations(max_locations))
            }
            MapperKind::Yara => {
                Box::new(YaraLike::new(indexed, key.delta).with_max_locations(max_locations))
            }
            MapperKind::Gem => {
                Box::new(GemLike::new(indexed, key.delta).with_max_locations(max_locations))
            }
            MapperKind::BwaMem => {
                Box::new(BwaMemLike::new(indexed).with_max_locations(max_locations))
            }
        }
    }

    /// Monotone service counters.
    pub fn counters(&self) -> ServeCounters {
        self.counters
    }

    /// The device-health registry (read-only).
    pub fn health(&self) -> &DeviceHealth {
        &self.health
    }

    /// True once every simulated device has been permanently lost: the
    /// daemon answers `SERVICE_UNAVAILABLE` and the transport should
    /// drain and exit.
    pub fn is_unavailable(&self) -> bool {
        self.unavailable
    }

    /// The per-job read cap currently enforced (shrinks and grows with
    /// the surviving devices' quarter-RAM cap).
    pub fn live_max_reads(&self) -> usize {
        self.live_max_reads
    }

    /// Per-tenant deadline SLO reports over the sliding quota window
    /// ending now, tenant name-sorted.
    pub fn slo_reports(&self) -> Vec<SloReport> {
        self.slo.clone().snapshot(self.sim_clock)
    }

    /// The acceptance seq assigned to the most recently accepted job
    /// (meaningful right after a [`ServeCore::submit`] that returned
    /// `Ok(None)`; transports use it to route the eventual response
    /// back to the submitting connection).
    pub fn last_accepted_seq(&self) -> u64 {
        self.next_seq.saturating_sub(1)
    }

    /// Jobs currently queued (the depth gauge's live value).
    pub fn queue_depth(&self) -> u64 {
        self.queue.len() as u64
    }

    /// Deepest the admission queue ever got.
    pub fn queue_depth_high_water(&self) -> u64 {
        self.queue.depth().high_water()
    }

    /// The simulated clock: every committed round advances it by its
    /// slowest group's makespan.
    pub fn simulated_seconds(&self) -> f64 {
        self.sim_clock
    }

    /// `(count, p50, p90, p99)` of per-job admission-to-completion
    /// latency, in simulated seconds.
    pub fn latency_percentiles(&self) -> (u64, f64, f64, f64) {
        let (p50, p90, p99) = self.latency.p50_p90_p99();
        (self.latency.count(), p50, p90, p99)
    }

    /// Every trace span collected so far (batch spans shifted onto the
    /// daemon clock, plus one `job` span per completed job).
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The service telemetry as JSON lines: one `job` record per
    /// completed job, the `serve` counter summary, a `latency` record
    /// (`stage: "job"`), and one `slo` record per tenant with deadline
    /// outcomes in the window — the shapes `repute stats` renders.
    pub fn telemetry_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for job in &self.jobs {
            out.extend_from_slice(job.to_json_line().as_bytes());
            out.push(b'\n');
        }
        let mut obj = JsonObject::new();
        obj.str_field("type", "serve");
        obj.u64_field("accepted", self.counters.accepted);
        obj.u64_field("rejected", self.counters.rejected);
        obj.u64_field("retry_later", self.counters.retry_later);
        obj.u64_field("quota_exceeded", self.counters.quota_exceeded);
        obj.u64_field("completed", self.counters.completed);
        obj.u64_field("replayed", self.counters.replayed);
        obj.u64_field("batches", self.counters.batches);
        obj.u64_field("compactions", self.counters.compactions);
        obj.u64_field("connection_errors", self.counters.connection_errors);
        obj.u64_field("spool_skipped", self.counters.spool_skipped);
        obj.u64_field("shed", self.counters.shed);
        obj.u64_field("unavailable", self.counters.unavailable);
        obj.u64_field("faults", self.counters.faults);
        obj.u64_field("retries", self.counters.retries);
        obj.u64_field("migrated", self.counters.migrated);
        obj.u64_field("devices_live", self.health.live_count() as u64);
        obj.u64_field("devices_lost", self.health.lost_count() as u64);
        obj.u64_field("queue_depth", self.queue_depth());
        obj.u64_field("queue_depth_max", self.queue_depth_high_water());
        obj.f64_field("simulated_seconds", self.sim_clock);
        out.extend_from_slice(obj.finish().as_bytes());
        out.push(b'\n');
        if !self.latency.is_empty() {
            let (p50, p90, p99) = self.latency.p50_p90_p99();
            let mut lat = JsonObject::new();
            lat.str_field("type", "latency");
            lat.str_field("stage", "job");
            lat.u64_field("count", self.latency.count());
            lat.f64_field("p50_s", p50);
            lat.f64_field("p90_s", p90);
            lat.f64_field("p99_s", p99);
            out.extend_from_slice(lat.finish().as_bytes());
            out.push(b'\n');
        }
        for report in self.slo_reports() {
            let mut slo = JsonObject::new();
            slo.str_field("type", "slo");
            slo.str_field("tenant", &report.tenant);
            slo.u64_field("met", report.met);
            slo.u64_field("missed", report.missed);
            slo.f64_field("hit_rate", report.hit_rate());
            slo.f64_field("window_s", self.options.quota_window_s);
            out.extend_from_slice(slo.finish().as_bytes());
            out.push(b'\n');
        }
        out
    }

    /// Writes the service telemetry to `path` (atomic rename).
    ///
    /// # Errors
    ///
    /// [`ReputeError::Io`] on filesystem failures.
    pub fn write_telemetry(&self, path: &Path) -> Result<(), ReputeError> {
        write_atomic(path, &self.telemetry_bytes())
    }

    /// Writes one `job-<seq>.jsonl` file per completed job into `dir`
    /// (creating it), the spool shape `repute stats --dir` merges.
    ///
    /// # Errors
    ///
    /// [`ReputeError::Io`] on filesystem failures.
    pub fn write_job_telemetry_dir(&self, dir: &Path) -> Result<(), ReputeError> {
        std::fs::create_dir_all(dir).map_err(|e| ReputeError::io_at(dir, e))?;
        for job in &self.jobs {
            let path = dir.join(format!("job-{:06}.jsonl", job.seq));
            let mut line = job.to_json_line().into_bytes();
            line.push(b'\n');
            write_atomic(&path, &line)?;
        }
        Ok(())
    }

    /// Writes the collected spans as Chrome-tracing JSON (atomic
    /// rename), with the same process table as the batch CLI: pid 0 is
    /// the scheduler, each simulated device gets its own pid.
    ///
    /// # Errors
    ///
    /// [`ReputeError::Io`] on filesystem failures.
    pub fn write_trace(&self, path: &Path) -> Result<(), ReputeError> {
        let mut processes = vec![(SCHEDULER_PID, "scheduler".to_string())];
        for (i, device) in self.platform.devices().iter().enumerate() {
            processes.push((
                device_pid(i),
                format!("{} [{}]", device.name(), device.kind().as_str()),
            ));
        }
        write_atomic(path, write_chrome_trace(&processes, &self.spans).as_bytes())
    }
}
