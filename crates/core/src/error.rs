//! The typed error taxonomy of the mapper's user-facing surfaces.
//!
//! Every failure a run can hit — bad configuration, malformed input,
//! filesystem trouble, a corrupt or mismatched checkpoint journal, the
//! platform losing every device, a simulated host crash — maps to one
//! [`ReputeError`] variant, and every variant maps to a distinct process
//! exit code ([`ReputeError::exit_code`]). The CLI threads this type
//! through all of its subcommands so that scripts (and the crash/resume
//! bench harness) can react to *what* failed without string-matching
//! stderr, and so that no user-facing path panics.

use std::error::Error;
use std::fmt;
use std::io;
use std::path::Path;

use repute_genome::GenomeError;
use repute_hetsim::{LaunchError, LaunchErrorKind};

/// Everything that can go wrong in a user-facing REPUTE run.
#[derive(Debug)]
pub enum ReputeError {
    /// Invalid configuration or command line (exit code 2).
    Config(String),
    /// Malformed input data — FASTA/FASTQ/index/telemetry (exit code 3).
    InputParse(String),
    /// Filesystem or pipe failure (exit code 4).
    Io {
        /// What the process was doing when the I/O failed.
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// A checkpoint journal failed validation: bad magic, a checksum
    /// mismatch below the manifest watermark, or an internally
    /// inconsistent record (exit code 5).
    JournalCorrupt(String),
    /// A journal was written by a different run: its config/workload
    /// fingerprint does not match the resume attempt (exit code 6).
    ResumeMismatch(String),
    /// The simulated platform lost devices beyond recovery (exit code 7).
    DeviceLoss(String),
    /// A simulated host crash stopped the run mid-journal; the journal
    /// holds `committed` of `total` batches and can be resumed (exit
    /// code 8).
    Interrupted {
        /// Simulated seconds at which the crash armed.
        at_seconds: f64,
        /// Batches durably committed to the journal before the crash.
        committed: usize,
        /// Total batches of the run.
        total: usize,
    },
}

impl ReputeError {
    /// The distinct process exit code of this failure class.
    pub fn exit_code(&self) -> u8 {
        match self {
            ReputeError::Config(_) => 2,
            ReputeError::InputParse(_) => 3,
            ReputeError::Io { .. } => 4,
            ReputeError::JournalCorrupt(_) => 5,
            ReputeError::ResumeMismatch(_) => 6,
            ReputeError::DeviceLoss(_) => 7,
            ReputeError::Interrupted { .. } => 8,
        }
    }

    /// An [`ReputeError::Io`] annotated with the path being touched.
    pub fn io_at(path: &Path, source: io::Error) -> ReputeError {
        ReputeError::Io {
            context: path.display().to_string(),
            source,
        }
    }
}

impl fmt::Display for ReputeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReputeError::Config(msg) => write!(f, "configuration error: {msg}"),
            ReputeError::InputParse(msg) => write!(f, "input parse error: {msg}"),
            ReputeError::Io { context, source } => write!(f, "i/o error ({context}): {source}"),
            ReputeError::JournalCorrupt(msg) => write!(f, "journal corrupt: {msg}"),
            ReputeError::ResumeMismatch(msg) => write!(f, "resume mismatch: {msg}"),
            ReputeError::DeviceLoss(msg) => write!(f, "device loss: {msg}"),
            ReputeError::Interrupted {
                at_seconds,
                committed,
                total,
            } => write!(
                f,
                "run interrupted by simulated host crash at {at_seconds:.6} s: \
                 {committed}/{total} batches journaled (resume with --resume)"
            ),
        }
    }
}

impl Error for ReputeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReputeError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for ReputeError {
    fn from(source: io::Error) -> ReputeError {
        ReputeError::Io {
            context: "i/o".to_string(),
            source,
        }
    }
}

impl From<GenomeError> for ReputeError {
    fn from(err: GenomeError) -> ReputeError {
        match err {
            GenomeError::Io(source) => ReputeError::Io {
                context: "reading sequence data".to_string(),
                source,
            },
            other => ReputeError::InputParse(other.to_string()),
        }
    }
}

impl From<LaunchError> for ReputeError {
    fn from(err: LaunchError) -> ReputeError {
        match err.kind() {
            LaunchErrorKind::InvalidDistribution => ReputeError::Config(err.to_string()),
            _ => ReputeError::DeviceLoss(err.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let errs = [
            ReputeError::Config("c".into()),
            ReputeError::InputParse("p".into()),
            ReputeError::Io {
                context: "x".into(),
                source: io::Error::other("boom"),
            },
            ReputeError::JournalCorrupt("j".into()),
            ReputeError::ResumeMismatch("r".into()),
            ReputeError::DeviceLoss("d".into()),
            ReputeError::Interrupted {
                at_seconds: 1.0,
                committed: 1,
                total: 2,
            },
        ];
        let mut codes: Vec<u8> = errs.iter().map(ReputeError::exit_code).collect();
        assert!(codes.iter().all(|&c| c >= 2), "0/1 are reserved: {codes:?}");
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errs.len(), "exit codes must be distinct");
    }

    #[test]
    fn conversions_classify_by_kind() {
        let io_err: ReputeError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert_eq!(io_err.exit_code(), 4);
        let parse: ReputeError = GenomeError::Format {
            line: 3,
            message: "bad".into(),
        }
        .into();
        assert_eq!(parse.exit_code(), 3);
        let genome_io: ReputeError = GenomeError::Io(io::Error::other("pipe")).into();
        assert_eq!(genome_io.exit_code(), 4);
        let config: ReputeError = LaunchError::from_message("no shares").into();
        assert_eq!(config.exit_code(), 2);
        let loss: ReputeError = LaunchError::all_devices_lost(0, 9).into();
        assert_eq!(loss.exit_code(), 7);
    }

    #[test]
    fn display_names_the_class() {
        assert!(ReputeError::JournalCorrupt("x".into())
            .to_string()
            .starts_with("journal corrupt"));
        let interrupted = ReputeError::Interrupted {
            at_seconds: 0.5,
            committed: 3,
            total: 8,
        };
        let text = interrupted.to_string();
        assert!(text.contains("3/8") && text.contains("--resume"), "{text}");
    }
}
