//! Crash-safe run journal: batch-granular checkpointing for long runs.
//!
//! Long mapping runs on embedded SoCs die to power loss and `kill -9`;
//! the journal bounds the cost of a host crash to at most one batch of
//! work. The design is write-ahead-log shaped:
//!
//! * The **journal file** starts with a fixed header (magic + the run's
//!   [`RunFingerprint`], CRC-protected) followed by length-prefixed,
//!   CRC32-checksummed records — one per completed batch, appended in
//!   global batch order and flushed (`sync_data`) before the batch counts
//!   as durable. A crash mid-append leaves at most one torn tail record,
//!   which recovery truncates.
//! * The **sidecar manifest** (`<journal>.manifest`) is rewritten via the
//!   write→flush→rename atomic-replace idiom every few commits. It
//!   carries the fingerprint and the durable record count — a watermark:
//!   recovery refuses to drop records *below* it (that would be silent
//!   data corruption, not a torn write).
//!
//! Record payloads serialise everything phase 1 of the two-phase executor
//! produces for a batch: per-read mappings, work and candidate counts
//! ([`MapOutput`]) plus the full per-read [`MapMetrics`] record — enough
//! to replay the batch without re-executing it, bit-identically.
//!
//! CRC32 (IEEE) and FNV-1a are implemented in-repo: the workspace is
//! hermetic and adds no dependencies.

use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

use repute_genome::Strand;
use repute_mappers::{MapOutput, Mapping};
use repute_obs::MapMetrics;

use crate::error::ReputeError;

/// Journal file magic: identifies the format and its version.
pub const JOURNAL_MAGIC: [u8; 8] = *b"RPJRNL01";

/// Fixed journal header length: magic + three fingerprint words + CRC32.
pub const JOURNAL_HEADER_LEN: usize = 8 + 3 * 8 + 4;

/// Sanity cap on a single record's payload (a batch of reads never comes
/// close; anything larger is a corrupt length prefix).
const MAX_RECORD_BYTES: u32 = 1 << 28;

// ---------------------------------------------------------------------
// Checksums and fingerprints (in-repo, dependency-free).
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE 802.3 polynomial, reflected) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// FNV-1a 64-bit streaming hasher — the fingerprint currency.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1_0000_0000_01b3);
        }
    }

    /// Folds one little-endian word into the hash.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// The identity of a run, for refusing mismatched resumes.
///
/// * `config` — every mapping parameter that can change output or
///   schedule (δ, S_min, location limit, prefilter settings, schedule
///   mode and batch size, mapper choice, platform name);
/// * `workload` — the reference and read content;
/// * `shape` — the derived batch decomposition (read count, batch
///   boundaries, share ownership), computed by the resumable executor.
///
/// A journal whose stored fingerprint differs in any component is a
/// [`ReputeError::ResumeMismatch`], never silently reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunFingerprint {
    /// Hash of the run configuration.
    pub config: u64,
    /// Hash of the reference and read content.
    pub workload: u64,
    /// Hash of the batch decomposition (filled by the executor).
    pub shape: u64,
}

impl RunFingerprint {
    /// A fingerprint with the config/workload components; `shape` is
    /// stamped by the resumable executor once the batch plan is known.
    pub fn new(config: u64, workload: u64) -> RunFingerprint {
        RunFingerprint {
            config,
            workload,
            shape: 0,
        }
    }

    /// Hex rendering used by the manifest and in mismatch messages.
    pub fn render(&self) -> String {
        format!(
            "{:016x}.{:016x}.{:016x}",
            self.config, self.workload, self.shape
        )
    }
}

// ---------------------------------------------------------------------
// Atomic file replacement.
// ---------------------------------------------------------------------

/// Writes `bytes` to `path` atomically: a sibling temp file is written,
/// flushed to disk, then renamed over the target. Readers observe either
/// the old content or the new, never a torn mix — the idiom behind the
/// journal manifest, `--metrics-out`, and file-bound SAM output.
///
/// # Errors
///
/// Returns [`ReputeError::Io`] naming the path on any filesystem error.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), ReputeError> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let io_err = |e| ReputeError::io_at(path, e);
    let mut file = File::create(&tmp).map_err(io_err)?;
    file.write_all(bytes).map_err(io_err)?;
    file.sync_all().map_err(io_err)?;
    drop(file);
    fs::rename(&tmp, path).map_err(io_err)?;
    Ok(())
}

// ---------------------------------------------------------------------
// Record codec.
// ---------------------------------------------------------------------

/// One journaled batch: its global index, read range, and the phase-1
/// results (per-read outputs and metric records).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRecord {
    /// Global batch index (records are appended in index order, so the
    /// journal always holds a prefix of the batch list).
    pub index: u32,
    /// First read of the batch (global read order, inclusive).
    pub lo: u64,
    /// One past the last read of the batch.
    pub hi: u64,
    /// Per-read mapping outputs, in read order within the batch.
    pub outputs: Vec<MapOutput>,
    /// Per-read metric records, parallel to `outputs`.
    pub metrics: Vec<MapMetrics>,
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        let s = self.take(4)?;
        Some(u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        let s = self.take(8)?;
        Some(u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn metrics_to_words(m: &MapMetrics) -> [u64; 13] {
    [
        m.seeds_selected,
        m.fm_extend_ops,
        m.fm_locate_ops,
        m.candidates_raw,
        m.candidates_merged,
        m.dp_cells,
        m.prefilter_tested,
        m.prefilter_rejected,
        m.prefilter_false_accepts,
        m.prefilter_words,
        m.verifications,
        m.word_updates,
        m.hits,
    ]
}

fn metrics_from_words(w: [u64; 13]) -> MapMetrics {
    MapMetrics {
        seeds_selected: w[0],
        fm_extend_ops: w[1],
        fm_locate_ops: w[2],
        candidates_raw: w[3],
        candidates_merged: w[4],
        dp_cells: w[5],
        prefilter_tested: w[6],
        prefilter_rejected: w[7],
        prefilter_false_accepts: w[8],
        prefilter_words: w[9],
        verifications: w[10],
        word_updates: w[11],
        hits: w[12],
    }
}

/// Encodes one batch record as a framed journal entry:
/// `[payload_len: u32][payload][crc32(payload): u32]`, all little-endian.
///
/// # Panics
///
/// Panics if `outputs`/`metrics` lengths disagree with `hi − lo` — that
/// is an executor bug, not an I/O condition.
pub fn encode_record(record: &BatchRecord) -> Vec<u8> {
    let reads = (record.hi - record.lo) as usize;
    assert_eq!(record.outputs.len(), reads, "outputs must cover the batch");
    assert_eq!(record.metrics.len(), reads, "metrics must cover the batch");
    let mut payload = Vec::with_capacity(32 + reads * 128);
    put_u32(&mut payload, record.index);
    put_u64(&mut payload, record.lo);
    put_u64(&mut payload, record.hi);
    for (out, m) in record.outputs.iter().zip(&record.metrics) {
        put_u32(&mut payload, out.mappings.len() as u32);
        for mapping in &out.mappings {
            put_u32(&mut payload, mapping.position);
            put_u32(&mut payload, mapping.distance);
            payload.push(match mapping.strand {
                Strand::Forward => 0,
                Strand::Reverse => 1,
            });
        }
        put_u64(&mut payload, out.work);
        put_u64(&mut payload, out.candidates);
        for word in metrics_to_words(m) {
            put_u64(&mut payload, word);
        }
    }
    let mut framed = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut framed, payload.len() as u32);
    let crc = crc32(&payload);
    framed.extend_from_slice(&payload);
    put_u32(&mut framed, crc);
    framed
}

fn decode_payload(payload: &[u8]) -> Option<BatchRecord> {
    let mut r = Reader::new(payload);
    let index = r.u32()?;
    let lo = r.u64()?;
    let hi = r.u64()?;
    if hi < lo {
        return None;
    }
    let reads = usize::try_from(hi - lo).ok()?;
    // Each read needs at least 4 + 16 + 13·8 bytes — reject corrupt
    // ranges before allocating.
    if reads > payload.len() / 124 + 1 {
        return None;
    }
    let mut outputs = Vec::with_capacity(reads);
    let mut metrics = Vec::with_capacity(reads);
    for _ in 0..reads {
        let n_mappings = r.u32()? as usize;
        if n_mappings > (payload.len() - r.pos) / 9 {
            return None;
        }
        let mut mappings = Vec::with_capacity(n_mappings);
        for _ in 0..n_mappings {
            let position = r.u32()?;
            let distance = r.u32()?;
            let strand = match r.u8()? {
                0 => Strand::Forward,
                1 => Strand::Reverse,
                _ => return None,
            };
            mappings.push(Mapping {
                position,
                strand,
                distance,
            });
        }
        let work = r.u64()?;
        let candidates = r.u64()?;
        outputs.push(MapOutput {
            mappings,
            work,
            candidates,
        });
        let mut words = [0u64; 13];
        for w in &mut words {
            *w = r.u64()?;
        }
        metrics.push(metrics_from_words(words));
    }
    if !r.done() {
        return None; // trailing garbage inside a CRC-valid frame
    }
    Some(BatchRecord {
        index,
        lo,
        hi,
        outputs,
        metrics,
    })
}

/// Decodes a stream of framed records, stopping at the first frame that
/// is truncated, fails its CRC, or does not parse. Returns the intact
/// prefix records and the number of bytes they occupy — the torn-tail
/// recovery primitive: everything past the returned offset is dropped.
pub fn decode_records(bytes: &[u8]) -> (Vec<BatchRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while let Some(len_bytes) = bytes.get(pos..pos + 4) {
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes"));
        if len > MAX_RECORD_BYTES {
            break;
        }
        let len = len as usize;
        let Some(payload) = bytes.get(pos + 4..pos + 4 + len) else {
            break;
        };
        let Some(crc_bytes) = bytes.get(pos + 4 + len..pos + 8 + len) else {
            break;
        };
        let stored_crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(payload) != stored_crc {
            break;
        }
        let Some(record) = decode_payload(payload) else {
            break;
        };
        records.push(record);
        pos += 8 + len;
    }
    (records, pos)
}

// ---------------------------------------------------------------------
// The journal file and its manifest.
// ---------------------------------------------------------------------

/// The manifest path of a journal: `<journal>.manifest`.
pub fn manifest_path(journal: &Path) -> PathBuf {
    let mut p = journal.as_os_str().to_os_string();
    p.push(".manifest");
    PathBuf::from(p)
}

/// A parsed sidecar manifest.
#[derive(Debug, Clone, PartialEq)]
struct Manifest {
    fingerprint: String,
    batches: u64,
    records: u64,
    complete: bool,
}

impl Manifest {
    fn render(fingerprint: &RunFingerprint, batches: u64, records: u64, complete: bool) -> String {
        let mut body = String::new();
        body.push_str("repute-journal v1\n");
        body.push_str(&format!("fingerprint {}\n", fingerprint.render()));
        body.push_str(&format!("batches {batches}\n"));
        body.push_str(&format!("records {records}\n"));
        body.push_str(&format!("complete {}\n", u8::from(complete)));
        let crc = crc32(body.as_bytes());
        body.push_str(&format!("crc {crc:08x}\n"));
        body
    }

    fn parse(text: &str) -> Result<Manifest, String> {
        let crc_line_start = text
            .rfind("crc ")
            .ok_or_else(|| "missing crc line".to_string())?;
        let body = &text[..crc_line_start];
        let stored = text[crc_line_start..]
            .trim_start_matches("crc ")
            .trim()
            .to_string();
        let computed = format!("{:08x}", crc32(body.as_bytes()));
        if stored != computed {
            return Err(format!("manifest crc {stored} != computed {computed}"));
        }
        let mut fingerprint = None;
        let mut batches = None;
        let mut records = None;
        let mut complete = None;
        for line in body.lines() {
            if let Some(v) = line.strip_prefix("fingerprint ") {
                fingerprint = Some(v.trim().to_string());
            } else if let Some(v) = line.strip_prefix("batches ") {
                batches = v.trim().parse::<u64>().ok();
            } else if let Some(v) = line.strip_prefix("records ") {
                records = v.trim().parse::<u64>().ok();
            } else if let Some(v) = line.strip_prefix("complete ") {
                complete = Some(v.trim() == "1");
            }
        }
        Ok(Manifest {
            fingerprint: fingerprint.ok_or("missing fingerprint")?,
            batches: batches.ok_or("missing batches")?,
            records: records.ok_or("missing records")?,
            complete: complete.ok_or("missing complete flag")?,
        })
    }
}

fn encode_header(fp: &RunFingerprint) -> [u8; JOURNAL_HEADER_LEN] {
    let mut header = [0u8; JOURNAL_HEADER_LEN];
    header[..8].copy_from_slice(&JOURNAL_MAGIC);
    header[8..16].copy_from_slice(&fp.config.to_le_bytes());
    header[16..24].copy_from_slice(&fp.workload.to_le_bytes());
    header[24..32].copy_from_slice(&fp.shape.to_le_bytes());
    let crc = crc32(&header[8..32]);
    header[32..36].copy_from_slice(&crc.to_le_bytes());
    header
}

/// An open run journal: an append handle plus the durable-record count.
#[derive(Debug)]
pub struct RunJournal {
    path: PathBuf,
    file: File,
    fingerprint: RunFingerprint,
    records: u64,
}

impl RunJournal {
    /// Opens (or creates) the journal at `path` for a run identified by
    /// `fingerprint`, replaying any durable records.
    ///
    /// Recovery semantics:
    /// * a torn tail record (truncated frame, failed CRC, unparseable
    ///   payload **above** the manifest watermark) is truncated away;
    /// * intact records must form a prefix of the batch list (indices
    ///   `0, 1, 2, …`) — anything else is [`ReputeError::JournalCorrupt`];
    /// * fewer intact records than the manifest's durable watermark is
    ///   [`ReputeError::JournalCorrupt`] (that data was promised);
    /// * a fingerprint mismatch in the header or manifest is
    ///   [`ReputeError::ResumeMismatch`].
    ///
    /// # Errors
    ///
    /// [`ReputeError::Io`] on filesystem failures, plus the corruption
    /// and mismatch classes above.
    pub fn open(
        path: &Path,
        fingerprint: &RunFingerprint,
    ) -> Result<(RunJournal, Vec<BatchRecord>), ReputeError> {
        let io_err = |e| ReputeError::io_at(path, e);
        let manifest = Self::load_manifest(path)?;
        if let Some(m) = &manifest {
            if m.fingerprint != fingerprint.render() {
                return Err(ReputeError::ResumeMismatch(format!(
                    "manifest fingerprint {} does not match this run's {} \
                     (different config, inputs, or schedule)",
                    m.fingerprint,
                    fingerprint.render()
                )));
            }
        }
        let watermark = manifest.as_ref().map_or(0, |m| m.records);

        if !path.exists() {
            if watermark > 0 {
                return Err(ReputeError::JournalCorrupt(format!(
                    "manifest promises {watermark} durable record(s) but the journal file \
                     {} is missing",
                    path.display()
                )));
            }
            let mut file = File::create(path).map_err(io_err)?;
            file.write_all(&encode_header(fingerprint))
                .map_err(io_err)?;
            file.sync_data().map_err(io_err)?;
            return Ok((
                RunJournal {
                    path: path.to_path_buf(),
                    file,
                    fingerprint: *fingerprint,
                    records: 0,
                },
                Vec::new(),
            ));
        }

        let mut bytes = Vec::new();
        File::open(path)
            .map_err(io_err)?
            .read_to_end(&mut bytes)
            .map_err(io_err)?;

        if bytes.len() < JOURNAL_HEADER_LEN {
            if watermark > 0 {
                return Err(ReputeError::JournalCorrupt(format!(
                    "journal {} is shorter than its header but the manifest promises \
                     {watermark} record(s)",
                    path.display()
                )));
            }
            // A crash during the very first header write: start over.
            let mut file = File::create(path).map_err(io_err)?;
            file.write_all(&encode_header(fingerprint))
                .map_err(io_err)?;
            file.sync_data().map_err(io_err)?;
            return Ok((
                RunJournal {
                    path: path.to_path_buf(),
                    file,
                    fingerprint: *fingerprint,
                    records: 0,
                },
                Vec::new(),
            ));
        }

        if bytes[..8] != JOURNAL_MAGIC {
            return Err(ReputeError::JournalCorrupt(format!(
                "{} is not a repute journal (bad magic)",
                path.display()
            )));
        }
        let stored_crc = u32::from_le_bytes(bytes[32..36].try_into().expect("4 bytes"));
        if crc32(&bytes[8..32]) != stored_crc {
            return Err(ReputeError::JournalCorrupt(format!(
                "journal {} header failed its checksum",
                path.display()
            )));
        }
        let stored = RunFingerprint {
            config: u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")),
            workload: u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")),
            shape: u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes")),
        };
        if stored != *fingerprint {
            return Err(ReputeError::ResumeMismatch(format!(
                "journal was written by run {} but this run is {} \
                 (different config, inputs, or schedule)",
                stored.render(),
                fingerprint.render()
            )));
        }

        let (records, consumed) = decode_records(&bytes[JOURNAL_HEADER_LEN..]);
        if (records.len() as u64) < watermark {
            return Err(ReputeError::JournalCorrupt(format!(
                "journal {} holds {} intact record(s) but the manifest promises {watermark} — \
                 a durable record was corrupted",
                path.display(),
                records.len()
            )));
        }
        for (i, record) in records.iter().enumerate() {
            if record.index as usize != i {
                return Err(ReputeError::JournalCorrupt(format!(
                    "journal record {i} carries batch index {} — records must form a \
                     batch-order prefix",
                    record.index
                )));
            }
        }

        let durable_len = (JOURNAL_HEADER_LEN + consumed) as u64;
        let file = OpenOptions::new().write(true).open(path).map_err(io_err)?;
        if durable_len < bytes.len() as u64 {
            // Torn tail: drop the partial frame.
            file.set_len(durable_len).map_err(io_err)?;
            file.sync_data().map_err(io_err)?;
        }
        let mut journal = RunJournal {
            path: path.to_path_buf(),
            file,
            fingerprint: *fingerprint,
            records: records.len() as u64,
        };
        {
            use std::io::Seek;
            journal
                .file
                .seek(std::io::SeekFrom::Start(durable_len))
                .map_err(io_err)?;
        }
        Ok((journal, records))
    }

    fn load_manifest(path: &Path) -> Result<Option<Manifest>, ReputeError> {
        let mpath = manifest_path(path);
        if !mpath.exists() {
            return Ok(None);
        }
        let text = fs::read_to_string(&mpath).map_err(|e| ReputeError::io_at(&mpath, e))?;
        Manifest::parse(&text).map(Some).map_err(|reason| {
            ReputeError::JournalCorrupt(format!(
                "manifest {} is malformed: {reason}",
                mpath.display()
            ))
        })
    }

    /// Number of durable records currently journaled.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Appends one batch record and flushes it to disk; the batch is
    /// durable when this returns.
    ///
    /// # Errors
    ///
    /// [`ReputeError::Io`] on write or sync failure.
    pub fn append(&mut self, record: &BatchRecord) -> Result<(), ReputeError> {
        let framed = encode_record(record);
        let io_err = |e| ReputeError::io_at(&self.path, e);
        self.file.write_all(&framed).map_err(io_err)?;
        self.file.sync_data().map_err(io_err)?;
        self.records += 1;
        Ok(())
    }

    /// Atomically rewrites the sidecar manifest with the current durable
    /// record count (the recovery watermark).
    ///
    /// # Errors
    ///
    /// [`ReputeError::Io`] on write or rename failure.
    pub fn commit_manifest(&self, total_batches: u64, complete: bool) -> Result<(), ReputeError> {
        let body = Manifest::render(&self.fingerprint, total_batches, self.records, complete);
        write_atomic(&manifest_path(&self.path), body.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(index: u32, lo: u64, reads: usize) -> BatchRecord {
        let outputs: Vec<MapOutput> = (0..reads)
            .map(|i| MapOutput {
                mappings: vec![Mapping {
                    position: (lo as u32) * 100 + i as u32,
                    strand: if i % 2 == 0 {
                        Strand::Forward
                    } else {
                        Strand::Reverse
                    },
                    distance: (i % 4) as u32,
                }],
                work: 100 + i as u64,
                candidates: 3,
            })
            .collect();
        let metrics: Vec<MapMetrics> = (0..reads)
            .map(|i| MapMetrics {
                seeds_selected: 4,
                fm_extend_ops: 10 + i as u64,
                word_updates: 7,
                hits: 1,
                ..MapMetrics::new()
            })
            .collect();
        BatchRecord {
            index,
            lo,
            hi: lo + reads as u64,
            outputs,
            metrics,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE check value: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_codec_round_trips() {
        let records = vec![
            sample_record(0, 0, 3),
            sample_record(1, 3, 1),
            sample_record(2, 4, 0),
        ];
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&encode_record(r));
        }
        let (decoded, consumed) = decode_records(&bytes);
        assert_eq!(decoded, records);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn truncation_keeps_intact_prefix() {
        let records = vec![sample_record(0, 0, 2), sample_record(1, 2, 2)];
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &records {
            bytes.extend_from_slice(&encode_record(r));
            boundaries.push(bytes.len());
        }
        for cut in 0..bytes.len() {
            let (decoded, consumed) = decode_records(&bytes[..cut]);
            let intact = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(decoded.len(), intact, "cut at {cut}");
            assert_eq!(consumed, boundaries[intact], "cut at {cut}");
            assert_eq!(decoded, records[..intact], "cut at {cut}");
        }
    }

    #[test]
    fn single_bit_corruption_of_tail_is_detected() {
        let records = vec![sample_record(0, 0, 2), sample_record(1, 2, 2)];
        let mut clean = Vec::new();
        for r in &records {
            clean.extend_from_slice(&encode_record(r));
        }
        let first_len = encode_record(&records[0]).len();
        for byte in first_len..clean.len() {
            for bit in 0..8 {
                let mut corrupt = clean.clone();
                corrupt[byte] ^= 1 << bit;
                let (decoded, _) = decode_records(&corrupt);
                assert_eq!(
                    decoded,
                    records[..1],
                    "flip at byte {byte} bit {bit} must drop the tail and keep the prefix"
                );
            }
        }
    }

    #[test]
    fn journal_open_append_reopen() {
        let dir = std::env::temp_dir().join(format!("repute-journal-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.journal");
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(manifest_path(&path));
        let fp = RunFingerprint {
            config: 1,
            workload: 2,
            shape: 3,
        };
        {
            let (mut journal, existing) = RunJournal::open(&path, &fp).unwrap();
            assert!(existing.is_empty());
            journal.append(&sample_record(0, 0, 2)).unwrap();
            journal.append(&sample_record(1, 2, 3)).unwrap();
            journal.commit_manifest(4, false).unwrap();
        }
        // Reopen: both records replay.
        let (journal, existing) = RunJournal::open(&path, &fp).unwrap();
        assert_eq!(existing.len(), 2);
        assert_eq!(journal.records(), 2);
        assert_eq!(existing[1], sample_record(1, 2, 3));
        drop(journal);

        // A torn tail (partial third record) is truncated on reopen.
        let good_len = fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        let frame = encode_record(&sample_record(2, 5, 2));
        f.write_all(&frame[..frame.len() / 2]).unwrap();
        drop(f);
        let (_, recovered) = RunJournal::open(&path, &fp).unwrap();
        assert_eq!(recovered.len(), 2, "torn tail must be dropped");
        assert_eq!(fs::metadata(&path).unwrap().len(), good_len);

        // A different fingerprint is refused.
        let other = RunFingerprint {
            config: 9,
            workload: 2,
            shape: 3,
        };
        match RunJournal::open(&path, &other) {
            Err(ReputeError::ResumeMismatch(_)) => {}
            other => panic!("expected ResumeMismatch, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_below_watermark_is_typed_corrupt() {
        let dir =
            std::env::temp_dir().join(format!("repute-journal-corrupt-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.journal");
        let fp = RunFingerprint {
            config: 7,
            workload: 8,
            shape: 9,
        };
        {
            let (mut journal, _) = RunJournal::open(&path, &fp).unwrap();
            journal.append(&sample_record(0, 0, 2)).unwrap();
            journal.append(&sample_record(1, 2, 2)).unwrap();
            journal.commit_manifest(2, true).unwrap();
        }
        // Flip a bit inside the FIRST record — below the watermark.
        let mut bytes = fs::read(&path).unwrap();
        bytes[JOURNAL_HEADER_LEN + 12] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        match RunJournal::open(&path, &fp) {
            Err(ReputeError::JournalCorrupt(msg)) => {
                assert!(msg.contains("promises"), "{msg}");
            }
            other => panic!("expected JournalCorrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_round_trips_and_detects_tampering() {
        let fp = RunFingerprint {
            config: 0xAB,
            workload: 0xCD,
            shape: 0xEF,
        };
        let body = Manifest::render(&fp, 10, 7, false);
        let parsed = Manifest::parse(&body).unwrap();
        assert_eq!(parsed.fingerprint, fp.render());
        assert_eq!(parsed.batches, 10);
        assert_eq!(parsed.records, 7);
        assert!(!parsed.complete);
        let tampered = body.replace("records 7", "records 9");
        assert!(Manifest::parse(&tampered).is_err());
    }

    #[test]
    fn atomic_write_replaces_content() {
        let dir = std::env::temp_dir().join(format!("repute-atomic-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("target.txt");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        assert!(!path.with_extension("txt.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
