//! Crash-safe mapping: the journaled, resumable variant of the
//! two-phase executor.
//!
//! [`map_resumable`] runs the same deterministic executor as
//! [`map_scheduled`](crate::map_scheduled) — phase 1 host-executes
//! batches (device-independent outputs), phase 2 replays the simulated
//! placement — but commits every completed batch to a [`RunJournal`]
//! before it counts. A host crash (simulated via
//! [`FaultPlan::host_crash`], or a real `kill -9` of the CLI) therefore
//! costs at most the batches past the journal's durable prefix: the next
//! invocation replays the journal, skips the committed batches, and
//! produces outputs, per-read metrics, timelines and energy
//! **bit-identical** to an uninterrupted run.
//!
//! Determinism argument, in brief: batch decomposition depends only on
//! (schedule, platform, read count, mapper output size); phase-1 results
//! depend only on (mapper, reads); phase-2 placement is sequential
//! arithmetic over phase-1 work counts. None of these depend on *when*
//! or *how often* the run was interrupted, so replay + recompute =
//! straight-through compute. The only non-reproducible field is the host
//! wall clock (`wall_seconds`), which is excluded from the bit-identity
//! claim (see DESIGN.md §11).

use std::path::Path;
use std::time::Instant;

use repute_genome::DnaSeq;
use repute_hetsim::{
    Buffer, CommandQueue, DeviceRun, Event, FaultCounters, FaultPlan, FnKernel, LaunchError,
    Platform,
};
use repute_mappers::Mapper;
use repute_obs::trace::{device_pid, Span, SCHEDULER_PID};
use repute_obs::MapMetrics;

use crate::error::ReputeError;
use crate::journal::{BatchRecord, Fnv64, RunFingerprint, RunJournal};
use crate::multi_device::{
    batch_span, empty_run, finish_run, run_jobs, worker_count, BatchPlan, BatchResult, MappingRun,
    Schedule, DYNAMIC_BATCHES_PER_DEVICE,
};

/// Outcome of a journaled (checkpointed) mapping run.
#[derive(Debug)]
pub struct ResumableRun {
    /// The mapping run, identical to what `map_scheduled` returns for the
    /// same inputs (wall clock aside).
    pub run: MappingRun,
    /// Per-read metric records in read order, identical to the
    /// uninterrupted run's.
    pub metrics: Vec<MapMetrics>,
    /// Batches replayed from the journal instead of recomputed.
    pub resumed_batches: usize,
    /// Total batches of the run.
    pub total_batches: usize,
}

/// One entry of the global batch list: a contiguous read range plus, for
/// static schedules, the share that owns it.
struct PlannedBatch {
    lo: usize,
    hi: usize,
}

/// Maps `reads` under `schedule` with batch-granular crash safety: each
/// completed batch is appended to the journal at `journal_path` (and the
/// sidecar manifest refreshed every `checkpoint_every` commits), and a
/// pre-existing journal for the *same* run — validated against
/// `fingerprint` plus the derived batch-decomposition shape — is replayed
/// instead of recomputed.
///
/// `fingerprint` carries the caller's config and workload hashes; the
/// shape component is stamped here once the batch plan is known, so *any*
/// change that alters decomposition (platform, schedule, read count,
/// mapper output size) also invalidates old journals.
///
/// The `fault_plan` may carry **only** a host-crash event
/// ([`FaultPlan::host_crash`]): when armed, the run stops at the first
/// batch (in global batch order) whose simulated completion exceeds the
/// crash time, commits the manifest, and returns
/// [`ReputeError::Interrupted`] — the simulated analogue of `kill -9`.
/// Resume by calling again without the crash event. Device fault events
/// are rejected ([`ReputeError::Config`]); use
/// [`map_scheduled_with_faults`](crate::map_scheduled_with_faults) for
/// those — its failover placement is fault-history-dependent, which is
/// exactly what a resume-deterministic journal cannot admit.
///
/// # Errors
///
/// * [`ReputeError::Config`] — invalid distribution, or device fault
///   events in `fault_plan`;
/// * [`ReputeError::ResumeMismatch`] — the journal belongs to a
///   different run;
/// * [`ReputeError::JournalCorrupt`] — the journal or manifest fails
///   validation below the durable watermark;
/// * [`ReputeError::Interrupted`] — the simulated host crash fired;
/// * [`ReputeError::Io`] — filesystem failures.
#[allow(clippy::too_many_arguments)]
pub fn map_resumable<M: Mapper>(
    mapper: &M,
    platform: &Platform,
    schedule: &Schedule,
    host_threads: usize,
    fault_plan: &FaultPlan,
    journal_path: &Path,
    fingerprint: RunFingerprint,
    checkpoint_every: usize,
    reads: &[DnaSeq],
) -> Result<ResumableRun, ReputeError> {
    map_resumable_traced(
        mapper,
        platform,
        schedule,
        host_threads,
        fault_plan,
        journal_path,
        fingerprint,
        checkpoint_every,
        false,
        reads,
    )
}

/// [`map_resumable`] with span tracing: when `tracing` is set, the
/// returned run's `trace` holds kernel spans (one lane per device),
/// scheduler batch-lifecycle spans, and a `checkpoint` instant span at
/// each batch's journal commit (stamped at the batch's simulated
/// completion). Two identical invocations produce identical spans; a
/// resumed run omits the checkpoint spans of batches it replayed from
/// the journal, since those were committed by the earlier attempt.
///
/// # Errors
///
/// As [`map_resumable`].
#[allow(clippy::too_many_arguments)]
pub fn map_resumable_traced<M: Mapper>(
    mapper: &M,
    platform: &Platform,
    schedule: &Schedule,
    host_threads: usize,
    fault_plan: &FaultPlan,
    journal_path: &Path,
    fingerprint: RunFingerprint,
    checkpoint_every: usize,
    tracing: bool,
    reads: &[DnaSeq],
) -> Result<ResumableRun, ReputeError> {
    if fault_plan.has_device_events() {
        return Err(ReputeError::Config(
            "checkpointed runs accept only host-crash fault events (crash:@<t>); \
             device faults make placement history-dependent and are not resumable"
                .to_string(),
        ));
    }
    let crash_at = fault_plan.host_crash_at();
    let checkpoint_every = checkpoint_every.max(1);
    let start = Instant::now();
    let n_dev = platform.devices().len();
    let bytes_per_read = mapper.max_locations() * 12;

    // ------------------------------------------------------------------
    // Batch decomposition — byte-for-byte the rules of `map_scheduled`,
    // so the placement replay below reproduces its timelines exactly.
    // ------------------------------------------------------------------
    let mut planned: Vec<PlannedBatch> = Vec::new();
    // Static mode: the global indices of each share's batches, in order.
    let mut share_batches: Vec<Vec<usize>> = Vec::new();
    match schedule {
        Schedule::Static(shares) => {
            if shares.is_empty() {
                if reads.is_empty() {
                    return finish_empty(platform, journal_path, fingerprint, schedule, n_dev);
                }
                return Err(LaunchError::from_message("no shares supplied").into());
            }
            for share in shares {
                if share.device >= n_dev {
                    return Err(LaunchError::from_message(format!(
                        "device index {} out of range ({n_dev} devices)",
                        share.device
                    ))
                    .into());
                }
            }
            let covered: usize = shares.iter().map(|s| s.items).sum();
            if covered != reads.len() {
                return Err(LaunchError::from_message(format!(
                    "shares cover {covered} items but {} reads were supplied",
                    reads.len()
                ))
                .into());
            }
            let mut offset = 0usize;
            for share in shares {
                let device = &platform.devices()[share.device];
                let mut owned = Vec::new();
                for &b in BatchPlan::plan(device, share.items, bytes_per_read).batches() {
                    owned.push(planned.len());
                    planned.push(PlannedBatch {
                        lo: offset,
                        hi: offset + b,
                    });
                    offset += b;
                }
                share_batches.push(owned);
            }
        }
        Schedule::Dynamic { batch } => {
            if reads.is_empty() {
                return finish_empty(platform, journal_path, fingerprint, schedule, n_dev);
            }
            let cap = platform
                .devices()
                .iter()
                .map(|d| Buffer::max_items(d, bytes_per_read))
                .min()
                .expect("a platform has at least one device");
            if cap == 0 {
                return Err(LaunchError::from_message(format!(
                    "one read's output ({bytes_per_read} bytes) exceeds the quarter-RAM cap \
                     of the smallest device"
                ))
                .into());
            }
            let auto = reads
                .len()
                .div_ceil(DYNAMIC_BATCHES_PER_DEVICE * n_dev)
                .max(1);
            let batch_size = if *batch == 0 {
                auto.min(cap)
            } else {
                (*batch).min(cap)
            };
            let mut offset = 0usize;
            for &b in BatchPlan::uniform(reads.len(), batch_size).batches() {
                planned.push(PlannedBatch {
                    lo: offset,
                    hi: offset + b,
                });
                offset += b;
            }
        }
    }
    if planned.is_empty() {
        return finish_empty(platform, journal_path, fingerprint, schedule, n_dev);
    }
    let total_batches = planned.len();

    // ------------------------------------------------------------------
    // Journal open & replay: the shape hash welds the fingerprint to this
    // exact decomposition, so a journal can only ever be resumed into the
    // identical batch structure.
    // ------------------------------------------------------------------
    let fingerprint = stamp_shape(fingerprint, schedule, n_dev, reads.len(), &planned);
    let (mut journal, records) = RunJournal::open(journal_path, &fingerprint)?;
    if records.len() > total_batches {
        return Err(ReputeError::JournalCorrupt(format!(
            "journal holds {} records but the run has only {total_batches} batches",
            records.len()
        )));
    }
    for (i, rec) in records.iter().enumerate() {
        let p = &planned[i];
        if rec.lo != p.lo as u64 || rec.hi != p.hi as u64 {
            return Err(ReputeError::JournalCorrupt(format!(
                "journal record {i} covers reads {}..{} but the plan expects {}..{}",
                rec.lo, rec.hi, p.lo, p.hi
            )));
        }
    }
    let resumed_batches = records.len();
    let mut slots: Vec<Option<BatchResult>> = Vec::with_capacity(total_batches);
    slots.resize_with(total_batches, || None);
    for rec in records {
        let work = rec.outputs.iter().map(|o| o.work).sum();
        slots[rec.index as usize] = Some(BatchResult {
            outputs: rec.outputs,
            metrics: rec.metrics,
            work,
        });
    }

    // ------------------------------------------------------------------
    // Phase 1 — host-execute only the batches the journal does not hold.
    // ------------------------------------------------------------------
    let max_read_len = reads.iter().map(DnaSeq::len).max().unwrap_or(0);
    let private_bytes = mapper.kernel_private_bytes(max_read_len);
    let missing: Vec<usize> = (0..total_batches).filter(|&i| slots[i].is_none()).collect();
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let fresh = run_jobs(
        missing.len(),
        worker_count(host_threads, host, missing.len()),
        |job_idx| {
            let p = &planned[missing[job_idx]];
            let mut outputs = Vec::with_capacity(p.hi - p.lo);
            let mut metrics = Vec::with_capacity(p.hi - p.lo);
            let mut work = 0u64;
            for read in &reads[p.lo..p.hi] {
                let mut m = MapMetrics::new();
                let out = mapper.map_read_metered(read, &mut m);
                work += out.work;
                outputs.push(out);
                metrics.push(m);
            }
            BatchResult {
                outputs,
                metrics,
                work,
            }
        },
    );
    for (job_idx, result) in fresh.into_iter().enumerate() {
        slots[missing[job_idx]] = Some(result);
    }
    let results: Vec<BatchResult> = slots
        .into_iter()
        .map(|s| s.expect("every batch filled by journal or phase 1"))
        .collect();

    // ------------------------------------------------------------------
    // Phase 2 — simulated placement, identical to `map_scheduled`.
    // `end_seconds[i]` is batch i's simulated completion, the clock the
    // host-crash event fires against.
    // ------------------------------------------------------------------
    let mut end_seconds = vec![0.0f64; total_batches];
    let mut device_runs: Vec<DeviceRun> = Vec::new();
    let mut timelines: Vec<Vec<Event>> = Vec::new();
    let mut trace: Vec<Span> = Vec::new();
    match schedule {
        Schedule::Static(shares) => {
            for (share_idx, share) in shares.iter().enumerate() {
                let device = &platform.devices()[share.device];
                let mut queue = CommandQueue::new(device).with_device_index(share.device);
                if tracing {
                    queue = queue.with_tracing();
                }
                for (per_idx, &global_idx) in share_batches[share_idx].iter().enumerate() {
                    let result = &results[global_idx];
                    let outs = &result.outputs;
                    let kernel = FnKernel::new(move |i: usize| ((), outs[i].work))
                        .with_private_bytes(private_bytes);
                    let label = format!("d{}-batch-{}", share.device, per_idx);
                    let p = &planned[global_idx];
                    let _ = queue.enqueue(label, p.hi - p.lo, &kernel);
                    let event = queue.events().last().expect("enqueue records an event");
                    end_seconds[global_idx] = event.end_seconds;
                    if tracing {
                        trace.push(batch_span(global_idx, p.lo, p.hi, share.device, event));
                    }
                }
                device_runs.push(DeviceRun {
                    device: share.device,
                    items: share.items,
                    work: queue.total_work(),
                    simulated_seconds: queue.finish_seconds(),
                });
                trace.extend(queue.take_trace());
                timelines.push(queue.into_events());
            }
        }
        Schedule::Dynamic { .. } => {
            let mut free_at = vec![0.0f64; n_dev];
            let mut dyn_timelines: Vec<Vec<Event>> = vec![Vec::new(); n_dev];
            let mut items_of = vec![0usize; n_dev];
            let mut work_of = vec![0u64; n_dev];
            for (batch_idx, result) in results.iter().enumerate() {
                let mut dev = 0usize;
                for d in 1..n_dev {
                    if free_at[d] < free_at[dev] {
                        dev = d;
                    }
                }
                let duration =
                    platform.devices()[dev].seconds_for_with_footprint(result.work, private_bytes);
                let t = free_at[dev];
                let event = Event {
                    label: format!("d{dev}-batch-{batch_idx}"),
                    items: result.outputs.len(),
                    work: result.work,
                    queued_seconds: t,
                    submitted_seconds: t,
                    start_seconds: t,
                    end_seconds: t + duration,
                };
                if tracing {
                    let p = &planned[batch_idx];
                    trace.push(
                        Span::new(
                            event.label.clone(),
                            "kernel",
                            device_pid(dev),
                            t,
                            t + duration,
                        )
                        .arg_u64("items", result.outputs.len() as u64)
                        .arg_u64("work", result.work),
                    );
                    trace.push(batch_span(batch_idx, p.lo, p.hi, dev, &event));
                }
                dyn_timelines[dev].push(event);
                free_at[dev] = t + duration;
                items_of[dev] += result.outputs.len();
                work_of[dev] += result.work;
                end_seconds[batch_idx] = t + duration;
            }
            for dev in 0..n_dev {
                device_runs.push(DeviceRun {
                    device: dev,
                    items: items_of[dev],
                    work: work_of[dev],
                    simulated_seconds: free_at[dev],
                });
            }
            timelines = dyn_timelines;
        }
    }

    // ------------------------------------------------------------------
    // Commit loop — durably journal each batch in global order. The
    // simulated crash fires at the first batch whose completion exceeds
    // the crash time, exactly like a host process dying mid-run: the
    // journal keeps its contiguous durable prefix, nothing else.
    // ------------------------------------------------------------------
    let mut since_manifest = 0usize;
    for (idx, result) in results.iter().enumerate() {
        if idx < resumed_batches {
            continue; // already durable from a previous attempt
        }
        if let Some(t) = crash_at {
            if end_seconds[idx] > t {
                journal.commit_manifest(total_batches as u64, false)?;
                return Err(ReputeError::Interrupted {
                    at_seconds: t,
                    committed: journal.records() as usize,
                    total: total_batches,
                });
            }
        }
        let p = &planned[idx];
        journal.append(&BatchRecord {
            index: idx as u32,
            lo: p.lo as u64,
            hi: p.hi as u64,
            outputs: result.outputs.clone(),
            metrics: result.metrics.clone(),
        })?;
        if tracing {
            trace.push(
                Span::instant(
                    "checkpoint".to_string(),
                    "checkpoint",
                    SCHEDULER_PID,
                    end_seconds[idx],
                )
                .arg_u64("batch", idx as u64)
                .arg_u64("lo", p.lo as u64)
                .arg_u64("hi", p.hi as u64),
            );
        }
        since_manifest += 1;
        if since_manifest >= checkpoint_every {
            journal.commit_manifest(total_batches as u64, false)?;
            since_manifest = 0;
        }
    }
    journal.commit_manifest(total_batches as u64, true)?;

    // Assemble, exactly as `map_scheduled` would.
    let mut outputs = Vec::with_capacity(reads.len());
    let mut metrics = Vec::with_capacity(reads.len());
    for r in results {
        outputs.extend(r.outputs);
        metrics.extend(r.metrics);
    }
    let fault_counters = vec![FaultCounters::default(); device_runs.len()];
    let (mut run, metrics) = finish_run(
        platform,
        start,
        outputs,
        metrics,
        device_runs,
        timelines,
        trace,
    );
    run.fault_counters = fault_counters;
    Ok(ResumableRun {
        run,
        metrics,
        resumed_batches,
        total_batches,
    })
}

/// Stamps the batch-decomposition shape into the fingerprint: device
/// count, read count, schedule kind, and every batch boundary (plus the
/// owning device under a static schedule).
fn stamp_shape(
    mut fingerprint: RunFingerprint,
    schedule: &Schedule,
    n_dev: usize,
    reads: usize,
    planned: &[PlannedBatch],
) -> RunFingerprint {
    let mut h = Fnv64::new();
    h.write_u64(n_dev as u64);
    h.write_u64(reads as u64);
    match schedule {
        Schedule::Static(shares) => {
            h.write_u64(0);
            h.write_u64(shares.len() as u64);
            for share in shares {
                h.write_u64(share.device as u64);
                h.write_u64(share.items as u64);
            }
        }
        Schedule::Dynamic { .. } => h.write_u64(1),
    }
    h.write_u64(planned.len() as u64);
    for p in planned {
        h.write_u64(p.lo as u64);
        h.write_u64(p.hi as u64);
    }
    fingerprint.shape = h.finish();
    fingerprint
}

/// The empty-read-set path: still fingerprints and completes the journal,
/// so `--resume` of an empty run behaves like any other.
fn finish_empty(
    platform: &Platform,
    journal_path: &Path,
    fingerprint: RunFingerprint,
    schedule: &Schedule,
    n_dev: usize,
) -> Result<ResumableRun, ReputeError> {
    let fingerprint = stamp_shape(fingerprint, schedule, n_dev, 0, &[]);
    let (journal, records) = RunJournal::open(journal_path, &fingerprint)?;
    if !records.is_empty() {
        return Err(ReputeError::JournalCorrupt(format!(
            "journal holds {} records but the run has no batches",
            records.len()
        )));
    }
    journal.commit_manifest(0, true)?;
    let (run, metrics) = empty_run(platform);
    Ok(ResumableRun {
        run,
        metrics,
        resumed_batches: 0,
        total_batches: 0,
    })
}
