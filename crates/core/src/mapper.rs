//! The REPUTE mapping kernel.

use std::sync::Arc;

use repute_filter::freq::FreqTable;
use repute_filter::oss::OssSolver;
use repute_genome::DnaSeq;
use repute_mappers::{CandidateSet, IndexedReference, MapOutput, Mapper, VerifyEngine};
use repute_obs::MapMetrics;
use repute_prefilter::{Chain, PrefilterMode, QgramBins, QgramFilter, ShdFilter};

use repute_mappers::engine_costs::{DP_CELL_COST, EXTEND_COST, LOCATE_COST};

/// Cap on located occurrences per seed (pathological repeats only).
const PER_SEED_LOCATE_CAP: usize = 20_000;

use crate::config::ReputeConfig;

/// The REPUTE mapper: DP filtration + bit-vector verification, fused into
/// one per-read kernel with a fixed memory footprint.
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct ReputeMapper {
    indexed: Arc<IndexedReference>,
    config: ReputeConfig,
    /// Q-gram bins for non-default prefilter parameters; `None` means
    /// the mode doesn't probe bins or the index's shared default bins
    /// serve.
    custom_bins: Option<QgramBins>,
}

impl ReputeMapper {
    /// Creates a mapper over a preprocessed reference. When the
    /// configuration enables the q-gram prefilter with non-default
    /// parameters, the bins are built here — once, at setup time, like
    /// the rest of the index.
    pub fn new(indexed: Arc<IndexedReference>, config: ReputeConfig) -> ReputeMapper {
        let custom_bins =
            (config.prefilter().uses_qgram() && !config.prefilter_uses_default_bins()).then(|| {
                QgramBins::build(
                    indexed.codes(),
                    config.prefilter_q(),
                    config.prefilter_bin_width(),
                )
            });
        ReputeMapper {
            indexed,
            config,
            custom_bins,
        }
    }

    /// The mapper's configuration.
    pub fn config(&self) -> &ReputeConfig {
        &self.config
    }

    /// The preprocessed reference this mapper maps against.
    pub fn indexed(&self) -> &Arc<IndexedReference> {
        &self.indexed
    }

    /// The q-gram bins the prefilter probes (custom if configured,
    /// otherwise the index's shared defaults).
    fn prefilter_bins(&self) -> &QgramBins {
        self.custom_bins
            .as_ref()
            .unwrap_or_else(|| self.indexed.prefilter_bins())
    }
}

impl Mapper for ReputeMapper {
    fn name(&self) -> &str {
        "REPUTE"
    }

    fn max_locations(&self) -> usize {
        self.config.max_locations()
    }

    fn kernel_private_bytes(&self, read_len: usize) -> usize {
        self.config.kernel_footprint_bytes(read_len)
    }

    fn map_read(&self, read: &DnaSeq) -> MapOutput {
        // One code path: the unmetered entry point runs the instrumented
        // kernel with a scratch record, so telemetry can never drift from
        // the work the mapper actually performs.
        let mut scratch = MapMetrics::new();
        self.map_read_metered(read, &mut scratch)
    }

    fn map_read_metered(&self, read: &DnaSeq, metrics: &mut MapMetrics) -> MapOutput {
        let fm = self.indexed.fm();
        // Pre-alignment filtration stage (sound: affects cost, never
        // output). The chain runs the q-gram bins first — they are far
        // cheaper per candidate than the SHD mask pipeline.
        let shd = ShdFilter::new();
        let qgram = QgramFilter::new(self.prefilter_bins());
        let chain;
        let engine = VerifyEngine::new(self.indexed.codes(), self.config.delta());
        let engine = match self.config.prefilter() {
            PrefilterMode::None => engine,
            PrefilterMode::Shd => engine.with_prefilter(&shd),
            PrefilterMode::Qgram => engine.with_prefilter(&qgram),
            PrefilterMode::Both => {
                chain = Chain::new(vec![&qgram, &shd]);
                engine.with_prefilter(&chain)
            }
        };
        let solver = OssSolver::new(*self.config.oss_params());
        let mut out = MapOutput::default();
        let strands = [
            (repute_genome::Strand::Forward, read.to_codes()),
            (
                repute_genome::Strand::Reverse,
                read.reverse_complement().to_codes(),
            ),
        ];
        for (strand, codes) in strands {
            if !self.config.feasible_for(codes.len()) {
                continue; // read too short for δ+1 seeds of S_min
            }
            // Filtration: frequency table + DP partition (the paper's
            // §II-B kernel).
            let table = FreqTable::build(fm, &codes, self.config.oss_params());
            table.record_metrics(metrics);
            let outcome = solver.select(&codes, &table);
            outcome.record_metrics(metrics);
            out.work +=
                outcome.stats.extend_ops * EXTEND_COST + outcome.stats.dp_cells * DP_CELL_COST;
            // Candidate generation from the optimal seeds.
            let mut candidates = CandidateSet::new();
            for seed in &outcome.selection.seeds {
                if let Some(interval) = seed.interval {
                    let positions = fm.locate(interval, PER_SEED_LOCATE_CAP);
                    out.work += positions.len() as u64 * LOCATE_COST;
                    metrics.fm_locate_ops += positions.len() as u64;
                    metrics.candidates_raw += positions.len() as u64;
                    for pos in positions {
                        // Capped seeds anchor their interval at a suffix.
                        candidates.add(pos, seed.anchor);
                    }
                }
            }
            let merged = candidates.into_merged(CandidateSet::merge_gap(self.config.delta()));
            out.candidates += merged.len() as u64;
            metrics.candidates_merged += merged.len() as u64;
            // Verification (first-n output slots).
            out.work += engine.verify_metered(
                &codes,
                strand,
                &merged,
                self.config.max_locations(),
                &mut out.mappings,
                metrics,
            );
            if out.mappings.len() >= self.config.max_locations() {
                break;
            }
        }
        out
    }
}

/// A mapping together with its alignment description — the CIGAR output
/// the paper lists as future work (§IV), implemented as an extension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CigarMapping {
    /// The mapping, with its position refined to the alignment's exact
    /// start (no longer just the candidate diagonal).
    pub mapping: repute_mappers::Mapping,
    /// Edit script of the read against the reference at that position.
    pub cigar: repute_align::Cigar,
}

impl ReputeMapper {
    /// Maps a read and additionally computes the CIGAR string of every
    /// reported location via a full DP traceback (§IV extension).
    ///
    /// Costs O(read · window) per reported mapping on top of
    /// [`Mapper::map_read`]; intended for final output, not the hot path.
    pub fn map_read_with_cigars(&self, read: &DnaSeq) -> (MapOutput, Vec<CigarMapping>) {
        let out = self.map_read(read);
        let reference = self.indexed.codes();
        let delta = self.config.delta() as usize;
        let forward = read.to_codes();
        let reverse = read.reverse_complement().to_codes();
        let mut detailed = Vec::with_capacity(out.mappings.len());
        for &mapping in &out.mappings {
            let codes = match mapping.strand {
                repute_genome::Strand::Forward => &forward,
                repute_genome::Strand::Reverse => &reverse,
            };
            let start = (mapping.position as usize).saturating_sub(delta);
            let end = (mapping.position as usize + codes.len() + delta).min(reference.len());
            let window = &reference[start..end];
            if let Some(alignment) = repute_align::dp::semi_global_with_cigar(codes, window) {
                detailed.push(CigarMapping {
                    mapping: repute_mappers::Mapping {
                        position: (start + alignment.start) as u32,
                        ..mapping
                    },
                    cigar: alignment.cigar,
                });
            }
        }
        (out, detailed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repute_genome::reads::{ErrorProfile, ReadSimulator};
    use repute_genome::synth::ReferenceBuilder;
    use repute_genome::Strand;
    use repute_mappers::coral::CoralLike;

    fn indexed() -> Arc<IndexedReference> {
        Arc::new(IndexedReference::build(
            ReferenceBuilder::new(60_000).seed(83).build(),
        ))
    }

    fn mapper(delta: u32, s_min: usize) -> ReputeMapper {
        ReputeMapper::new(indexed(), ReputeConfig::new(delta, s_min).unwrap())
    }

    #[test]
    fn maps_exact_reads_both_strands() {
        let m = mapper(5, 12);
        let fwd = m.indexed().seq().subseq(20_000..20_100);
        let out = m.map_read(&fwd);
        assert!(out
            .mappings
            .iter()
            .any(|h| h.position == 20_000 && h.strand == Strand::Forward && h.distance == 0));
        let rev = fwd.reverse_complement();
        let out = m.map_read(&rev);
        assert!(out
            .mappings
            .iter()
            .any(|h| h.position.abs_diff(20_000) <= 5 && h.strand == Strand::Reverse));
    }

    #[test]
    fn full_sensitivity_within_delta() {
        let m = mapper(5, 12);
        let reads = ReadSimulator::new(100, 50)
            .profile(ErrorProfile::err012100())
            .seed(89)
            .simulate(m.indexed().seq());
        for read in &reads {
            let origin = read.origin.unwrap();
            if origin.edits > 5 {
                continue;
            }
            let out = m.map_read(&read.seq);
            assert!(
                out.mappings.iter().any(|h| {
                    h.strand == origin.strand
                        && (h.position as i64 - origin.position as i64).abs() <= 5
                }),
                "read {} (edits {}) missed",
                read.id,
                origin.edits
            );
        }
    }

    #[test]
    fn metered_mapping_decomposes_work_exactly() {
        let m = mapper(5, 12);
        let reads = ReadSimulator::new(100, 20)
            .profile(ErrorProfile::err012100())
            .seed(313)
            .simulate(m.indexed().seq());
        for read in &reads {
            let mut metrics = MapMetrics::new();
            let out = m.map_read_metered(&read.seq, &mut metrics);
            // Same mappings as the unmetered path (it is the same path).
            assert_eq!(out.mappings, m.map_read(&read.seq).mappings);
            // The per-read record decomposes the work scalar exactly.
            assert_eq!(
                metrics.work_units(EXTEND_COST, DP_CELL_COST, LOCATE_COST),
                out.work,
                "read {}",
                read.id
            );
            assert_eq!(metrics.hits, out.mappings.len() as u64);
            assert_eq!(metrics.candidates_merged, out.candidates);
            assert!(metrics.candidates_raw >= metrics.candidates_merged);
            assert!(metrics.seeds_selected > 0);
        }
    }

    #[test]
    fn infeasible_read_yields_empty_output() {
        let m = mapper(7, 15); // needs 120 bases
        let read = m.indexed().seq().subseq(0..100);
        let out = m.map_read(&read);
        assert!(out.mappings.is_empty());
        assert_eq!(out.work, 0);
    }

    #[test]
    fn fewer_candidates_than_coral_on_average() {
        // The DP-vs-heuristic claim of the paper, measured end-to-end.
        let indexed = indexed();
        let repute = ReputeMapper::new(Arc::clone(&indexed), ReputeConfig::new(6, 12).unwrap());
        let coral = CoralLike::new(Arc::clone(&indexed), 6);
        let reads = ReadSimulator::new(150, 30)
            .profile(ErrorProfile::srr826460())
            .seed(97)
            .simulate(indexed.seq());
        let mut repute_cands = 0u64;
        let mut coral_cands = 0u64;
        for read in &reads {
            repute_cands += repute.map_read(&read.seq).candidates;
            coral_cands += coral.map_read(&read.seq).candidates;
        }
        assert!(
            repute_cands <= coral_cands,
            "REPUTE candidates {repute_cands} vs CORAL {coral_cands}"
        );
    }

    #[test]
    fn cigar_output_matches_reported_distances() {
        let m = mapper(5, 12);
        let reads = ReadSimulator::new(100, 15)
            .profile(ErrorProfile::err012100())
            .seed(211)
            .simulate(m.indexed().seq());
        for read in &reads {
            let (out, detailed) = m.map_read_with_cigars(&read.seq);
            assert_eq!(out.mappings.len(), detailed.len());
            for (plain, rich) in out.mappings.iter().zip(&detailed) {
                assert_eq!(rich.cigar.edit_distance(), plain.distance);
                assert_eq!(rich.cigar.pattern_len(), 100);
                // The refined position stays within the candidate window.
                assert!(rich.mapping.position.abs_diff(plain.position) <= 2 * 5);
            }
        }
    }

    #[test]
    fn cigar_of_exact_read_is_all_matches() {
        let m = mapper(3, 15);
        let read = m.indexed().seq().subseq(30_000..30_100);
        let (_, detailed) = m.map_read_with_cigars(&read);
        let exact = detailed
            .iter()
            .find(|d| d.mapping.position == 30_000)
            .expect("origin reported");
        assert_eq!(exact.cigar.to_string(), "100=");
    }

    #[test]
    fn prefilter_modes_preserve_output_and_cut_verification() {
        // The subsystem's contract, end to end: every prefilter mode
        // reports exactly the mappings the unfiltered pipeline reports
        // (zero false negatives), while `both` measurably reduces the
        // Myers word updates spent on junk candidates.
        let indexed = indexed();
        let base = ReputeConfig::new(5, 12).unwrap();
        let reads = ReadSimulator::new(100, 40)
            .profile(ErrorProfile::srr826460())
            .seed(151)
            .simulate(indexed.seq());
        let plain = ReputeMapper::new(Arc::clone(&indexed), base);
        let mut per_mode = Vec::new();
        for mode in PrefilterMode::ALL {
            let mapper = ReputeMapper::new(Arc::clone(&indexed), base.with_prefilter(mode));
            let mut totals = MapMetrics::new();
            for read in &reads {
                let mut m = MapMetrics::new();
                let out = mapper.map_read_metered(&read.seq, &mut m);
                assert_eq!(
                    out.mappings,
                    plain.map_read(&read.seq).mappings,
                    "mode {mode} changed mappings of read {}",
                    read.id
                );
                // The work identity holds with the filter stage charged.
                assert_eq!(
                    m.work_units(EXTEND_COST, DP_CELL_COST, LOCATE_COST),
                    out.work,
                    "mode {mode}, read {}",
                    read.id
                );
                totals.merge(&m);
            }
            if mode == PrefilterMode::None {
                assert_eq!(totals.prefilter_tested, 0);
                assert_eq!(totals.prefilter_words, 0);
            } else {
                assert_eq!(totals.prefilter_tested, totals.candidates_merged);
                assert_eq!(
                    totals.verifications,
                    totals.prefilter_tested - totals.prefilter_rejected
                );
                assert!(totals.prefilter_words > 0);
            }
            per_mode.push((mode, totals));
        }
        let none = per_mode[0].1;
        let both = per_mode[3].1;
        assert!(
            both.word_updates < none.word_updates,
            "prefilter 'both' must cut word updates: {} vs {}",
            both.word_updates,
            none.word_updates
        );
        assert!(both.prefilter_rejected > 0, "no candidate was rejected");
    }

    #[test]
    fn custom_qgram_parameters_build_private_bins() {
        let indexed = indexed();
        let config = ReputeConfig::new(5, 12)
            .unwrap()
            .with_prefilter(PrefilterMode::Qgram)
            .with_prefilter_qgram(4, 128);
        let mapper = ReputeMapper::new(Arc::clone(&indexed), config);
        assert_eq!(mapper.prefilter_bins().q(), 4);
        assert_eq!(mapper.prefilter_bins().bin_width(), 128);
        // Default parameters share the index's prebuilt bins.
        let default = ReputeMapper::new(
            Arc::clone(&indexed),
            ReputeConfig::new(5, 12)
                .unwrap()
                .with_prefilter(PrefilterMode::Qgram),
        );
        assert!(std::ptr::eq(
            default.prefilter_bins(),
            indexed.prefilter_bins()
        ));
        // And the custom mapper still maps correctly.
        let read = indexed.seq().subseq(10_000..10_100);
        assert!(mapper
            .map_read(&read)
            .mappings
            .iter()
            .any(|h| h.position == 10_000));
    }

    #[test]
    fn respects_first_n_limit() {
        let indexed = indexed();
        let m = ReputeMapper::new(
            indexed,
            ReputeConfig::new(2, 10).unwrap().with_max_locations(4),
        );
        let read: DnaSeq = "ACACACACACACACACACACACACACACAC".parse().unwrap();
        let out = m.map_read(&read);
        assert!(out.mappings.len() <= 4);
        assert_eq!(m.max_locations(), 4);
        assert_eq!(m.name(), "REPUTE");
    }
}
