//! The REPUTE mapping kernel.

use std::sync::Arc;

use repute_filter::freq::FreqTable;
use repute_filter::oss::OssSolver;
use repute_genome::DnaSeq;
use repute_mappers::{CandidateSet, IndexedReference, MapOutput, Mapper, VerifyEngine};
use repute_obs::MapMetrics;

use repute_mappers::engine_costs::{DP_CELL_COST, EXTEND_COST, LOCATE_COST};

/// Cap on located occurrences per seed (pathological repeats only).
const PER_SEED_LOCATE_CAP: usize = 20_000;

use crate::config::ReputeConfig;

/// The REPUTE mapper: DP filtration + bit-vector verification, fused into
/// one per-read kernel with a fixed memory footprint.
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct ReputeMapper {
    indexed: Arc<IndexedReference>,
    config: ReputeConfig,
}

impl ReputeMapper {
    /// Creates a mapper over a preprocessed reference.
    pub fn new(indexed: Arc<IndexedReference>, config: ReputeConfig) -> ReputeMapper {
        ReputeMapper { indexed, config }
    }

    /// The mapper's configuration.
    pub fn config(&self) -> &ReputeConfig {
        &self.config
    }

    /// The preprocessed reference this mapper maps against.
    pub fn indexed(&self) -> &Arc<IndexedReference> {
        &self.indexed
    }
}

impl Mapper for ReputeMapper {
    fn name(&self) -> &str {
        "REPUTE"
    }

    fn max_locations(&self) -> usize {
        self.config.max_locations()
    }

    fn kernel_private_bytes(&self, read_len: usize) -> usize {
        self.config.kernel_footprint_bytes(read_len)
    }

    fn map_read(&self, read: &DnaSeq) -> MapOutput {
        // One code path: the unmetered entry point runs the instrumented
        // kernel with a scratch record, so telemetry can never drift from
        // the work the mapper actually performs.
        let mut scratch = MapMetrics::new();
        self.map_read_metered(read, &mut scratch)
    }

    fn map_read_metered(&self, read: &DnaSeq, metrics: &mut MapMetrics) -> MapOutput {
        let fm = self.indexed.fm();
        let engine = VerifyEngine::new(self.indexed.codes(), self.config.delta());
        let solver = OssSolver::new(*self.config.oss_params());
        let mut out = MapOutput::default();
        let strands = [
            (repute_genome::Strand::Forward, read.to_codes()),
            (
                repute_genome::Strand::Reverse,
                read.reverse_complement().to_codes(),
            ),
        ];
        for (strand, codes) in strands {
            if !self.config.feasible_for(codes.len()) {
                continue; // read too short for δ+1 seeds of S_min
            }
            // Filtration: frequency table + DP partition (the paper's
            // §II-B kernel).
            let table = FreqTable::build(fm, &codes, self.config.oss_params());
            table.record_metrics(metrics);
            let outcome = solver.select(&codes, &table);
            outcome.record_metrics(metrics);
            out.work +=
                outcome.stats.extend_ops * EXTEND_COST + outcome.stats.dp_cells * DP_CELL_COST;
            // Candidate generation from the optimal seeds.
            let mut candidates = CandidateSet::new();
            for seed in &outcome.selection.seeds {
                if let Some(interval) = seed.interval {
                    let positions = fm.locate(interval, PER_SEED_LOCATE_CAP);
                    out.work += positions.len() as u64 * LOCATE_COST;
                    metrics.fm_locate_ops += positions.len() as u64;
                    metrics.candidates_raw += positions.len() as u64;
                    for pos in positions {
                        // Capped seeds anchor their interval at a suffix.
                        candidates.add(pos, seed.anchor);
                    }
                }
            }
            let merged = candidates.into_merged(self.config.delta());
            out.candidates += merged.len() as u64;
            metrics.candidates_merged += merged.len() as u64;
            // Verification (first-n output slots).
            out.work += engine.verify_metered(
                &codes,
                strand,
                &merged,
                self.config.max_locations(),
                &mut out.mappings,
                metrics,
            );
            if out.mappings.len() >= self.config.max_locations() {
                break;
            }
        }
        out
    }
}

/// A mapping together with its alignment description — the CIGAR output
/// the paper lists as future work (§IV), implemented as an extension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CigarMapping {
    /// The mapping, with its position refined to the alignment's exact
    /// start (no longer just the candidate diagonal).
    pub mapping: repute_mappers::Mapping,
    /// Edit script of the read against the reference at that position.
    pub cigar: repute_align::Cigar,
}

impl ReputeMapper {
    /// Maps a read and additionally computes the CIGAR string of every
    /// reported location via a full DP traceback (§IV extension).
    ///
    /// Costs O(read · window) per reported mapping on top of
    /// [`Mapper::map_read`]; intended for final output, not the hot path.
    pub fn map_read_with_cigars(&self, read: &DnaSeq) -> (MapOutput, Vec<CigarMapping>) {
        let out = self.map_read(read);
        let reference = self.indexed.codes();
        let delta = self.config.delta() as usize;
        let forward = read.to_codes();
        let reverse = read.reverse_complement().to_codes();
        let mut detailed = Vec::with_capacity(out.mappings.len());
        for &mapping in &out.mappings {
            let codes = match mapping.strand {
                repute_genome::Strand::Forward => &forward,
                repute_genome::Strand::Reverse => &reverse,
            };
            let start = (mapping.position as usize).saturating_sub(delta);
            let end = (mapping.position as usize + codes.len() + delta).min(reference.len());
            let window = &reference[start..end];
            if let Some(alignment) = repute_align::dp::semi_global_with_cigar(codes, window) {
                detailed.push(CigarMapping {
                    mapping: repute_mappers::Mapping {
                        position: (start + alignment.start) as u32,
                        ..mapping
                    },
                    cigar: alignment.cigar,
                });
            }
        }
        (out, detailed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repute_genome::reads::{ErrorProfile, ReadSimulator};
    use repute_genome::synth::ReferenceBuilder;
    use repute_genome::Strand;
    use repute_mappers::coral::CoralLike;

    fn indexed() -> Arc<IndexedReference> {
        Arc::new(IndexedReference::build(
            ReferenceBuilder::new(60_000).seed(83).build(),
        ))
    }

    fn mapper(delta: u32, s_min: usize) -> ReputeMapper {
        ReputeMapper::new(indexed(), ReputeConfig::new(delta, s_min).unwrap())
    }

    #[test]
    fn maps_exact_reads_both_strands() {
        let m = mapper(5, 12);
        let fwd = m.indexed().seq().subseq(20_000..20_100);
        let out = m.map_read(&fwd);
        assert!(out
            .mappings
            .iter()
            .any(|h| h.position == 20_000 && h.strand == Strand::Forward && h.distance == 0));
        let rev = fwd.reverse_complement();
        let out = m.map_read(&rev);
        assert!(out
            .mappings
            .iter()
            .any(|h| h.position.abs_diff(20_000) <= 5 && h.strand == Strand::Reverse));
    }

    #[test]
    fn full_sensitivity_within_delta() {
        let m = mapper(5, 12);
        let reads = ReadSimulator::new(100, 50)
            .profile(ErrorProfile::err012100())
            .seed(89)
            .simulate(m.indexed().seq());
        for read in &reads {
            let origin = read.origin.unwrap();
            if origin.edits > 5 {
                continue;
            }
            let out = m.map_read(&read.seq);
            assert!(
                out.mappings.iter().any(|h| {
                    h.strand == origin.strand
                        && (h.position as i64 - origin.position as i64).abs() <= 5
                }),
                "read {} (edits {}) missed",
                read.id,
                origin.edits
            );
        }
    }

    #[test]
    fn metered_mapping_decomposes_work_exactly() {
        let m = mapper(5, 12);
        let reads = ReadSimulator::new(100, 20)
            .profile(ErrorProfile::err012100())
            .seed(313)
            .simulate(m.indexed().seq());
        for read in &reads {
            let mut metrics = MapMetrics::new();
            let out = m.map_read_metered(&read.seq, &mut metrics);
            // Same mappings as the unmetered path (it is the same path).
            assert_eq!(out.mappings, m.map_read(&read.seq).mappings);
            // The per-read record decomposes the work scalar exactly.
            assert_eq!(
                metrics.work_units(EXTEND_COST, DP_CELL_COST, LOCATE_COST),
                out.work,
                "read {}",
                read.id
            );
            assert_eq!(metrics.hits, out.mappings.len() as u64);
            assert_eq!(metrics.candidates_merged, out.candidates);
            assert!(metrics.candidates_raw >= metrics.candidates_merged);
            assert!(metrics.seeds_selected > 0);
        }
    }

    #[test]
    fn infeasible_read_yields_empty_output() {
        let m = mapper(7, 15); // needs 120 bases
        let read = m.indexed().seq().subseq(0..100);
        let out = m.map_read(&read);
        assert!(out.mappings.is_empty());
        assert_eq!(out.work, 0);
    }

    #[test]
    fn fewer_candidates_than_coral_on_average() {
        // The DP-vs-heuristic claim of the paper, measured end-to-end.
        let indexed = indexed();
        let repute = ReputeMapper::new(Arc::clone(&indexed), ReputeConfig::new(6, 12).unwrap());
        let coral = CoralLike::new(Arc::clone(&indexed), 6);
        let reads = ReadSimulator::new(150, 30)
            .profile(ErrorProfile::srr826460())
            .seed(97)
            .simulate(indexed.seq());
        let mut repute_cands = 0u64;
        let mut coral_cands = 0u64;
        for read in &reads {
            repute_cands += repute.map_read(&read.seq).candidates;
            coral_cands += coral.map_read(&read.seq).candidates;
        }
        assert!(
            repute_cands <= coral_cands,
            "REPUTE candidates {repute_cands} vs CORAL {coral_cands}"
        );
    }

    #[test]
    fn cigar_output_matches_reported_distances() {
        let m = mapper(5, 12);
        let reads = ReadSimulator::new(100, 15)
            .profile(ErrorProfile::err012100())
            .seed(211)
            .simulate(m.indexed().seq());
        for read in &reads {
            let (out, detailed) = m.map_read_with_cigars(&read.seq);
            assert_eq!(out.mappings.len(), detailed.len());
            for (plain, rich) in out.mappings.iter().zip(&detailed) {
                assert_eq!(rich.cigar.edit_distance(), plain.distance);
                assert_eq!(rich.cigar.pattern_len(), 100);
                // The refined position stays within the candidate window.
                assert!(rich.mapping.position.abs_diff(plain.position) <= 2 * 5);
            }
        }
    }

    #[test]
    fn cigar_of_exact_read_is_all_matches() {
        let m = mapper(3, 15);
        let read = m.indexed().seq().subseq(30_000..30_100);
        let (_, detailed) = m.map_read_with_cigars(&read);
        let exact = detailed
            .iter()
            .find(|d| d.mapping.position == 30_000)
            .expect("origin reported");
        assert_eq!(exact.cigar.to_string(), "100=");
    }

    #[test]
    fn respects_first_n_limit() {
        let indexed = indexed();
        let m = ReputeMapper::new(
            indexed,
            ReputeConfig::new(2, 10).unwrap().with_max_locations(4),
        );
        let read: DnaSeq = "ACACACACACACACACACACACACACACAC".parse().unwrap();
        let out = m.map_read(&read);
        assert!(out.mappings.len() <= 4);
        assert_eq!(m.max_locations(), 4);
        assert_eq!(m.name(), "REPUTE");
    }
}
