//! REPUTE configuration.

use repute_filter::oss::{Exploration, InvalidParamsError, OssParams};
use repute_prefilter::{qgram, PrefilterMode};

/// Scheduling policy of the multi-device executor (see
/// [`crate::Schedule`] for the full semantics). Both policies produce
/// byte-identical mapping output; they differ only in how simulated
/// device time is spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScheduleMode {
    /// Fixed contiguous per-device shares — the paper's user-specified
    /// distribution (and this crate's historical behaviour).
    #[default]
    Static,
    /// Devices greedily pull quarter-RAM-capped batches from a shared
    /// queue, balancing skewed per-read work automatically.
    Dynamic,
}

impl ScheduleMode {
    /// Parses a CLI-style mode name (`static` / `dynamic`).
    pub fn parse(name: &str) -> Option<ScheduleMode> {
        match name {
            "static" => Some(ScheduleMode::Static),
            "dynamic" => Some(ScheduleMode::Dynamic),
            _ => None,
        }
    }
}

impl std::fmt::Display for ScheduleMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ScheduleMode::Static => "static",
            ScheduleMode::Dynamic => "dynamic",
        })
    }
}

/// Configuration of a [`crate::ReputeMapper`].
///
/// # Example
///
/// ```
/// use repute_core::ReputeConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = ReputeConfig::new(5, 12)?.with_max_locations(100);
/// assert_eq!(config.delta(), 5);
/// assert_eq!(config.max_locations(), 100);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReputeConfig {
    oss: OssParams,
    max_locations: usize,
    prefilter: PrefilterMode,
    prefilter_q: usize,
    prefilter_bin_width: usize,
    schedule: ScheduleMode,
    dynamic_batch: usize,
    host_threads: usize,
    max_retries: usize,
}

/// Default retry budget for transient kernel-launch faults (see
/// [`ReputeConfig::with_max_retries`]).
pub const DEFAULT_MAX_RETRIES: usize = 2;

impl ReputeConfig {
    /// Creates a configuration for `delta` errors with minimum k-mer
    /// length `s_min` and the paper's default limit of 1000 locations per
    /// read.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParamsError`] under the conditions of
    /// [`OssParams::new`].
    pub fn new(delta: u32, s_min: usize) -> Result<ReputeConfig, InvalidParamsError> {
        Ok(ReputeConfig {
            oss: OssParams::new(delta, s_min)?,
            max_locations: 1000,
            prefilter: PrefilterMode::None,
            prefilter_q: qgram::DEFAULT_Q,
            prefilter_bin_width: qgram::DEFAULT_BIN_WIDTH,
            schedule: ScheduleMode::Static,
            dynamic_batch: 0,
            host_threads: 0,
            max_retries: DEFAULT_MAX_RETRIES,
        })
    }

    /// Sets the retry budget for transient kernel-launch faults: a launch
    /// failing transiently is retried after an exponential simulated
    /// backoff up to this many times before the executor escalates the
    /// device to a permanent loss and fails its batches over to the
    /// surviving devices. `0` disables retries (every transient fault
    /// escalates immediately). Only consulted when a fault plan is
    /// active. The default is [`DEFAULT_MAX_RETRIES`].
    pub fn with_max_retries(mut self, max_retries: usize) -> ReputeConfig {
        self.max_retries = max_retries;
        self
    }

    /// The transient-fault retry budget.
    pub fn max_retries(&self) -> usize {
        self.max_retries
    }

    /// Selects the multi-device scheduling policy; the default is
    /// [`ScheduleMode::Static`] (the paper's user-specified shares).
    pub fn with_schedule(mut self, schedule: ScheduleMode) -> ReputeConfig {
        self.schedule = schedule;
        self
    }

    /// Overrides the dynamic scheduler's batch size in reads; `0` (the
    /// default) sizes batches automatically — see
    /// [`crate::Schedule::Dynamic`]. Only consulted when the schedule
    /// mode is dynamic.
    pub fn with_dynamic_batch(mut self, batch: usize) -> ReputeConfig {
        self.dynamic_batch = batch;
        self
    }

    /// Caps the host threads the executor may use; `0` (the default)
    /// lets the executor decide — one thread per share in static mode,
    /// one per host core in dynamic mode. `1` forces the sequential
    /// host of earlier releases.
    pub fn with_host_threads(mut self, host_threads: usize) -> ReputeConfig {
        self.host_threads = host_threads;
        self
    }

    /// The selected multi-device scheduling policy.
    pub fn schedule(&self) -> ScheduleMode {
        self.schedule
    }

    /// The dynamic scheduler's batch size (`0` = automatic).
    pub fn dynamic_batch(&self) -> usize {
        self.dynamic_batch
    }

    /// The executor's host-thread cap (`0` = automatic).
    pub fn host_threads(&self) -> usize {
        self.host_threads
    }

    /// Overrides the *first-n* output-slot limit per read.
    ///
    /// # Panics
    ///
    /// Panics if `limit == 0`.
    pub fn with_max_locations(mut self, limit: usize) -> ReputeConfig {
        assert!(limit > 0, "location limit must be positive");
        self.max_locations = limit;
        self
    }

    /// Switches the DP exploration space (see
    /// [`repute_filter::oss::Exploration`]); the default is the paper's
    /// restricted space.
    pub fn with_exploration(mut self, exploration: Exploration) -> ReputeConfig {
        self.oss = self.oss.exploration(exploration);
        self
    }

    /// Selects the pre-alignment filter stage (see
    /// [`repute_prefilter::PrefilterMode`]); the default is
    /// [`PrefilterMode::None`]. Filters are sound, so this changes
    /// mapping cost only, never mapping output.
    pub fn with_prefilter(mut self, mode: PrefilterMode) -> ReputeConfig {
        self.prefilter = mode;
        self
    }

    /// Overrides the q-gram bin filter's parameters (gram length `q`
    /// and reference bin width in bases). Only consulted when the
    /// prefilter mode uses q-gram bins; non-default values make the
    /// mapper build its own bins instead of sharing the index's.
    ///
    /// # Panics
    ///
    /// Panics under the conditions of
    /// [`repute_prefilter::QgramBins::build`]: `q` outside
    /// `1..=`[`qgram::MAX_Q`] or a zero bin width.
    pub fn with_prefilter_qgram(mut self, q: usize, bin_width: usize) -> ReputeConfig {
        assert!(
            (1..=qgram::MAX_Q).contains(&q),
            "prefilter q must be in 1..={}",
            qgram::MAX_Q
        );
        assert!(bin_width > 0, "prefilter bin width must be positive");
        self.prefilter_q = q;
        self.prefilter_bin_width = bin_width;
        self
    }

    /// The selected pre-alignment filter mode.
    pub fn prefilter(&self) -> PrefilterMode {
        self.prefilter
    }

    /// The q-gram length of the bin filter.
    pub fn prefilter_q(&self) -> usize {
        self.prefilter_q
    }

    /// The reference bin width (bases) of the bin filter.
    pub fn prefilter_bin_width(&self) -> usize {
        self.prefilter_bin_width
    }

    /// `true` when the q-gram bin parameters match the prefilter
    /// crate's defaults — i.e. the bins prebuilt by
    /// [`repute_mappers::IndexedReference`] can be shared as-is.
    pub fn prefilter_uses_default_bins(&self) -> bool {
        self.prefilter_q == qgram::DEFAULT_Q && self.prefilter_bin_width == qgram::DEFAULT_BIN_WIDTH
    }

    /// The error budget δ.
    pub fn delta(&self) -> u32 {
        self.oss.delta()
    }

    /// The minimum k-mer length `S_min`.
    pub fn s_min(&self) -> usize {
        self.oss.s_min()
    }

    /// The per-read output-slot limit.
    pub fn max_locations(&self) -> usize {
        self.max_locations
    }

    /// The underlying DP parameters.
    pub fn oss_params(&self) -> &OssParams {
        &self.oss
    }

    /// Bytes of device output buffer one read needs (position, strand and
    /// distance per slot) — the quantity the OpenCL 1.2 restrictions make
    /// static (§III).
    pub fn output_slot_bytes(&self) -> usize {
        // position u32 + distance u32 + strand u8 (padded)
        self.max_locations * 12
    }

    /// Returns `true` if a read of `read_len` bases is mappable under this
    /// configuration.
    pub fn feasible_for(&self, read_len: usize) -> bool {
        self.oss.feasible_for(read_len)
    }

    /// Estimated private-memory bytes one read's kernel instance needs:
    /// the DP tables (see
    /// [`OssParams::dp_footprint_bytes`](repute_filter::oss::OssParams::dp_footprint_bytes)),
    /// one frequency column of FM intervals, the blocked-Myers state and
    /// the packed read. Feeding this to the platform simulator's
    /// occupancy model reproduces the §IV link between `S_min` and GPU
    /// throughput.
    pub fn kernel_footprint_bytes(&self, read_len: usize) -> usize {
        let column = (self.s_min() + repute_filter::freq::MAX_EXTRA) * 8;
        let myers_state = read_len.div_ceil(64) * 16;
        self.oss.dp_footprint_bytes(read_len) + column + myers_state + read_len.div_ceil(4) + 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let config = ReputeConfig::new(5, 12).unwrap();
        assert_eq!(config.delta(), 5);
        assert_eq!(config.s_min(), 12);
        assert_eq!(config.max_locations(), 1000);
        assert!(config.feasible_for(100));
        assert!(!config.feasible_for(60));
    }

    #[test]
    fn invalid_params_propagate() {
        assert!(ReputeConfig::new(5, 0).is_err());
    }

    #[test]
    fn kernel_footprint_shrinks_with_s_min() {
        // The §IV mechanism: larger S_min → smaller DP tables → smaller
        // kernel → better GPU occupancy.
        let small = ReputeConfig::new(4, 12)
            .unwrap()
            .kernel_footprint_bytes(100);
        let large = ReputeConfig::new(4, 20)
            .unwrap()
            .kernel_footprint_bytes(100);
        assert!(
            large < small,
            "footprint: s_min 12 → {small}, s_min 20 → {large}"
        );
        // Infeasible read: DP contributes 0; the column (31 intervals of
        // 8 bytes), one Myers block (16), the packed read (10) and the
        // fixed slack (64) remain.
        assert_eq!(
            ReputeConfig::new(7, 15).unwrap().kernel_footprint_bytes(40),
            (15 + 16) * 8 + 16 + 10 + 64
        );
    }

    #[test]
    fn output_slots_scale_with_limit() {
        let config = ReputeConfig::new(3, 12).unwrap().with_max_locations(100);
        assert_eq!(config.output_slot_bytes(), 1200);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_limit_rejected() {
        let _ = ReputeConfig::new(3, 12).unwrap().with_max_locations(0);
    }

    #[test]
    fn prefilter_knobs_default_off_and_round_trip() {
        let config = ReputeConfig::new(5, 12).unwrap();
        assert_eq!(config.prefilter(), PrefilterMode::None);
        assert!(config.prefilter_uses_default_bins());
        let tuned = config
            .with_prefilter(PrefilterMode::Both)
            .with_prefilter_qgram(4, 128);
        assert_eq!(tuned.prefilter(), PrefilterMode::Both);
        assert_eq!(tuned.prefilter_q(), 4);
        assert_eq!(tuned.prefilter_bin_width(), 128);
        assert!(!tuned.prefilter_uses_default_bins());
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn zero_bin_width_rejected() {
        let _ = ReputeConfig::new(3, 12).unwrap().with_prefilter_qgram(5, 0);
    }

    #[test]
    fn schedule_knobs_default_off_and_round_trip() {
        let config = ReputeConfig::new(5, 12).unwrap();
        assert_eq!(config.schedule(), ScheduleMode::Static);
        assert_eq!(config.dynamic_batch(), 0);
        assert_eq!(config.host_threads(), 0);
        assert_eq!(config.max_retries(), DEFAULT_MAX_RETRIES);
        let tuned = config
            .with_schedule(ScheduleMode::Dynamic)
            .with_dynamic_batch(64)
            .with_host_threads(2)
            .with_max_retries(5);
        assert_eq!(tuned.schedule(), ScheduleMode::Dynamic);
        assert_eq!(tuned.dynamic_batch(), 64);
        assert_eq!(tuned.host_threads(), 2);
        assert_eq!(tuned.max_retries(), 5);
    }

    #[test]
    fn schedule_mode_parses_and_displays() {
        assert_eq!(ScheduleMode::parse("static"), Some(ScheduleMode::Static));
        assert_eq!(ScheduleMode::parse("dynamic"), Some(ScheduleMode::Dynamic));
        assert_eq!(ScheduleMode::parse("greedy"), None);
        assert_eq!(ScheduleMode::Dynamic.to_string(), "dynamic");
        assert_eq!(ScheduleMode::default(), ScheduleMode::Static);
    }
}
