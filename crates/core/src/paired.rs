//! Paired-end mapping (extension beyond the paper).
//!
//! The paper maps the `_1` ends of paired NCBI read sets as single-end
//! reads. Real libraries come in pairs with a known insert-size range and
//! forward/reverse orientation; resolving a pair jointly disambiguates
//! repeat-tangled reads that are hopeless alone. This module pairs the
//! per-mate outputs of any [`Mapper`]: mates must map to opposite strands,
//! in FR orientation, with an insert length inside the configured window.

use repute_genome::{DnaSeq, Strand};
use repute_mappers::{MapOutput, Mapper, Mapping};

/// A jointly-resolved read pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairMapping {
    /// Mapping of the first mate.
    pub first: Mapping,
    /// Mapping of the second mate.
    pub second: Mapping,
    /// Outer insert length (leftmost start to rightmost end).
    pub insert: u32,
}

impl PairMapping {
    /// Combined edit distance of the pair.
    pub fn distance(&self) -> u32 {
        self.first.distance + self.second.distance
    }
}

/// Outcome of mapping one pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PairOutcome {
    /// At least one concordant pairing exists; all are reported, best
    /// (lowest combined distance) first.
    Paired(Vec<PairMapping>),
    /// No concordant pairing; the mates' individual mappings are handed
    /// back for single-end reporting.
    Discordant {
        /// Mappings of the first mate.
        first: Vec<Mapping>,
        /// Mappings of the second mate.
        second: Vec<Mapping>,
    },
}

/// Pairs the outputs of an underlying single-end mapper.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use repute_core::{PairedMapper, PairOutcome, ReputeConfig, ReputeMapper};
/// use repute_genome::synth::ReferenceBuilder;
/// use repute_mappers::IndexedReference;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let reference = ReferenceBuilder::new(100_000).seed(3).build();
/// // FR pair: first mate forward at 5_000, second mate is the reverse
/// // complement of the region ending at 5_400 (insert 400).
/// let first = reference.subseq(5_000..5_100);
/// let second = reference.subseq(5_300..5_400).reverse_complement();
/// let indexed = Arc::new(IndexedReference::build(reference));
/// let single = ReputeMapper::new(indexed, ReputeConfig::new(3, 15)?);
/// let paired = PairedMapper::new(single, 200, 600);
/// match paired.map_pair(&first, &second) {
///     PairOutcome::Paired(pairs) => assert_eq!(pairs[0].insert, 400),
///     PairOutcome::Discordant { .. } => panic!("pair should be concordant"),
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PairedMapper<M> {
    inner: M,
    insert_min: u32,
    insert_max: u32,
}

impl<M: Mapper> PairedMapper<M> {
    /// Wraps a single-end mapper with an insert-size window (outer
    /// distance, inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `insert_min > insert_max`.
    pub fn new(inner: M, insert_min: u32, insert_max: u32) -> PairedMapper<M> {
        assert!(
            insert_min <= insert_max,
            "insert window {insert_min}..{insert_max} is inverted"
        );
        PairedMapper {
            inner,
            insert_min,
            insert_max,
        }
    }

    /// The wrapped single-end mapper.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Maps both mates and resolves concordant pairings.
    pub fn map_pair(&self, first: &DnaSeq, second: &DnaSeq) -> PairOutcome {
        let mut scratch = repute_obs::MapMetrics::new();
        self.map_pair_metered(first, second, &mut scratch)
    }

    /// Like [`PairedMapper::map_pair`], folding both mates' per-stage
    /// telemetry into one shared `metrics` record (a pair is one unit of
    /// work in run-level reports).
    pub fn map_pair_metered(
        &self,
        first: &DnaSeq,
        second: &DnaSeq,
        metrics: &mut repute_obs::MapMetrics,
    ) -> PairOutcome {
        let a: MapOutput = self.inner.map_read_metered(first, metrics);
        let b: MapOutput = self.inner.map_read_metered(second, metrics);
        let mut pairs = Vec::new();
        for &m1 in &a.mappings {
            for &m2 in &b.mappings {
                if let Some(insert) = self.concordant_insert(m1, first.len(), m2, second.len()) {
                    pairs.push(PairMapping {
                        first: m1,
                        second: m2,
                        insert,
                    });
                }
            }
        }
        if pairs.is_empty() {
            return PairOutcome::Discordant {
                first: a.mappings,
                second: b.mappings,
            };
        }
        pairs.sort_by_key(|p| (p.distance(), p.first.position));
        PairOutcome::Paired(pairs)
    }

    /// FR concordance: the forward mate must lie left of the reverse
    /// mate, and the outer distance must fall inside the window.
    fn concordant_insert(&self, m1: Mapping, len1: usize, m2: Mapping, len2: usize) -> Option<u32> {
        let (fwd, fwd_len, rev, rev_len) = match (m1.strand, m2.strand) {
            (Strand::Forward, Strand::Reverse) => (m1, len1, m2, len2),
            (Strand::Reverse, Strand::Forward) => (m2, len2, m1, len1),
            _ => return None,
        };
        let _ = fwd_len;
        let rev_end = rev.position as u64 + rev_len as u64;
        if rev_end <= fwd.position as u64 {
            return None;
        }
        let insert = (rev_end - fwd.position as u64) as u32;
        ((self.insert_min..=self.insert_max).contains(&insert)).then_some(insert)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use repute_genome::synth::{ReferenceBuilder, RepeatFamily};
    use repute_mappers::IndexedReference;

    use crate::{ReputeConfig, ReputeMapper};

    fn mapper() -> ReputeMapper {
        let reference = ReferenceBuilder::new(120_000)
            .seed(601)
            .repeat_families(vec![RepeatFamily {
                unit_len: 150,
                copies: 60,
                divergence: 0.01,
            }])
            .build();
        ReputeMapper::new(
            Arc::new(IndexedReference::build(reference)),
            ReputeConfig::new(3, 15).expect("valid"),
        )
    }

    fn pair_from(mapper: &ReputeMapper, start: usize, insert: usize) -> (DnaSeq, DnaSeq) {
        let reference = mapper.indexed().seq();
        let first = reference.subseq(start..start + 100);
        let second = reference
            .subseq(start + insert - 100..start + insert)
            .reverse_complement();
        (first, second)
    }

    #[test]
    fn concordant_pair_resolves_with_correct_insert() {
        let single = mapper();
        let paired = PairedMapper::new(single, 250, 500);
        let (first, second) = pair_from(paired.inner(), 40_000, 380);
        match paired.map_pair(&first, &second) {
            PairOutcome::Paired(pairs) => {
                let best = &pairs[0];
                assert_eq!(best.insert, 380);
                assert_eq!(best.distance(), 0);
                assert!(best.first.position.abs_diff(40_000) <= 3);
            }
            PairOutcome::Discordant { .. } => panic!("expected concordant pair"),
        }
    }

    #[test]
    fn pairing_disambiguates_repeat_reads() {
        // A mate inside a young repeat maps to many copies; its partner
        // in unique sequence pins down the true one.
        let single = mapper();
        let reference = single.indexed().seq().clone();
        // Find a position inside a repeat (many mappings).
        let mut repeat_start = None;
        for start in (0..100_000).step_by(997) {
            let probe = reference.subseq(start..start + 100);
            if single.map_read(&probe).mappings.len() >= 3 {
                repeat_start = Some(start);
                break;
            }
        }
        let Some(start) = repeat_start else {
            return; // no multi-mapping region in this build — vacuous
        };
        let paired = PairedMapper::new(single, 250, 500);
        let (first, second) = pair_from(paired.inner(), start, 380);
        let solo = paired.inner().map_read(&first).mappings.len();
        match paired.map_pair(&first, &second) {
            PairOutcome::Paired(pairs) => {
                assert!(
                    pairs.len() <= solo,
                    "pairing should not multiply ambiguity: {} pairs vs {} solo",
                    pairs.len(),
                    solo
                );
                // The true location survives pairing (other surviving
                // pairs, if any, are co-optimal repeat copies).
                assert!(
                    pairs
                        .iter()
                        .any(|p| p.first.position.abs_diff(start as u32) <= 3),
                    "true pairing lost: {pairs:?}"
                );
            }
            PairOutcome::Discordant { .. } => panic!("expected concordant pair"),
        }
    }

    #[test]
    fn wrong_orientation_or_insert_is_discordant() {
        let single = mapper();
        let paired = PairedMapper::new(single, 200, 300);
        let reference = paired.inner().indexed().seq();
        // Both mates forward: never concordant.
        let first = reference.subseq(10_000..10_100);
        let second = reference.subseq(10_250..10_350);
        match paired.map_pair(&first, &second) {
            PairOutcome::Discordant { first, second } => {
                assert!(!first.is_empty());
                assert!(!second.is_empty());
            }
            PairOutcome::Paired(p) => panic!("FF pair must be discordant, got {p:?}"),
        }
        // Correct orientation, insert outside the window.
        let (first, second) = pair_from(paired.inner(), 20_000, 800);
        assert!(matches!(
            paired.map_pair(&first, &second),
            PairOutcome::Discordant { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_window_rejected() {
        let _ = PairedMapper::new(mapper(), 500, 100);
    }

    #[test]
    fn metered_pairing_counts_both_mates() {
        let single = mapper();
        let paired = PairedMapper::new(single, 250, 500);
        let (first, second) = pair_from(paired.inner(), 40_000, 380);
        let mut a = repute_obs::MapMetrics::new();
        let mut b = repute_obs::MapMetrics::new();
        paired.inner().map_read_metered(&first, &mut a);
        paired.inner().map_read_metered(&second, &mut b);
        let mut pair = repute_obs::MapMetrics::new();
        let outcome = paired.map_pair_metered(&first, &second, &mut pair);
        assert!(matches!(outcome, PairOutcome::Paired(_)));
        let mut expected = a;
        expected.merge(&b);
        assert_eq!(pair, expected, "pair record must equal the mates' sum");
    }
}
