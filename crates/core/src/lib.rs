//! REPUTE — an OpenCL-style REad maPper for heterogeneoUs sysTEms.
//!
//! This crate is the reproduction's primary deliverable: the mapper the
//! DATE 2020 paper proposes. Mapping proceeds in the paper's three stages:
//!
//! 1. **Preprocessing** — the reference is indexed once
//!    ([`repute_mappers::IndexedReference`]: FM-Index + sampled suffix
//!    array);
//! 2. **Filtration** — each read is partitioned into δ+1 k-mers by the
//!    memory-optimised DP of [`repute_filter::oss`], minimising the total
//!    candidate count (the paper's contribution, inspired by the Optimal
//!    Seed Solver);
//! 3. **Verification** — every candidate window is checked with the Myers
//!    bit-vector kernel of [`repute_align`], reporting the *first-n*
//!    locations per read (the OpenCL 1.2 fixed-output restriction, §III).
//!
//! The [`multi_device`] module launches the mapping kernel task-parallel
//! across the devices of a simulated platform
//! ([`repute_hetsim::Platform`]), with the workload distribution under
//! user control — the experiment behind the paper's Fig. 3 — and batches
//! chunked so no device buffer exceeds a quarter of device RAM.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use repute_genome::synth::ReferenceBuilder;
//! use repute_mappers::{IndexedReference, Mapper};
//! use repute_core::{ReputeConfig, ReputeMapper};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let reference = ReferenceBuilder::new(30_000).seed(1).build();
//! let read = reference.subseq(1234..1334);
//! let indexed = Arc::new(IndexedReference::build(reference));
//!
//! let config = ReputeConfig::new(5, 12)?; // δ = 5, S_min = 12
//! let mapper = ReputeMapper::new(indexed, config);
//! let out = mapper.map_read(&read);
//! assert!(out.mappings.iter().any(|m| m.position == 1234));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
pub mod journal;
mod mapper;
pub mod multi_device;
mod paired;
mod resumable;

pub use config::{ReputeConfig, ScheduleMode, DEFAULT_MAX_RETRIES};
pub use error::ReputeError;
pub use journal::{write_atomic, RunFingerprint, RunJournal};
pub use mapper::{CigarMapping, ReputeMapper};
pub use multi_device::{
    balanced_shares, map_on_platform, map_on_platform_with_metrics, map_scheduled,
    map_scheduled_on_subset_traced, map_scheduled_traced, map_scheduled_with_faults,
    map_scheduled_with_faults_traced, BatchPlan, MappingRun, Schedule, AUTO_HOST_THREADS,
};
pub use paired::{PairMapping, PairOutcome, PairedMapper};
pub use resumable::{map_resumable, map_resumable_traced, ResumableRun};
