//! Task-parallel mapping across the devices of a simulated platform.
//!
//! "Unlike state-of-the-art mappers, REPUTE distributes the workload on
//! CPU and GPU, as per user specification, executing the work-items in
//! task-parallel fashion" (§III-B). This module runs any [`Mapper`] over a
//! read set under a [`Schedule`], honouring the OpenCL 1.2 buffer
//! restrictions: when a device's share needs more output memory than a
//! quarter of its RAM, the share is split into sequential batches ("run
//! the kernel multiple times with smaller read sets", §IV).
//!
//! Two schedules are supported:
//!
//! * [`Schedule::Static`] — the paper's user-specified contiguous share
//!   per device. Each share's [`CommandQueue`] runs on its own host
//!   thread (`std::thread::scope`), and outputs/metrics are reassembled
//!   in exact read order regardless of completion order.
//! * [`Schedule::Dynamic`] — the read set is carved into quarter-RAM-
//!   capped batches placed in a shared work queue that devices pull from
//!   greedily. Device assignment happens in *simulated* time with a
//!   deterministic event-driven rule (next batch goes to the device that
//!   frees earliest, ties broken by the lower device index), so
//!   `simulated_seconds`, timelines and energy are reproducible for any
//!   `--host-threads` value: batch execution on the host is decoupled
//!   from the simulated schedule, because a batch's outputs and work
//!   counts do not depend on which device runs it — only its duration
//!   does.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use repute_genome::DnaSeq;
use repute_hetsim::{
    Buffer, CommandQueue, DeviceProfile, DeviceRun, EnergyReport, Event, FaultCounters, FaultPlan,
    FnKernel, LaunchError, LaunchErrorKind, Platform, PlatformRun, Share,
};
use repute_mappers::{MapOutput, Mapper};
use repute_obs::trace::{device_pid, Span, SCHEDULER_PID};
use repute_obs::{
    DeviceTimeline, EnergySummary, KernelEvent, MapMetrics, RunReport, Samples, StageLatency,
};

use crate::config::{ReputeConfig, ScheduleMode};

/// `host_threads` value meaning "let the executor decide": one thread per
/// share in static mode, one per host core in dynamic mode.
pub const AUTO_HOST_THREADS: usize = 0;

/// Batch granularity target of [`Schedule::Dynamic`]'s auto batch size:
/// enough batches per device for greedy pulling to balance a skewed
/// workload, without drowning the timeline in micro-launches.
pub(crate) const DYNAMIC_BATCHES_PER_DEVICE: usize = 8;

/// How the executor distributes reads over the platform's devices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Schedule {
    /// A fixed contiguous run of reads per [`Share`] entry — the paper's
    /// "as per user specification" distribution. Each share's command
    /// queue runs on its own host thread.
    Static(Vec<Share>),
    /// Reads are carved into quarter-RAM-capped batches that devices pull
    /// from a shared queue greedily, in a deterministic event-driven
    /// simulated-time order (earliest-free device first, ties to the
    /// lower device index).
    Dynamic {
        /// Maximum reads per batch. `0` picks automatically: about
        /// [`DYNAMIC_BATCHES_PER_DEVICE`] batches per device, further
        /// capped by the smallest device's quarter-RAM output limit.
        batch: usize,
    },
}

impl Schedule {
    /// The schedule a [`ReputeConfig`] selects for mapping `items` reads
    /// on `platform`: throughput-proportional static shares, or dynamic
    /// batching with the configured batch size.
    pub fn for_config(config: &ReputeConfig, platform: &Platform, items: usize) -> Schedule {
        match config.schedule() {
            ScheduleMode::Static => Schedule::Static(platform.even_shares(items)),
            ScheduleMode::Dynamic => Schedule::Dynamic {
                batch: config.dynamic_batch(),
            },
        }
    }
}

/// How a device share is split into kernel launches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPlan {
    batches: Vec<usize>,
}

impl BatchPlan {
    /// Plans batches of `items` reads on `device`, given the output bytes
    /// one read requires.
    ///
    /// # Panics
    ///
    /// Panics if a single read's output does not fit the device at all.
    pub fn plan(device: &DeviceProfile, items: usize, bytes_per_item: usize) -> BatchPlan {
        if items == 0 {
            return BatchPlan { batches: vec![] };
        }
        let per_launch = Buffer::max_items(device, bytes_per_item);
        assert!(
            per_launch >= 1,
            "one read's output ({bytes_per_item} bytes) exceeds the quarter-RAM cap of {}",
            device.name()
        );
        BatchPlan::uniform(items, per_launch)
    }

    /// Plans `items` reads into uniform batches of at most `max_batch`
    /// (the last batch takes the remainder) — the dynamic scheduler's
    /// shared work queue.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0` while `items > 0`.
    pub fn uniform(items: usize, max_batch: usize) -> BatchPlan {
        if items == 0 {
            return BatchPlan { batches: vec![] };
        }
        assert!(max_batch >= 1, "batch size must be positive");
        let mut batches = Vec::with_capacity(items.div_ceil(max_batch));
        let mut remaining = items;
        while remaining > 0 {
            let take = remaining.min(max_batch);
            batches.push(take);
            remaining -= take;
        }
        BatchPlan { batches }
    }

    /// The planned batch sizes, in launch order.
    pub fn batches(&self) -> &[usize] {
        &self.batches
    }

    /// Number of sequential kernel launches.
    pub fn launches(&self) -> usize {
        self.batches.len()
    }
}

/// Outcome of mapping a read set on a platform.
#[derive(Debug, Clone)]
pub struct MappingRun {
    /// Per-read outputs, in read order.
    pub outputs: Vec<MapOutput>,
    /// Per-device accounting (one entry per share in static mode, one per
    /// platform device in dynamic mode; batches folded in).
    pub device_runs: Vec<DeviceRun>,
    /// OpenCL-style profiling events per entry of `device_runs`: one
    /// [`Event`] per kernel launch (batch), carrying the
    /// queued/submitted/start/end timestamps of that device's command
    /// queue. Dynamic-mode labels carry the global batch index, so every
    /// batch's device attribution is visible in the timeline.
    pub timelines: Vec<Vec<Event>>,
    /// Simulated completion time: slowest device, batches sequential.
    pub simulated_seconds: f64,
    /// Wall-clock seconds the host spent.
    pub wall_seconds: f64,
    /// §III-D power/energy measurement of the run.
    pub energy: EnergyReport,
    /// Per-entry fault accounting, parallel to `device_runs` (all zero
    /// on a fault-free run).
    pub fault_counters: Vec<FaultCounters>,
    /// Devices that were permanently lost by the end of the run
    /// (ascending indices into the platform's device list; always empty
    /// on a fault-free run). Long-lived callers use this to retire
    /// devices from future scheduling — a loss escalated from an
    /// exhausted retry budget is visible only here, not in the plan.
    pub lost_devices: Vec<usize>,
    /// Spans recorded when the run was launched with tracing enabled
    /// (see [`map_scheduled_traced`] /
    /// [`map_scheduled_with_faults_traced`]); empty otherwise. Feed
    /// them to [`repute_obs::trace::write_chrome_trace`] for a
    /// `chrome://tracing` file.
    pub trace: Vec<Span>,
}

impl MappingRun {
    /// Total mappings reported across all reads.
    pub fn total_mappings(&self) -> usize {
        self.outputs.iter().map(|o| o.mappings.len()).sum()
    }

    /// Total substrate work across all devices.
    pub fn total_work(&self) -> u64 {
        self.device_runs.iter().map(|r| r.work).sum()
    }

    /// Rolls the run up into a run-level [`RunReport`]: per-read metric
    /// totals, one kernel timeline per share, the §III-D energy
    /// measurement folded into the report's energy summary, and per-stage
    /// totals derived from the merged metrics (see
    /// [`derive_stages`](MappingRun::derive_stages)).
    ///
    /// `per_read` is the metric record of every read in read order, as
    /// returned by [`map_on_platform_with_metrics`]; pass an empty slice
    /// when only the device timelines matter.
    pub fn report(&self, platform: &Platform, per_read: &[MapMetrics]) -> RunReport {
        let mut totals = MapMetrics::new();
        for m in per_read {
            totals.merge(m);
        }
        let stages =
            MappingRun::derive_stages(&totals, self.simulated_seconds, per_read.len() as u64);
        let latencies = self.derive_latencies(per_read, &totals);
        self.build_report(platform, per_read.len() as u64, totals, stages, latencies)
    }

    /// Like [`report`](MappingRun::report), but with caller-supplied
    /// stage timings (path, seconds, activations) instead of the ones
    /// derived from the metrics — for hosts that measured their own
    /// stage clock.
    pub fn report_with_stages(
        &self,
        platform: &Platform,
        per_read: &[MapMetrics],
        stages: Vec<(String, f64, u64)>,
    ) -> RunReport {
        let mut totals = MapMetrics::new();
        for m in per_read {
            totals.merge(m);
        }
        let latencies = self.derive_latencies(per_read, &totals);
        self.build_report(platform, per_read.len() as u64, totals, stages, latencies)
    }

    /// Decomposes a run's simulated seconds into per-stage totals using
    /// the tested work identity `work = fm_extend·EXTEND + dp_cells·DP +
    /// fm_locate·LOCATE + prefilter_words + word_updates`: the first
    /// three terms are DP filtration (seed selection and location), then
    /// the pre-alignment filter, then Myers verification. Counts are the
    /// stage's activations (reads, candidates tested, verifications).
    fn derive_stages(
        totals: &MapMetrics,
        simulated_seconds: f64,
        reads: u64,
    ) -> Vec<(String, f64, u64)> {
        use repute_mappers::engine_costs::{DP_CELL_COST, EXTEND_COST, LOCATE_COST};

        let filtration = totals.fm_extend_ops * EXTEND_COST
            + totals.dp_cells * DP_CELL_COST
            + totals.fm_locate_ops * LOCATE_COST;
        let prefilter = totals.prefilter_words;
        let verification = totals.word_updates;
        let total = filtration + prefilter + verification;
        if total == 0 {
            return Vec::new();
        }
        let seconds = |work: u64| simulated_seconds * work as f64 / total as f64;
        let mut stages = vec![("map/filtration".to_string(), seconds(filtration), reads)];
        if prefilter > 0 {
            stages.push((
                "map/prefilter".to_string(),
                seconds(prefilter),
                totals.prefilter_tested,
            ));
        }
        stages.push((
            "map/verification".to_string(),
            seconds(verification),
            totals.verifications,
        ));
        stages
    }

    /// Exact latency percentiles over two populations: each derived
    /// stage's per-read seconds (the read's share of the stage's
    /// work-proportional simulated time) and the per-batch kernel
    /// durations across all device timelines (row `"batch"`). All in
    /// simulated time, so the rows are deterministic.
    fn derive_latencies(&self, per_read: &[MapMetrics], totals: &MapMetrics) -> Vec<StageLatency> {
        use repute_mappers::engine_costs::{DP_CELL_COST, EXTEND_COST, LOCATE_COST};

        let mut out = Vec::new();
        let filtration = totals.fm_extend_ops * EXTEND_COST
            + totals.dp_cells * DP_CELL_COST
            + totals.fm_locate_ops * LOCATE_COST;
        let total = filtration + totals.prefilter_words + totals.word_updates;
        if total > 0 && !per_read.is_empty() {
            let scale = self.simulated_seconds / total as f64;
            let per_stage = |work_of: &dyn Fn(&MapMetrics) -> u64| -> Vec<f64> {
                per_read.iter().map(|m| work_of(m) as f64 * scale).collect()
            };
            let mut rows: Vec<(&str, Vec<f64>)> = vec![(
                "map/filtration",
                per_stage(&|m: &MapMetrics| {
                    m.fm_extend_ops * EXTEND_COST
                        + m.dp_cells * DP_CELL_COST
                        + m.fm_locate_ops * LOCATE_COST
                }),
            )];
            if totals.prefilter_words > 0 {
                rows.push((
                    "map/prefilter",
                    per_stage(&|m: &MapMetrics| m.prefilter_words),
                ));
            }
            rows.push((
                "map/verification",
                per_stage(&|m: &MapMetrics| m.word_updates),
            ));
            for (stage, values) in rows {
                let samples = Samples::from_values(&values);
                let (p50, p90, p99) = samples.p50_p90_p99();
                out.push(StageLatency {
                    stage: stage.to_string(),
                    count: samples.count(),
                    p50_seconds: p50,
                    p90_seconds: p90,
                    p99_seconds: p99,
                });
            }
        }
        let batch_durations: Vec<f64> = self
            .timelines
            .iter()
            .flatten()
            .map(Event::duration_seconds)
            .collect();
        if !batch_durations.is_empty() {
            let samples = Samples::from_values(&batch_durations);
            let (p50, p90, p99) = samples.p50_p90_p99();
            out.push(StageLatency {
                stage: "batch".to_string(),
                count: samples.count(),
                p50_seconds: p50,
                p90_seconds: p90,
                p99_seconds: p99,
            });
        }
        out
    }

    fn build_report(
        &self,
        platform: &Platform,
        reads: u64,
        totals: MapMetrics,
        stages: Vec<(String, f64, u64)>,
        latencies: Vec<StageLatency>,
    ) -> RunReport {
        let devices = self
            .device_runs
            .iter()
            .zip(&self.timelines)
            .enumerate()
            .map(|(idx, (dr, events))| {
                let profile = &platform.devices()[dr.device];
                let counters = self.fault_counters.get(idx).copied().unwrap_or_default();
                DeviceTimeline {
                    device: format!("{} [{}]", profile.name(), profile.kind().as_str()),
                    events: events
                        .iter()
                        .map(|e| KernelEvent {
                            label: e.label.clone(),
                            items: e.items as u64,
                            work: e.work,
                            queued_seconds: e.queued_seconds,
                            submitted_seconds: e.submitted_seconds,
                            start_seconds: e.start_seconds,
                            end_seconds: e.end_seconds,
                        })
                        .collect(),
                    retries: counters.retries,
                    faults: counters.faults,
                    migrated_batches: counters.migrated_batches,
                }
            })
            .collect();
        RunReport {
            reads,
            totals,
            stages,
            latencies,
            devices,
            simulated_seconds: self.simulated_seconds,
            wall_seconds: self.wall_seconds,
            resumed_batches: 0,
            energy: Some(EnergySummary {
                mapping_seconds: self.energy.mapping_seconds,
                average_power_w: self.energy.average_power_w,
                idle_power_w: platform.idle_power_w(),
                energy_j: self.energy.energy_j,
            }),
        }
    }
}

/// Computes a workload distribution proportional to each device's
/// *effective* throughput for this mapper's kernel — nominal throughput
/// times the occupancy its private-memory footprint allows.
///
/// [`Platform::even_shares`] splits by nominal throughput only; for
/// footprint-heavy kernels (small `S_min`) that overloads the GPUs, which
/// is why the paper's Fig. 3 sweep and §IV insist the distribution "should
/// be performed judiciously". The rounding remainder is spread
/// largest-fraction-first ([`repute_hetsim::apportion`]), so the shares
/// always sum to `items`.
pub fn balanced_shares<M: Mapper>(
    mapper: &M,
    platform: &Platform,
    read_len: usize,
    items: usize,
) -> Vec<Share> {
    let footprint = mapper.kernel_private_bytes(read_len);
    let effective: Vec<f64> = platform
        .devices()
        .iter()
        .map(|d| d.throughput() * d.occupancy(footprint))
        .collect();
    repute_hetsim::apportion(items, &effective)
        .into_iter()
        .enumerate()
        .map(|(device, items)| Share { device, items })
        .collect()
}

/// Maps `reads` with `mapper`, distributing them over `shares` of
/// `platform` — the paper's multi-device launch.
///
/// Each share receives a contiguous run of reads and executes on its own
/// host thread. Shares whose output buffers would exceed the device's
/// quarter-RAM cap are processed in sequential batches on that device.
///
/// # Errors
///
/// Returns [`LaunchError`] if `shares` is empty while reads were
/// supplied, references an unknown device, or does not cover exactly
/// `reads.len()` items. An empty read set with no shares is a valid
/// (empty, zero-energy) run.
pub fn map_on_platform<M: Mapper>(
    mapper: &M,
    platform: &Platform,
    shares: &[Share],
    reads: &[DnaSeq],
) -> Result<MappingRun, LaunchError> {
    map_on_platform_with_metrics(mapper, platform, shares, reads).map(|(run, _)| run)
}

/// Like [`map_on_platform`], additionally returning the per-read
/// [`MapMetrics`] record of every read (in read order) — the input to
/// [`MappingRun::report`].
///
/// The unmetered entry point delegates here, so both share one launch
/// path; the per-read records are plain stack `Copy` structs filled by
/// [`Mapper::map_read_metered`], which for baseline mappers falls back to
/// the coarse counters observable from [`MapOutput`].
///
/// # Errors
///
/// Returns [`LaunchError`] under the same conditions as
/// [`map_on_platform`].
pub fn map_on_platform_with_metrics<M: Mapper>(
    mapper: &M,
    platform: &Platform,
    shares: &[Share],
    reads: &[DnaSeq],
) -> Result<(MappingRun, Vec<MapMetrics>), LaunchError> {
    map_static(mapper, platform, shares, AUTO_HOST_THREADS, false, reads)
}

/// Maps `reads` with `mapper` on `platform` under `schedule`, using up to
/// `host_threads` host threads ([`AUTO_HOST_THREADS`] lets the executor
/// decide). Mapping output and per-read metrics are identical across
/// schedules and thread counts; only the simulated schedule (and the
/// host's wall clock) changes.
///
/// # Errors
///
/// Returns [`LaunchError`] under the conditions of [`map_on_platform`]
/// (static schedules), or when a single read's output exceeds the
/// smallest device's quarter-RAM cap (dynamic schedules).
pub fn map_scheduled<M: Mapper>(
    mapper: &M,
    platform: &Platform,
    schedule: &Schedule,
    host_threads: usize,
    reads: &[DnaSeq],
) -> Result<(MappingRun, Vec<MapMetrics>), LaunchError> {
    map_scheduled_traced(mapper, platform, schedule, host_threads, false, reads)
}

/// [`map_scheduled`] with span tracing switched by `tracing`: when
/// true, every kernel launch and batch lifecycle leaves a [`Span`] in
/// [`MappingRun::trace`]. A disabled run builds no spans at all, and
/// tracing never changes outputs, metrics, or the simulated schedule.
pub fn map_scheduled_traced<M: Mapper>(
    mapper: &M,
    platform: &Platform,
    schedule: &Schedule,
    host_threads: usize,
    tracing: bool,
    reads: &[DnaSeq],
) -> Result<(MappingRun, Vec<MapMetrics>), LaunchError> {
    match schedule {
        Schedule::Static(shares) => {
            map_static(mapper, platform, shares, host_threads, tracing, reads)
        }
        Schedule::Dynamic { batch } => {
            map_dynamic(mapper, platform, *batch, host_threads, tracing, reads)
        }
    }
}

/// Builds the scheduler-side batch-lifecycle span for a placed batch:
/// it lives on [`SCHEDULER_PID`], one lane (`tid`) per device, and
/// carries the batch index, read range, and placement as args.
pub(crate) fn batch_span(
    batch_idx: usize,
    lo: usize,
    hi: usize,
    dev: usize,
    event: &Event,
) -> Span {
    Span::new(
        format!("batch-{batch_idx}"),
        "batch",
        SCHEDULER_PID,
        event.queued_seconds,
        event.end_seconds,
    )
    .on_tid(dev as u32)
    .arg_u64("batch", batch_idx as u64)
    .arg_u64("lo", lo as u64)
    .arg_u64("hi", hi as u64)
    .arg_u64("device", dev as u64)
}

/// One batch of the fault-aware replay: its contiguous read range and,
/// under a static schedule, the device the user's distribution assigned
/// it to (`None` in dynamic mode — the scheduler places it).
struct FaultBatch {
    lo: usize,
    hi: usize,
    owner: Option<usize>,
}

/// Like [`map_scheduled`], but executing under a [`FaultPlan`]: transient
/// launch failures are retried with exponential simulated backoff (up to
/// `max_retries` per launch — see
/// [`ReputeConfig::max_retries`](crate::ReputeConfig::max_retries)),
/// batches owned by a permanently lost device fail over to the surviving
/// devices by the same deterministic earliest-free replay the dynamic
/// scheduler uses, and degraded devices simply run slower.
///
/// **Output invariance:** whenever at least one device survives, the
/// returned outputs and per-read metrics are bit-identical to the
/// fault-free run of the same schedule — reads are host-executed in
/// deterministic batch order (phase 1) and only the simulated *placement*
/// of batches reacts to faults (phase 2), so faults can change
/// `simulated_seconds`, timelines, and energy, never mapping results.
///
/// With an empty plan this delegates to [`map_scheduled`] unchanged.
/// With a non-empty plan, both schedules replay through one fault-armed
/// [`CommandQueue`] per platform device, so `device_runs`/`timelines`
/// have one entry per device (as in dynamic mode) rather than one per
/// share.
///
/// # Errors
///
/// Everything [`map_scheduled`] returns, plus
/// [`LaunchErrorKind::AllDevicesLost`] naming the unmapped read range
/// when no device survives, and an invalid-distribution error when the
/// plan names a device the platform does not have.
pub fn map_scheduled_with_faults<M: Mapper>(
    mapper: &M,
    platform: &Platform,
    schedule: &Schedule,
    host_threads: usize,
    fault_plan: &FaultPlan,
    max_retries: usize,
    reads: &[DnaSeq],
) -> Result<(MappingRun, Vec<MapMetrics>), LaunchError> {
    map_scheduled_with_faults_traced(
        mapper,
        platform,
        schedule,
        host_threads,
        fault_plan,
        max_retries,
        false,
        reads,
    )
}

/// [`map_scheduled_with_faults`] with span tracing switched by
/// `tracing` (see [`map_scheduled_traced`]). Fault-armed runs
/// additionally record `fault`, `retry`, and `migration` spans from
/// the per-device command queues.
#[allow(clippy::too_many_arguments)]
pub fn map_scheduled_with_faults_traced<M: Mapper>(
    mapper: &M,
    platform: &Platform,
    schedule: &Schedule,
    host_threads: usize,
    fault_plan: &FaultPlan,
    max_retries: usize,
    tracing: bool,
    reads: &[DnaSeq],
) -> Result<(MappingRun, Vec<MapMetrics>), LaunchError> {
    if fault_plan.is_empty() {
        return map_scheduled_traced(mapper, platform, schedule, host_threads, tracing, reads);
    }
    let n_dev = platform.devices().len();
    if let Some(max_dev) = fault_plan.max_device() {
        if max_dev >= n_dev {
            return Err(LaunchError::from_message(format!(
                "fault plan names device {max_dev} but the platform has only {n_dev} devices"
            )));
        }
    }
    let start = Instant::now();
    let bytes_per_read = mapper.max_locations() * 12;

    // Build the global batch list under the schedule's own batching
    // rules; batches are contiguous and in read order, so concatenating
    // phase-1 results restores exact read order no matter where phase 2
    // places them.
    let mut batches: Vec<FaultBatch> = Vec::new();
    match schedule {
        Schedule::Static(shares) => {
            if shares.is_empty() {
                if reads.is_empty() {
                    return Ok(empty_run(platform));
                }
                return Err(LaunchError::from_message("no shares supplied"));
            }
            for share in shares {
                if share.device >= n_dev {
                    return Err(LaunchError::from_message(format!(
                        "device index {} out of range ({n_dev} devices)",
                        share.device
                    )));
                }
            }
            let covered: usize = shares.iter().map(|s| s.items).sum();
            if covered != reads.len() {
                return Err(LaunchError::from_message(format!(
                    "shares cover {covered} items but {} reads were supplied",
                    reads.len()
                )));
            }
            let mut offset = 0usize;
            for share in shares {
                let device = &platform.devices()[share.device];
                for &b in BatchPlan::plan(device, share.items, bytes_per_read).batches() {
                    batches.push(FaultBatch {
                        lo: offset,
                        hi: offset + b,
                        owner: Some(share.device),
                    });
                    offset += b;
                }
            }
        }
        Schedule::Dynamic { batch } => {
            let cap = platform
                .devices()
                .iter()
                .map(|d| Buffer::max_items(d, bytes_per_read))
                .min()
                .expect("a platform has at least one device");
            if cap == 0 && !reads.is_empty() {
                return Err(LaunchError::from_message(format!(
                    "one read's output ({bytes_per_read} bytes) exceeds the quarter-RAM cap of \
                     the smallest device"
                )));
            }
            let auto = reads
                .len()
                .div_ceil(DYNAMIC_BATCHES_PER_DEVICE * n_dev)
                .max(1);
            let batch_size = if *batch == 0 {
                auto.min(cap)
            } else {
                (*batch).min(cap)
            };
            let mut offset = 0usize;
            for &b in BatchPlan::uniform(reads.len(), batch_size.max(1)).batches() {
                batches.push(FaultBatch {
                    lo: offset,
                    hi: offset + b,
                    owner: None,
                });
                offset += b;
            }
        }
    }
    if batches.is_empty() {
        return Ok(empty_run(platform));
    }

    // Phase 1 — host-execute every batch in parallel. Outputs, metrics
    // and work counts are device-independent, so faults cannot reach
    // them; only phase 2's simulated placement reacts to the plan.
    let max_read_len = reads.iter().map(DnaSeq::len).max().unwrap_or(0);
    let private_bytes = mapper.kernel_private_bytes(max_read_len);
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let results = run_jobs(
        batches.len(),
        worker_count(host_threads, host, batches.len()),
        |batch_idx| {
            let fb = &batches[batch_idx];
            let mut outputs = Vec::with_capacity(fb.hi - fb.lo);
            let mut metrics = Vec::with_capacity(fb.hi - fb.lo);
            let mut work = 0u64;
            for read in &reads[fb.lo..fb.hi] {
                let mut m = MapMetrics::new();
                let out = mapper.map_read_metered(read, &mut m);
                work += out.work;
                outputs.push(out);
                metrics.push(m);
            }
            BatchResult {
                outputs,
                metrics,
                work,
            }
        },
    );

    // Phase 2 — sequential deterministic replay against one fault-armed
    // command queue per device. The replay kernel recreates each batch's
    // launch from the phase-1 per-read work counts (no re-execution), so
    // a healthy device's durations match the fault-free path exactly.
    let mut state = fault_plan.state(n_dev);
    let mut queues: Vec<CommandQueue<'_>> = (0..n_dev)
        .map(|d| {
            let queue =
                CommandQueue::new(&platform.devices()[d]).with_fault_state(d, state.take_device(d));
            if tracing {
                queue.with_tracing()
            } else {
                queue
            }
        })
        .collect();
    let mut dead = vec![false; n_dev];
    let mut sched_spans: Vec<Span> = Vec::new();
    let enqueue_replay = |queue: &mut CommandQueue<'_>,
                          label: &str,
                          fb: &FaultBatch,
                          result: &BatchResult|
     -> Result<(), LaunchError> {
        let outs = &result.outputs;
        let kernel =
            FnKernel::new(move |i: usize| ((), outs[i].work)).with_private_bytes(private_bytes);
        queue
            .enqueue_with_retries(label, fb.hi - fb.lo, &kernel, max_retries)
            .map(|_| ())
    };

    // Primary pass: static batches go to their owning device; dynamic
    // batches to the earliest-free survivor (ties to the lower index).
    let mut orphans: Vec<usize> = Vec::new();
    for (batch_idx, fb) in batches.iter().enumerate() {
        match fb.owner {
            Some(dev) => {
                if dead[dev] {
                    orphans.push(batch_idx);
                    continue;
                }
                let label = format!("d{dev}-batch-{batch_idx}");
                match enqueue_replay(&mut queues[dev], &label, fb, &results[batch_idx]) {
                    Ok(()) => {
                        if tracing {
                            if let Some(event) = queues[dev].events().last() {
                                sched_spans.push(batch_span(batch_idx, fb.lo, fb.hi, dev, event));
                            }
                        }
                    }
                    Err(err) if matches!(err.kind(), LaunchErrorKind::DeviceLost { .. }) => {
                        dead[dev] = true;
                        orphans.push(batch_idx);
                    }
                    Err(err) => return Err(err),
                }
            }
            None => {
                let mut failed_on: Option<usize> = None;
                loop {
                    let Some(dev) = earliest_free(&queues, &dead) else {
                        return Err(LaunchError::all_devices_lost(fb.lo, reads.len()));
                    };
                    let label = format!("d{dev}-batch-{batch_idx}");
                    match enqueue_replay(&mut queues[dev], &label, fb, &results[batch_idx]) {
                        Ok(()) => {
                            if let Some(from) = failed_on {
                                queues[dev].annotate_last(&format!("migrated from d{from}"));
                                queues[dev].note_migration();
                            }
                            if tracing {
                                if let Some(event) = queues[dev].events().last() {
                                    sched_spans
                                        .push(batch_span(batch_idx, fb.lo, fb.hi, dev, event));
                                }
                            }
                            break;
                        }
                        Err(err) if matches!(err.kind(), LaunchErrorKind::DeviceLost { .. }) => {
                            dead[dev] = true;
                            if failed_on.is_none() {
                                failed_on = Some(dev);
                            }
                        }
                        Err(err) => return Err(err),
                    }
                }
            }
        }
    }

    // Failover pass: orphaned static batches are re-queued, in batch
    // order, to the earliest-free surviving device — the same replay rule
    // the dynamic scheduler uses, so failover is deterministic too.
    let mut next_orphan = 0usize;
    while next_orphan < orphans.len() {
        let batch_idx = orphans[next_orphan];
        let fb = &batches[batch_idx];
        let owner = fb.owner.expect("only static batches are orphaned");
        let Some(dev) = earliest_free(&queues, &dead) else {
            let unplaced = &orphans[next_orphan..];
            let lo = unplaced
                .iter()
                .map(|&b| batches[b].lo)
                .min()
                .expect("non-empty");
            let hi = unplaced
                .iter()
                .map(|&b| batches[b].hi)
                .max()
                .expect("non-empty");
            return Err(LaunchError::all_devices_lost(lo, hi));
        };
        let label = format!("d{dev}-batch-{batch_idx}");
        match enqueue_replay(&mut queues[dev], &label, fb, &results[batch_idx]) {
            Ok(()) => {
                queues[dev].annotate_last(&format!("migrated from d{owner}"));
                queues[dev].note_migration();
                if tracing {
                    if let Some(event) = queues[dev].events().last() {
                        sched_spans.push(batch_span(batch_idx, fb.lo, fb.hi, dev, event));
                    }
                }
                next_orphan += 1;
            }
            Err(err) if matches!(err.kind(), LaunchErrorKind::DeviceLost { .. }) => {
                dead[dev] = true;
            }
            Err(err) => return Err(err),
        }
    }

    // Assemble: concatenation of batch results restores read order; one
    // device_run/timeline/counter entry per platform device.
    let mut outputs = Vec::with_capacity(reads.len());
    let mut metrics = Vec::with_capacity(reads.len());
    for r in results {
        outputs.extend(r.outputs);
        metrics.extend(r.metrics);
    }
    let mut device_runs = Vec::with_capacity(n_dev);
    let mut timelines = Vec::with_capacity(n_dev);
    let mut fault_counters = Vec::with_capacity(n_dev);
    let mut lost_devices = Vec::new();
    let mut trace = sched_spans;
    for (d, mut queue) in queues.into_iter().enumerate() {
        if dead[d] || queue.is_lost_now() {
            lost_devices.push(d);
        }
        device_runs.push(DeviceRun {
            device: queue.device_index(),
            items: queue.events().iter().map(|e| e.items).sum(),
            work: queue.total_work(),
            simulated_seconds: queue.finish_seconds(),
        });
        fault_counters.push(queue.fault_counters());
        trace.extend(queue.take_trace());
        timelines.push(queue.into_events());
    }
    Ok(finish_run_with_faults(
        platform,
        start,
        outputs,
        metrics,
        device_runs,
        timelines,
        fault_counters,
        lost_devices,
        trace,
    ))
}

/// Runs [`map_scheduled_with_faults_traced`] on a *subset* of the
/// platform's devices — the building block for executing independent
/// batches concurrently on disjoint device groups: each group maps on a
/// sub-platform whose simulated clock starts at zero, and because the
/// groups share no devices their timelines compose without interference.
///
/// `subset` holds strictly ascending global device indices. The fault
/// plan is expressed in *global* indices and is projected onto the
/// subset ([`FaultPlan::for_subset`]); schedules that name devices
/// (static shares) must already use subset-local positions. On return,
/// every device reference is mapped back to the global index space:
/// `device_runs[i].device`, [`MappingRun::lost_devices`], and the trace
/// spans' process/thread lanes, so reports and Chrome traces built
/// against the full platform attribute work to the right hardware.
/// Timeline labels keep their subset-local `d<i>-` prefixes (they
/// describe placement within the group).
///
/// # Errors
///
/// Everything the underlying executor returns, plus an
/// invalid-distribution error when `subset` is empty, unsorted, repeats
/// a device, or names one the platform does not have.
#[allow(clippy::too_many_arguments)]
pub fn map_scheduled_on_subset_traced<M: Mapper>(
    mapper: &M,
    platform: &Platform,
    subset: &[usize],
    schedule: &Schedule,
    host_threads: usize,
    fault_plan: &FaultPlan,
    max_retries: usize,
    tracing: bool,
    reads: &[DnaSeq],
) -> Result<(MappingRun, Vec<MapMetrics>), LaunchError> {
    let n_dev = platform.devices().len();
    if subset.is_empty() {
        return Err(LaunchError::from_message(
            "device subset is empty".to_string(),
        ));
    }
    if !subset.windows(2).all(|w| w[0] < w[1]) {
        return Err(LaunchError::from_message(format!(
            "device subset {subset:?} must be strictly ascending"
        )));
    }
    if *subset.last().expect("non-empty") >= n_dev {
        return Err(LaunchError::from_message(format!(
            "device subset {subset:?} names a device out of range ({n_dev} devices)"
        )));
    }
    let local_plan = fault_plan.for_subset(subset);
    if subset.len() == n_dev {
        // The subset IS the platform: no remapping needed.
        return map_scheduled_with_faults_traced(
            mapper,
            platform,
            schedule,
            host_threads,
            &local_plan,
            max_retries,
            tracing,
            reads,
        );
    }
    let sub_platform = Platform::new(
        platform.name(),
        platform.idle_power_w(),
        subset
            .iter()
            .map(|&d| platform.devices()[d].clone())
            .collect(),
    );
    let (mut run, metrics) = map_scheduled_with_faults_traced(
        mapper,
        &sub_platform,
        schedule,
        host_threads,
        &local_plan,
        max_retries,
        tracing,
        reads,
    )?;
    for dr in &mut run.device_runs {
        dr.device = subset[dr.device];
    }
    for lost in &mut run.lost_devices {
        *lost = subset[*lost];
    }
    for span in &mut run.trace {
        if span.pid == SCHEDULER_PID {
            // Batch-lifecycle spans lane on the device's tid.
            let local = span.tid as usize;
            if let Some(&global) = subset.get(local) {
                span.tid = global as u32;
                for (key, value) in &mut span.args {
                    if key == "device" {
                        *value = repute_obs::json::JsonValue::Num(global as f64);
                    }
                }
            }
        } else {
            let local = (span.pid - device_pid(0)) as usize;
            if let Some(&global) = subset.get(local) {
                span.pid = device_pid(global);
            }
        }
    }
    Ok((run, metrics))
}

/// The surviving device whose next launch could start earliest (ties to
/// the lower device index); `None` when every device is dead.
fn earliest_free(queues: &[CommandQueue<'_>], dead: &[bool]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (d, queue) in queues.iter().enumerate() {
        if dead[d] {
            continue;
        }
        let better = match best {
            Some(b) => queue.next_start_seconds() < queues[b].next_start_seconds(),
            None => true,
        };
        if better {
            best = Some(d);
        }
    }
    best
}

/// Per-share result of the static executor, produced on a worker thread.
struct ShareResult {
    outputs: Vec<MapOutput>,
    metrics: Vec<MapMetrics>,
    device_run: DeviceRun,
    events: Vec<Event>,
    spans: Vec<Span>,
}

fn map_static<M: Mapper>(
    mapper: &M,
    platform: &Platform,
    shares: &[Share],
    host_threads: usize,
    tracing: bool,
    reads: &[DnaSeq],
) -> Result<(MappingRun, Vec<MapMetrics>), LaunchError> {
    // Emptiness is checked before coverage, so an empty distribution is
    // reported as such — and accepted outright for an empty read set.
    if shares.is_empty() {
        if reads.is_empty() {
            return Ok(empty_run(platform));
        }
        return Err(LaunchError::from_message("no shares supplied"));
    }
    for share in shares {
        if share.device >= platform.devices().len() {
            return Err(LaunchError::from_message(format!(
                "device index {} out of range ({} devices)",
                share.device,
                platform.devices().len()
            )));
        }
    }
    let covered: usize = shares.iter().map(|s| s.items).sum();
    if covered != reads.len() {
        return Err(LaunchError::from_message(format!(
            "shares cover {covered} items but {} reads were supplied",
            reads.len()
        )));
    }

    let start = Instant::now();
    let bytes_per_read = mapper.max_locations() * 12;
    let max_read_len = reads.iter().map(DnaSeq::len).max().unwrap_or(0);
    let private_bytes = mapper.kernel_private_bytes(max_read_len);

    // Running prefix sum of share offsets — O(S), not O(S²).
    let mut offsets = Vec::with_capacity(shares.len());
    let mut next_offset = 0usize;
    for share in shares {
        offsets.push(next_offset);
        next_offset += share.items;
    }

    // One job per share: drive that share's in-order command queue. Each
    // batch is one enqueue, leaving an OpenCL-style profiling event with
    // all four timestamps; with zero launch overhead batches run back to
    // back. The queue's simulated clock starts at zero for every share
    // (kernels "launch simultaneously", §IV), so the simulated schedule
    // is independent of which host thread runs the share, or when.
    let results = run_jobs(
        shares.len(),
        worker_count(host_threads, shares.len(), shares.len()),
        |share_idx| {
            let share = shares[share_idx];
            let device = &platform.devices()[share.device];
            let plan = BatchPlan::plan(device, share.items, bytes_per_read);
            let mut queue = CommandQueue::new(device).with_device_index(share.device);
            if tracing {
                queue = queue.with_tracing();
            }
            let mut outputs = Vec::with_capacity(share.items);
            let mut metrics = Vec::with_capacity(share.items);
            let mut spans = Vec::new();
            let mut batch_offset = offsets[share_idx];
            for (batch_idx, &batch) in plan.batches().iter().enumerate() {
                let reads_slice = &reads[batch_offset..batch_offset + batch];
                let kernel = FnKernel::new(|i: usize| {
                    let mut m = MapMetrics::new();
                    let out = mapper.map_read_metered(&reads_slice[i], &mut m);
                    let work = out.work;
                    ((out, m), work)
                })
                .with_private_bytes(private_bytes);
                let label = format!("d{}-batch-{}", share.device, batch_idx);
                for (out, m) in queue.enqueue(label, batch, &kernel) {
                    outputs.push(out);
                    metrics.push(m);
                }
                if tracing {
                    if let Some(event) = queue.events().last() {
                        spans.push(batch_span(
                            batch_idx,
                            batch_offset,
                            batch_offset + batch,
                            share.device,
                            event,
                        ));
                    }
                }
                batch_offset += batch;
            }
            spans.extend(queue.take_trace());
            let device_run = DeviceRun {
                device: share.device,
                items: share.items,
                work: queue.total_work(),
                simulated_seconds: queue.finish_seconds(),
            };
            ShareResult {
                outputs,
                metrics,
                device_run,
                events: queue.into_events(),
                spans,
            }
        },
    );

    // Reassemble in share order: shares hold contiguous runs of reads, so
    // concatenating their results restores exact read order regardless of
    // which thread finished first.
    let mut outputs = Vec::with_capacity(reads.len());
    let mut metrics = Vec::with_capacity(reads.len());
    let mut device_runs = Vec::with_capacity(shares.len());
    let mut timelines = Vec::with_capacity(shares.len());
    let mut trace = Vec::new();
    for r in results {
        outputs.extend(r.outputs);
        metrics.extend(r.metrics);
        device_runs.push(r.device_run);
        timelines.push(r.events);
        trace.extend(r.spans);
    }
    Ok(finish_run(
        platform,
        start,
        outputs,
        metrics,
        device_runs,
        timelines,
        trace,
    ))
}

/// Per-batch result of the dynamic executor. Everything here is
/// device-independent: only a batch's simulated *duration* depends on the
/// device it is later assigned to.
pub(crate) struct BatchResult {
    pub(crate) outputs: Vec<MapOutput>,
    pub(crate) metrics: Vec<MapMetrics>,
    pub(crate) work: u64,
}

fn map_dynamic<M: Mapper>(
    mapper: &M,
    platform: &Platform,
    batch: usize,
    host_threads: usize,
    tracing: bool,
    reads: &[DnaSeq],
) -> Result<(MappingRun, Vec<MapMetrics>), LaunchError> {
    if reads.is_empty() {
        return Ok(empty_run(platform));
    }
    let bytes_per_read = mapper.max_locations() * 12;
    // Any batch must fit every device's quarter-RAM output cap, because
    // the scheduler is free to place it anywhere.
    let cap = platform
        .devices()
        .iter()
        .map(|d| Buffer::max_items(d, bytes_per_read))
        .min()
        .expect("a platform has at least one device");
    if cap == 0 {
        return Err(LaunchError::from_message(format!(
            "one read's output ({bytes_per_read} bytes) exceeds the quarter-RAM cap of the \
             smallest device"
        )));
    }
    let auto = reads
        .len()
        .div_ceil(DYNAMIC_BATCHES_PER_DEVICE * platform.devices().len())
        .max(1);
    let batch_size = if batch == 0 {
        auto.min(cap)
    } else {
        batch.min(cap)
    };
    let plan = BatchPlan::uniform(reads.len(), batch_size);

    let start = Instant::now();
    let max_read_len = reads.iter().map(DnaSeq::len).max().unwrap_or(0);
    let private_bytes = mapper.kernel_private_bytes(max_read_len);
    let mut ranges = Vec::with_capacity(plan.launches());
    let mut next_offset = 0usize;
    for &b in plan.batches() {
        ranges.push((next_offset, next_offset + b));
        next_offset += b;
    }

    // Phase 1 — execute every batch, in parallel on the host. Outputs,
    // metrics and work counts are the same whichever device the
    // scheduler later charges for the batch.
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let results = run_jobs(
        plan.launches(),
        worker_count(host_threads, host, plan.launches()),
        |batch_idx| {
            let (lo, hi) = ranges[batch_idx];
            let mut outputs = Vec::with_capacity(hi - lo);
            let mut metrics = Vec::with_capacity(hi - lo);
            let mut work = 0u64;
            for read in &reads[lo..hi] {
                let mut m = MapMetrics::new();
                let out = mapper.map_read_metered(read, &mut m);
                work += out.work;
                outputs.push(out);
                metrics.push(m);
            }
            BatchResult {
                outputs,
                metrics,
                work,
            }
        },
    );

    // Phase 2 — the event-driven simulated-time scheduler, pure
    // sequential arithmetic over the work counts: batches leave the
    // shared queue in order, each pulled by the device that frees
    // earliest (ties to the lower device index). Deterministic for any
    // host thread count.
    let n_dev = platform.devices().len();
    let mut free_at = vec![0.0f64; n_dev];
    let mut timelines: Vec<Vec<Event>> = vec![Vec::new(); n_dev];
    let mut items_of = vec![0usize; n_dev];
    let mut work_of = vec![0u64; n_dev];
    let mut trace: Vec<Span> = Vec::new();
    for (batch_idx, result) in results.iter().enumerate() {
        let mut dev = 0usize;
        for d in 1..n_dev {
            if free_at[d] < free_at[dev] {
                dev = d;
            }
        }
        let duration =
            platform.devices()[dev].seconds_for_with_footprint(result.work, private_bytes);
        let t = free_at[dev];
        let event = Event {
            label: format!("d{dev}-batch-{batch_idx}"),
            items: result.outputs.len(),
            work: result.work,
            queued_seconds: t,
            submitted_seconds: t,
            start_seconds: t,
            end_seconds: t + duration,
        };
        if tracing {
            let (lo, hi) = ranges[batch_idx];
            trace.push(
                Span::new(
                    event.label.clone(),
                    "kernel",
                    device_pid(dev),
                    t,
                    t + duration,
                )
                .arg_u64("items", event.items as u64)
                .arg_u64("work", event.work),
            );
            trace.push(batch_span(batch_idx, lo, hi, dev, &event));
        }
        timelines[dev].push(event);
        free_at[dev] = t + duration;
        items_of[dev] += result.outputs.len();
        work_of[dev] += result.work;
    }
    let device_runs: Vec<DeviceRun> = (0..n_dev)
        .map(|dev| DeviceRun {
            device: dev,
            items: items_of[dev],
            work: work_of[dev],
            simulated_seconds: free_at[dev],
        })
        .collect();

    // Batches are contiguous, in read order: concatenation restores it.
    let mut outputs = Vec::with_capacity(reads.len());
    let mut metrics = Vec::with_capacity(reads.len());
    for r in results {
        outputs.extend(r.outputs);
        metrics.extend(r.metrics);
    }
    Ok(finish_run(
        platform,
        start,
        outputs,
        metrics,
        device_runs,
        timelines,
        trace,
    ))
}

/// The valid outcome of mapping zero reads: no outputs, no device
/// activity, a zero-energy (idle-power) report.
pub(crate) fn empty_run(platform: &Platform) -> (MappingRun, Vec<MapMetrics>) {
    let shadow: PlatformRun<()> = PlatformRun {
        outputs: vec![],
        device_runs: vec![],
        simulated_seconds: 0.0,
        wall_seconds: 0.0,
    };
    let energy = platform.measure_energy(&shadow);
    (
        MappingRun {
            outputs: vec![],
            device_runs: vec![],
            timelines: vec![],
            simulated_seconds: 0.0,
            wall_seconds: 0.0,
            energy,
            fault_counters: vec![],
            lost_devices: vec![],
            trace: vec![],
        },
        vec![],
    )
}

/// Folds per-device accounting into a [`MappingRun`]: bottleneck
/// completion time, host wall clock, §III-D energy.
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish_run(
    platform: &Platform,
    start: Instant,
    outputs: Vec<MapOutput>,
    metrics: Vec<MapMetrics>,
    device_runs: Vec<DeviceRun>,
    timelines: Vec<Vec<Event>>,
    trace: Vec<Span>,
) -> (MappingRun, Vec<MapMetrics>) {
    let zeros = vec![FaultCounters::default(); device_runs.len()];
    finish_run_with_faults(
        platform,
        start,
        outputs,
        metrics,
        device_runs,
        timelines,
        zeros,
        vec![],
        trace,
    )
}

/// [`finish_run`] with explicit per-entry fault accounting.
#[allow(clippy::too_many_arguments)]
fn finish_run_with_faults(
    platform: &Platform,
    start: Instant,
    outputs: Vec<MapOutput>,
    metrics: Vec<MapMetrics>,
    device_runs: Vec<DeviceRun>,
    timelines: Vec<Vec<Event>>,
    fault_counters: Vec<FaultCounters>,
    lost_devices: Vec<usize>,
    trace: Vec<Span>,
) -> (MappingRun, Vec<MapMetrics>) {
    let simulated_seconds = device_runs
        .iter()
        .map(|r| r.simulated_seconds)
        .fold(0.0f64, f64::max);
    let wall_seconds = start.elapsed().as_secs_f64();
    // Reuse the platform's §III-D meter by assembling an equivalent run.
    let energy = {
        let shadow: PlatformRun<()> = PlatformRun {
            outputs: vec![],
            device_runs: device_runs.clone(),
            simulated_seconds,
            wall_seconds,
        };
        platform.measure_energy(&shadow)
    };
    (
        MappingRun {
            outputs,
            device_runs,
            timelines,
            simulated_seconds,
            wall_seconds,
            energy,
            fault_counters,
            lost_devices,
            trace,
        },
        metrics,
    )
}

/// Resolves a `host_threads` request against a job count: `auto` is the
/// executor's default ([`AUTO_HOST_THREADS`]), and there is never a point
/// in more workers than jobs.
pub(crate) fn worker_count(host_threads: usize, auto: usize, jobs: usize) -> usize {
    let requested = if host_threads == AUTO_HOST_THREADS {
        auto
    } else {
        host_threads
    };
    requested.min(jobs).max(1)
}

/// Runs `job(0..jobs)` on up to `workers` scoped host threads, returning
/// results in job order regardless of completion order. A single worker
/// runs inline on the caller's thread — the sequential-host baseline.
pub(crate) fn run_jobs<R: Send>(
    jobs: usize,
    workers: usize,
    job: impl Fn(usize) -> R + Sync,
) -> Vec<R> {
    let mut slots: Vec<Option<R>> = Vec::with_capacity(jobs);
    slots.resize_with(jobs, || None);
    if workers <= 1 || jobs <= 1 {
        for (idx, slot) in slots.iter_mut().enumerate() {
            *slot = Some(job(idx));
        }
    } else {
        let next = AtomicUsize::new(0);
        let collected = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let job = &job;
                    scope.spawn(move || {
                        let mut local: Vec<(usize, R)> = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= jobs {
                                break;
                            }
                            local.push((idx, job(idx)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("executor worker panicked"))
                .collect::<Vec<_>>()
        });
        for local in collected {
            for (idx, r) in local {
                slots[idx] = Some(r);
            }
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every job completes"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use repute_genome::reads::ReadSimulator;
    use repute_genome::synth::ReferenceBuilder;
    use repute_hetsim::profiles;
    use repute_mappers::IndexedReference;

    use crate::{ReputeConfig, ReputeMapper};

    fn setup() -> (ReputeMapper, Vec<DnaSeq>) {
        let reference = ReferenceBuilder::new(40_000).seed(101).build();
        let reads: Vec<DnaSeq> = ReadSimulator::new(100, 24)
            .seed(103)
            .simulate(&reference)
            .into_iter()
            .map(|r| r.seq)
            .collect();
        let indexed = Arc::new(IndexedReference::build(reference));
        let mapper = ReputeMapper::new(indexed, ReputeConfig::new(3, 15).unwrap());
        (mapper, reads)
    }

    #[test]
    fn outputs_in_read_order_across_devices() {
        let (mapper, reads) = setup();
        let platform = profiles::system1();
        let shares = vec![
            Share {
                device: 0,
                items: 10,
            },
            Share {
                device: 1,
                items: 8,
            },
            Share {
                device: 2,
                items: 6,
            },
        ];
        let run = map_on_platform(&mapper, &platform, &shares, &reads).unwrap();
        assert_eq!(run.outputs.len(), 24);
        // Every output matches a single-device rerun of the same read.
        for (read, out) in reads.iter().zip(&run.outputs) {
            assert_eq!(mapper.map_read(read).mappings, out.mappings);
        }
        assert!(run.total_mappings() > 0);
        assert!(run.energy.energy_j > 0.0);
    }

    #[test]
    fn metered_run_produces_timelines_and_consistent_report() {
        use repute_mappers::engine_costs::{DP_CELL_COST, EXTEND_COST, LOCATE_COST};

        let (mapper, reads) = setup();
        let platform = profiles::system1();
        let shares = vec![
            Share {
                device: 0,
                items: 10,
            },
            Share {
                device: 1,
                items: 8,
            },
            Share {
                device: 2,
                items: 6,
            },
        ];
        let (run, metrics) =
            map_on_platform_with_metrics(&mapper, &platform, &shares, &reads).unwrap();
        assert_eq!(metrics.len(), reads.len());
        assert_eq!(run.timelines.len(), shares.len());
        // Every per-read record decomposes that read's work scalar.
        for (m, out) in metrics.iter().zip(&run.outputs) {
            assert_eq!(
                m.work_units(EXTEND_COST, DP_CELL_COST, LOCATE_COST),
                out.work
            );
        }
        // Timeline invariants: ordered timestamps, and (with zero launch
        // overhead) busy time and work adding up to the share accounting.
        for (dr, events) in run.device_runs.iter().zip(&run.timelines) {
            assert!(!events.is_empty());
            for e in events {
                assert!(e.queued_seconds <= e.submitted_seconds);
                assert!(e.submitted_seconds <= e.start_seconds);
                assert!(e.start_seconds <= e.end_seconds);
            }
            let busy: f64 = events.iter().map(Event::duration_seconds).sum();
            assert!((busy - dr.simulated_seconds).abs() < 1e-12);
            assert_eq!(events.iter().map(|e| e.work).sum::<u64>(), dr.work);
        }
        // The roll-up folds totals and energy consistently.
        let report = run.report(&platform, &metrics);
        assert_eq!(report.reads, reads.len() as u64);
        assert_eq!(report.devices.len(), shares.len());
        let mut totals = repute_obs::MapMetrics::new();
        for m in &metrics {
            totals.merge(m);
        }
        assert_eq!(report.totals, totals);
        let energy = report.energy.expect("platform run carries energy");
        let from_power = (energy.average_power_w - energy.idle_power_w) * energy.mapping_seconds;
        assert!(
            (energy.energy_j - from_power).abs() <= 1e-9 * energy.energy_j.max(1.0),
            "energy summary broke the (P - P_idle) x T identity"
        );
    }

    #[test]
    fn report_derives_stage_totals_from_metrics() {
        let (mapper, reads) = setup();
        let platform = profiles::system1();
        let (run, metrics) = map_on_platform_with_metrics(
            &mapper,
            &platform,
            &platform.even_shares(reads.len()),
            &reads,
        )
        .unwrap();
        let report = run.report(&platform, &metrics);
        // Stage timings are no longer dropped: filtration + verification
        // (no prefilter configured) partition the simulated seconds.
        assert!(!report.stages.is_empty(), "stages must be derived");
        let paths: Vec<&str> = report.stages.iter().map(|(p, _, _)| p.as_str()).collect();
        assert!(paths.contains(&"map/filtration"));
        assert!(paths.contains(&"map/verification"));
        assert!(!paths.contains(&"map/prefilter"), "prefilter is off");
        let stage_sum: f64 = report.stages.iter().map(|(_, s, _)| s).sum();
        assert!(
            (stage_sum - run.simulated_seconds).abs() <= 1e-9 * run.simulated_seconds,
            "stage seconds {stage_sum} must partition simulated {}",
            run.simulated_seconds
        );
        // An explicit stage set overrides the derivation.
        let custom = run.report_with_stages(
            &platform,
            &metrics,
            vec![("host/total".to_string(), 1.25, 1)],
        );
        assert_eq!(custom.stages, vec![("host/total".to_string(), 1.25, 1)]);
        assert_eq!(custom.totals, report.totals);
    }

    #[test]
    fn share_coverage_is_validated() {
        let (mapper, reads) = setup();
        let platform = profiles::system1();
        let bad = vec![Share {
            device: 0,
            items: 5,
        }];
        assert!(map_on_platform(&mapper, &platform, &bad, &reads).is_err());
        let bad_dev = vec![Share {
            device: 7,
            items: 24,
        }];
        assert!(map_on_platform(&mapper, &platform, &bad_dev, &reads).is_err());
    }

    #[test]
    fn empty_shares_with_reads_report_missing_shares() {
        // Regression: the coverage check used to run first, yielding a
        // misleading "shares cover 0 items" error.
        let (mapper, reads) = setup();
        let platform = profiles::system1();
        let err = map_on_platform(&mapper, &platform, &[], &reads).unwrap_err();
        assert!(
            err.to_string().contains("no shares supplied"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn empty_reads_with_empty_shares_yield_empty_run() {
        let (mapper, _) = setup();
        let platform = profiles::system1();
        let (run, metrics) = map_on_platform_with_metrics(&mapper, &platform, &[], &[])
            .expect("zero reads with zero shares is a valid empty run");
        assert!(run.outputs.is_empty());
        assert!(metrics.is_empty());
        assert_eq!(run.simulated_seconds, 0.0);
        assert_eq!(run.energy.energy_j, 0.0);
        assert_eq!(run.energy.average_power_w, platform.idle_power_w());
        // Dynamic mode accepts the empty read set too.
        let (dyn_run, dyn_metrics) =
            map_scheduled(&mapper, &platform, &Schedule::Dynamic { batch: 0 }, 1, &[])
                .expect("empty dynamic run");
        assert!(dyn_run.outputs.is_empty() && dyn_metrics.is_empty());
        assert_eq!(dyn_run.energy.energy_j, 0.0);
    }

    #[test]
    fn many_small_shares_preserve_order() {
        // One read per share, round-robin over devices: exercises the
        // prefix-sum offsets and the thread pool with jobs ≫ devices.
        let (mapper, reads) = setup();
        let platform = profiles::system1();
        let shares: Vec<Share> = (0..reads.len())
            .map(|i| Share {
                device: i % 3,
                items: 1,
            })
            .collect();
        let run = map_on_platform(&mapper, &platform, &shares, &reads).unwrap();
        for (read, out) in reads.iter().zip(&run.outputs) {
            assert_eq!(mapper.map_read(read).mappings, out.mappings);
        }
    }

    #[test]
    fn offloading_to_gpus_reduces_completion_time() {
        // The shape of the paper's Fig. 3: moving reads from the CPU to
        // the GPUs shortens the bottleneck, up to a point.
        let (mapper, reads) = setup();
        let platform = profiles::system1();
        let cpu_only = map_on_platform(
            &mapper,
            &platform,
            &platform.single_device_share(0, reads.len()),
            &reads,
        )
        .unwrap();
        let shares = platform.even_shares(reads.len());
        let spread = map_on_platform(&mapper, &platform, &shares, &reads).unwrap();
        assert!(
            spread.simulated_seconds < cpu_only.simulated_seconds,
            "spread {} !< cpu {}",
            spread.simulated_seconds,
            cpu_only.simulated_seconds
        );
    }

    #[test]
    fn balanced_shares_beat_even_shares_for_heavy_kernels() {
        let reference = ReferenceBuilder::new(60_000).seed(205).build();
        let reads: Vec<DnaSeq> = ReadSimulator::new(100, 32)
            .seed(206)
            .simulate(&reference)
            .into_iter()
            .map(|r| r.seq)
            .collect();
        let indexed = Arc::new(IndexedReference::build(reference));
        // Small S_min → heavy kernel → reduced GPU occupancy.
        let mapper = ReputeMapper::new(Arc::clone(&indexed), ReputeConfig::new(4, 12).unwrap());
        let platform = profiles::system1();
        let even = map_on_platform(
            &mapper,
            &platform,
            &platform.even_shares(reads.len()),
            &reads,
        )
        .expect("valid");
        let balanced = balanced_shares(&mapper, &platform, 100, reads.len());
        assert_eq!(balanced.iter().map(|s| s.items).sum::<usize>(), reads.len());
        let run = map_on_platform(&mapper, &platform, &balanced, &reads).expect("valid");
        // The balanced split must not be worse; with per-read work noise
        // allow a small tolerance.
        assert!(
            run.simulated_seconds <= even.simulated_seconds * 1.05,
            "balanced {} vs even {}",
            run.simulated_seconds,
            even.simulated_seconds
        );
        // It assigns the GPUs less than the nominal-throughput split does.
        let even_gpu: usize = platform.even_shares(reads.len())[1..]
            .iter()
            .map(|s| s.items)
            .sum();
        let balanced_gpu: usize = balanced[1..].iter().map(|s| s.items).sum();
        assert!(balanced_gpu <= even_gpu, "{balanced_gpu} > {even_gpu}");
    }

    #[test]
    fn balanced_shares_cover_small_and_empty_read_sets() {
        let (mapper, _) = setup();
        let platform = profiles::system1();
        for items in [0usize, 1, 2, 5] {
            let shares = balanced_shares(&mapper, &platform, 100, items);
            assert_eq!(
                shares.iter().map(|s| s.items).sum::<usize>(),
                items,
                "shares must sum to {items}"
            );
        }
    }

    #[test]
    fn gpu_occupancy_penalises_small_s_min_kernels() {
        // The §IV mechanism: a small S_min inflates the kernel's private
        // footprint, dropping GPU occupancy — simulated seconds per work
        // unit rise even though the algorithmic work is what it is.
        let reference = ReferenceBuilder::new(60_000).seed(202).build();
        let reads: Vec<DnaSeq> = ReadSimulator::new(100, 16)
            .seed(203)
            .simulate(&reference)
            .into_iter()
            .map(|r| r.seq)
            .collect();
        let indexed = Arc::new(IndexedReference::build(reference));
        let gpu_only = Platform::new("gpu", 10.0, vec![profiles::gtx590()]);

        let seconds_per_work = |s_min: usize| -> f64 {
            let mapper =
                ReputeMapper::new(Arc::clone(&indexed), ReputeConfig::new(4, s_min).unwrap());
            let run = map_on_platform(
                &mapper,
                &gpu_only,
                &gpu_only.single_device_share(0, reads.len()),
                &reads,
            )
            .expect("valid shares");
            run.simulated_seconds / run.total_work() as f64
        };
        let heavy = seconds_per_work(12);
        let light = seconds_per_work(20);
        assert!(
            heavy > light * 1.1,
            "occupancy effect missing: {heavy} vs {light} s/unit"
        );

        // The CPU is occupancy-insensitive: identical seconds per unit.
        let cpu_only = profiles::system1_cpu_only();
        let cpu_seconds_per_work = |s_min: usize| -> f64 {
            let mapper =
                ReputeMapper::new(Arc::clone(&indexed), ReputeConfig::new(4, s_min).unwrap());
            let run = map_on_platform(
                &mapper,
                &cpu_only,
                &cpu_only.single_device_share(0, reads.len()),
                &reads,
            )
            .expect("valid shares");
            run.simulated_seconds / run.total_work() as f64
        };
        let a = cpu_seconds_per_work(12);
        let b = cpu_seconds_per_work(20);
        assert!((a - b).abs() / a < 1e-9, "cpu must be occupancy-flat");
    }

    #[test]
    fn batch_plan_respects_quarter_ram() {
        let gpu = profiles::gtx590();
        // A read whose output is 64 MiB forces small batches on a 1.5 GB
        // card (cap 384 MiB → 6 reads per launch).
        let plan = BatchPlan::plan(&gpu, 20, 64 << 20);
        assert_eq!(plan.launches(), 4);
        assert_eq!(plan.batches(), &[6, 6, 6, 2]);
        let empty = BatchPlan::plan(&gpu, 0, 100);
        assert_eq!(empty.launches(), 0);
    }

    #[test]
    fn uniform_batch_plan() {
        let plan = BatchPlan::uniform(10, 4);
        assert_eq!(plan.batches(), &[4, 4, 2]);
        assert_eq!(BatchPlan::uniform(0, 4).launches(), 0);
        assert_eq!(BatchPlan::uniform(3, 100).batches(), &[3]);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_uniform_batch_rejected() {
        let _ = BatchPlan::uniform(5, 0);
    }

    #[test]
    #[should_panic(expected = "quarter-RAM cap")]
    fn impossible_item_rejected() {
        let gpu = profiles::gtx590();
        let _ = BatchPlan::plan(&gpu, 1, usize::MAX / 2);
    }

    #[test]
    fn batched_share_time_adds_up() {
        let (mapper, reads) = setup();
        // A tiny device: memory so small every read is its own batch.
        let tiny = repute_hetsim::DeviceProfile::new(
            "tiny",
            repute_hetsim::DeviceKind::Gpu,
            2,
            1e6,
            mapper.max_locations() * 12 * 8, // two reads per quarter-RAM
            1.0,
        );
        let platform = Platform::new("tiny-sys", 1.0, vec![tiny]);
        let run = map_on_platform(
            &mapper,
            &platform,
            &platform.single_device_share(0, reads.len()),
            &reads,
        )
        .unwrap();
        assert_eq!(run.outputs.len(), reads.len());
        assert!(run.simulated_seconds > 0.0);
    }

    #[test]
    fn dynamic_schedule_matches_static_output_and_is_deterministic() {
        let (mapper, reads) = setup();
        let platform = profiles::system1();
        let (reference_run, reference_metrics) = map_on_platform_with_metrics(
            &mapper,
            &platform,
            &platform.even_shares(reads.len()),
            &reads,
        )
        .unwrap();
        let mut by_batch: Vec<(usize, f64, Vec<Vec<Event>>)> = Vec::new();
        for (batch, host_threads) in [(0usize, 0usize), (0, 1), (3, 2), (3, 0), (5, 4)] {
            let (run, metrics) = map_scheduled(
                &mapper,
                &platform,
                &Schedule::Dynamic { batch },
                host_threads,
                &reads,
            )
            .unwrap();
            // Output invariance: mapping output and per-read metrics are
            // byte-identical to the static run, in read order.
            assert_eq!(run.outputs.len(), reference_run.outputs.len());
            for (a, b) in run.outputs.iter().zip(&reference_run.outputs) {
                assert_eq!(a.mappings, b.mappings);
            }
            assert_eq!(metrics, reference_metrics);
            // One timeline per platform device, back-to-back events.
            assert_eq!(run.timelines.len(), platform.devices().len());
            for events in &run.timelines {
                for pair in events.windows(2) {
                    assert_eq!(pair[1].start_seconds, pair[0].end_seconds);
                }
            }
            by_batch.push((batch, run.simulated_seconds, run.timelines));
        }
        // Determinism: identical batch size ⇒ bit-identical simulated
        // schedule, whatever the host thread count.
        assert_eq!(by_batch[0].1, by_batch[1].1);
        assert_eq!(by_batch[0].2, by_batch[1].2);
        assert_eq!(by_batch[2].1, by_batch[3].1);
        assert_eq!(by_batch[2].2, by_batch[3].2);
    }

    #[test]
    fn dynamic_schedule_balances_skewed_workloads() {
        // A deliberately imbalanced read set: the heaviest read repeated
        // over the first half, the lightest over the second. Static even
        // shares on two identical devices pin the whole heavy half on
        // device 0; greedy batch pulling interleaves them.
        let (mapper, reads) = setup();
        let per_read_work: Vec<u64> = reads.iter().map(|r| mapper.map_read(r).work).collect();
        let heavy_idx = (0..reads.len()).max_by_key(|&i| per_read_work[i]).unwrap();
        let light_idx = (0..reads.len()).min_by_key(|&i| per_read_work[i]).unwrap();
        assert!(
            per_read_work[heavy_idx] > per_read_work[light_idx],
            "workload must have distinct per-read work for this test"
        );
        let n = 24usize;
        let mut skewed: Vec<DnaSeq> = Vec::with_capacity(n);
        for _ in 0..n / 2 {
            skewed.push(reads[heavy_idx].clone());
        }
        for _ in 0..n / 2 {
            skewed.push(reads[light_idx].clone());
        }
        let duo = Platform::new(
            "duo",
            1.0,
            vec![profiles::intel_i7_2600(), profiles::intel_i7_2600()],
        );
        let (static_run, _) = map_scheduled(
            &mapper,
            &duo,
            &Schedule::Static(duo.even_shares(n)),
            AUTO_HOST_THREADS,
            &skewed,
        )
        .unwrap();
        let (dynamic_run, _) = map_scheduled(
            &mapper,
            &duo,
            &Schedule::Dynamic { batch: 3 },
            AUTO_HOST_THREADS,
            &skewed,
        )
        .unwrap();
        assert!(
            dynamic_run.simulated_seconds < static_run.simulated_seconds,
            "dynamic {} must beat static {} on a skewed workload",
            dynamic_run.simulated_seconds,
            static_run.simulated_seconds
        );
        // Same mapping output despite the different schedule.
        for (a, b) in dynamic_run.outputs.iter().zip(&static_run.outputs) {
            assert_eq!(a.mappings, b.mappings);
        }
    }

    #[test]
    fn host_thread_count_does_not_change_static_results() {
        let (mapper, reads) = setup();
        let platform = profiles::system1();
        let schedule = Schedule::Static(platform.even_shares(reads.len()));
        let (reference_run, reference_metrics) =
            map_scheduled(&mapper, &platform, &schedule, 1, &reads).unwrap();
        for host_threads in [2usize, 3, AUTO_HOST_THREADS] {
            let (run, metrics) =
                map_scheduled(&mapper, &platform, &schedule, host_threads, &reads).unwrap();
            for (a, b) in run.outputs.iter().zip(&reference_run.outputs) {
                assert_eq!(a.mappings, b.mappings);
            }
            assert_eq!(metrics, reference_metrics);
            assert_eq!(run.simulated_seconds, reference_run.simulated_seconds);
            assert_eq!(run.timelines, reference_run.timelines);
            assert_eq!(run.energy.energy_j, reference_run.energy.energy_j);
        }
    }

    #[test]
    fn schedule_for_config_follows_the_mode() {
        let platform = profiles::system1();
        let config = ReputeConfig::new(3, 15).unwrap();
        match Schedule::for_config(&config, &platform, 30) {
            Schedule::Static(shares) => {
                assert_eq!(shares.iter().map(|s| s.items).sum::<usize>(), 30);
            }
            other => panic!("default mode must be static, got {other:?}"),
        }
        let dynamic = config
            .with_schedule(ScheduleMode::Dynamic)
            .with_dynamic_batch(7);
        assert_eq!(
            Schedule::for_config(&dynamic, &platform, 30),
            Schedule::Dynamic { batch: 7 }
        );
    }
}
