//! Task-parallel mapping across the devices of a simulated platform.
//!
//! "Unlike state-of-the-art mappers, REPUTE distributes the workload on
//! CPU and GPU, as per user specification, executing the work-items in
//! task-parallel fashion" (§III-B). This module runs any [`Mapper`] over a
//! read set with a user-chosen [`Share`] distribution, honouring the
//! OpenCL 1.2 buffer restrictions: when a device's share needs more output
//! memory than a quarter of its RAM, the share is split into sequential
//! batches ("run the kernel multiple times with smaller read sets", §IV).

use repute_genome::DnaSeq;
use repute_hetsim::{
    Buffer, CommandQueue, DeviceProfile, DeviceRun, EnergyReport, Event, FnKernel, LaunchError,
    Platform, PlatformRun, Share,
};
use repute_mappers::{MapOutput, Mapper};
use repute_obs::{DeviceTimeline, EnergySummary, KernelEvent, MapMetrics, RunReport};

/// How a device share is split into kernel launches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPlan {
    batches: Vec<usize>,
}

impl BatchPlan {
    /// Plans batches of `items` reads on `device`, given the output bytes
    /// one read requires.
    ///
    /// # Panics
    ///
    /// Panics if a single read's output does not fit the device at all.
    pub fn plan(device: &DeviceProfile, items: usize, bytes_per_item: usize) -> BatchPlan {
        if items == 0 {
            return BatchPlan { batches: vec![] };
        }
        let per_launch = Buffer::max_items(device, bytes_per_item);
        assert!(
            per_launch >= 1,
            "one read's output ({bytes_per_item} bytes) exceeds the quarter-RAM cap of {}",
            device.name()
        );
        let mut batches = Vec::new();
        let mut remaining = items;
        while remaining > 0 {
            let take = remaining.min(per_launch);
            batches.push(take);
            remaining -= take;
        }
        BatchPlan { batches }
    }

    /// The planned batch sizes, in launch order.
    pub fn batches(&self) -> &[usize] {
        &self.batches
    }

    /// Number of sequential kernel launches.
    pub fn launches(&self) -> usize {
        self.batches.len()
    }
}

/// Outcome of mapping a read set on a platform.
#[derive(Debug, Clone)]
pub struct MappingRun {
    /// Per-read outputs, in read order.
    pub outputs: Vec<MapOutput>,
    /// Per-device accounting (one entry per share, batches folded in).
    pub device_runs: Vec<DeviceRun>,
    /// OpenCL-style profiling events per share, parallel to
    /// `device_runs`: one [`Event`] per kernel launch (batch), carrying
    /// the queued/submitted/start/end timestamps of that share's command
    /// queue.
    pub timelines: Vec<Vec<Event>>,
    /// Simulated completion time: slowest device, batches sequential.
    pub simulated_seconds: f64,
    /// Wall-clock seconds the host spent.
    pub wall_seconds: f64,
    /// §III-D power/energy measurement of the run.
    pub energy: EnergyReport,
}

impl MappingRun {
    /// Total mappings reported across all reads.
    pub fn total_mappings(&self) -> usize {
        self.outputs.iter().map(|o| o.mappings.len()).sum()
    }

    /// Total substrate work across all devices.
    pub fn total_work(&self) -> u64 {
        self.device_runs.iter().map(|r| r.work).sum()
    }

    /// Rolls the run up into a run-level [`RunReport`]: per-read metric
    /// totals, one kernel timeline per share, and the §III-D energy
    /// measurement folded into the report's energy summary.
    ///
    /// `per_read` is the metric record of every read in read order, as
    /// returned by [`map_on_platform_with_metrics`]; pass an empty slice
    /// when only the device timelines matter.
    pub fn report(&self, platform: &Platform, per_read: &[MapMetrics]) -> RunReport {
        let mut totals = MapMetrics::new();
        for m in per_read {
            totals.merge(m);
        }
        let devices = self
            .device_runs
            .iter()
            .zip(&self.timelines)
            .map(|(dr, events)| {
                let profile = &platform.devices()[dr.device];
                DeviceTimeline {
                    device: format!("{} [{}]", profile.name(), profile.kind().as_str()),
                    events: events
                        .iter()
                        .map(|e| KernelEvent {
                            label: e.label.clone(),
                            items: e.items as u64,
                            work: e.work,
                            queued_seconds: e.queued_seconds,
                            submitted_seconds: e.submitted_seconds,
                            start_seconds: e.start_seconds,
                            end_seconds: e.end_seconds,
                        })
                        .collect(),
                }
            })
            .collect();
        RunReport {
            reads: per_read.len() as u64,
            totals,
            stages: Vec::new(),
            devices,
            simulated_seconds: self.simulated_seconds,
            wall_seconds: self.wall_seconds,
            energy: Some(EnergySummary {
                mapping_seconds: self.energy.mapping_seconds,
                average_power_w: self.energy.average_power_w,
                idle_power_w: platform.idle_power_w(),
                energy_j: self.energy.energy_j,
            }),
        }
    }
}

/// Computes a workload distribution proportional to each device's
/// *effective* throughput for this mapper's kernel — nominal throughput
/// times the occupancy its private-memory footprint allows.
///
/// [`Platform::even_shares`] splits by nominal throughput only; for
/// footprint-heavy kernels (small `S_min`) that overloads the GPUs, which
/// is why the paper's Fig. 3 sweep and §IV insist the distribution "should
/// be performed judiciously".
pub fn balanced_shares<M: Mapper>(
    mapper: &M,
    platform: &Platform,
    read_len: usize,
    items: usize,
) -> Vec<Share> {
    let footprint = mapper.kernel_private_bytes(read_len);
    let effective: Vec<f64> = platform
        .devices()
        .iter()
        .map(|d| d.throughput() * d.occupancy(footprint))
        .collect();
    let total: f64 = effective.iter().sum();
    let mut shares: Vec<Share> = effective
        .iter()
        .enumerate()
        .map(|(device, t)| Share {
            device,
            items: (items as f64 * t / total) as usize,
        })
        .collect();
    let assigned: usize = shares.iter().map(|s| s.items).sum();
    shares[0].items += items - assigned;
    shares
}

/// Maps `reads` with `mapper`, distributing them over `shares` of
/// `platform` — the paper's multi-device launch.
///
/// Each share receives a contiguous run of reads. Shares whose output
/// buffers would exceed the device's quarter-RAM cap are processed in
/// sequential batches on that device.
///
/// # Errors
///
/// Returns [`LaunchError`] if `shares` is empty, references an unknown
/// device, or does not cover exactly `reads.len()` items.
pub fn map_on_platform<M: Mapper>(
    mapper: &M,
    platform: &Platform,
    shares: &[Share],
    reads: &[DnaSeq],
) -> Result<MappingRun, LaunchError> {
    map_on_platform_with_metrics(mapper, platform, shares, reads).map(|(run, _)| run)
}

/// Like [`map_on_platform`], additionally returning the per-read
/// [`MapMetrics`] record of every read (in read order) — the input to
/// [`MappingRun::report`].
///
/// The unmetered entry point delegates here, so both share one launch
/// path; the per-read records are plain stack `Copy` structs filled by
/// [`Mapper::map_read_metered`], which for baseline mappers falls back to
/// the coarse counters observable from [`MapOutput`].
///
/// # Errors
///
/// Returns [`LaunchError`] under the same conditions as
/// [`map_on_platform`].
pub fn map_on_platform_with_metrics<M: Mapper>(
    mapper: &M,
    platform: &Platform,
    shares: &[Share],
    reads: &[DnaSeq],
) -> Result<(MappingRun, Vec<MapMetrics>), LaunchError> {
    let covered: usize = shares.iter().map(|s| s.items).sum();
    if covered != reads.len() {
        return Err(LaunchError::from_message(format!(
            "shares cover {covered} items but {} reads were supplied",
            reads.len()
        )));
    }
    if shares.is_empty() {
        return Err(LaunchError::from_message("no shares supplied"));
    }
    for share in shares {
        if share.device >= platform.devices().len() {
            return Err(LaunchError::from_message(format!(
                "device index {} out of range ({} devices)",
                share.device,
                platform.devices().len()
            )));
        }
    }

    let start = std::time::Instant::now();
    let bytes_per_read = mapper.max_locations() * 12;
    let max_read_len = reads.iter().map(DnaSeq::len).max().unwrap_or(0);
    let private_bytes = mapper.kernel_private_bytes(max_read_len);
    let mut outputs: Vec<MapOutput> = Vec::with_capacity(reads.len());
    let mut metrics: Vec<MapMetrics> = Vec::with_capacity(reads.len());
    let mut device_runs: Vec<DeviceRun> = Vec::with_capacity(shares.len());
    let mut timelines: Vec<Vec<Event>> = Vec::with_capacity(shares.len());
    for (share_idx, share) in shares.iter().enumerate() {
        let offset: usize = shares[..share_idx].iter().map(|s| s.items).sum();
        let device = &platform.devices()[share.device];
        let plan = BatchPlan::plan(device, share.items, bytes_per_read);
        // An in-order command queue per share: each batch is one enqueue,
        // leaving an OpenCL-style profiling event with all four
        // timestamps. With zero launch overhead batches run back to back,
        // exactly the previous accounting.
        let mut queue = CommandQueue::new(device);
        let mut batch_offset = offset;
        for (batch_idx, &batch) in plan.batches().iter().enumerate() {
            let reads_slice = &reads[batch_offset..batch_offset + batch];
            let kernel = FnKernel::new(|i: usize| {
                let mut m = MapMetrics::new();
                let out = mapper.map_read_metered(&reads_slice[i], &mut m);
                let work = out.work;
                ((out, m), work)
            })
            .with_private_bytes(private_bytes);
            let label = format!("d{}-batch-{}", share.device, batch_idx);
            for (out, m) in queue.enqueue(label, batch, &kernel) {
                outputs.push(out);
                metrics.push(m);
            }
            batch_offset += batch;
        }
        device_runs.push(DeviceRun {
            device: share.device,
            items: share.items,
            work: queue.total_work(),
            simulated_seconds: queue.finish_seconds(),
        });
        timelines.push(queue.into_events());
    }
    let simulated_seconds = device_runs
        .iter()
        .map(|r| r.simulated_seconds)
        .fold(0.0f64, f64::max);
    let wall_seconds = start.elapsed().as_secs_f64();
    // Reuse the platform's §III-D meter by assembling an equivalent run.
    let energy = {
        let shadow: PlatformRun<()> = PlatformRun {
            outputs: vec![],
            device_runs: device_runs.clone(),
            simulated_seconds,
            wall_seconds,
        };
        platform.measure_energy(&shadow)
    };
    let run = MappingRun {
        outputs,
        device_runs,
        timelines,
        simulated_seconds,
        wall_seconds,
        energy,
    };
    Ok((run, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use repute_genome::reads::ReadSimulator;
    use repute_genome::synth::ReferenceBuilder;
    use repute_hetsim::profiles;
    use repute_mappers::IndexedReference;

    use crate::{ReputeConfig, ReputeMapper};

    fn setup() -> (ReputeMapper, Vec<DnaSeq>) {
        let reference = ReferenceBuilder::new(40_000).seed(101).build();
        let reads: Vec<DnaSeq> = ReadSimulator::new(100, 24)
            .seed(103)
            .simulate(&reference)
            .into_iter()
            .map(|r| r.seq)
            .collect();
        let indexed = Arc::new(IndexedReference::build(reference));
        let mapper = ReputeMapper::new(indexed, ReputeConfig::new(3, 15).unwrap());
        (mapper, reads)
    }

    #[test]
    fn outputs_in_read_order_across_devices() {
        let (mapper, reads) = setup();
        let platform = profiles::system1();
        let shares = vec![
            Share {
                device: 0,
                items: 10,
            },
            Share {
                device: 1,
                items: 8,
            },
            Share {
                device: 2,
                items: 6,
            },
        ];
        let run = map_on_platform(&mapper, &platform, &shares, &reads).unwrap();
        assert_eq!(run.outputs.len(), 24);
        // Every output matches a single-device rerun of the same read.
        for (read, out) in reads.iter().zip(&run.outputs) {
            assert_eq!(mapper.map_read(read).mappings, out.mappings);
        }
        assert!(run.total_mappings() > 0);
        assert!(run.energy.energy_j > 0.0);
    }

    #[test]
    fn metered_run_produces_timelines_and_consistent_report() {
        use repute_mappers::engine_costs::{DP_CELL_COST, EXTEND_COST, LOCATE_COST};

        let (mapper, reads) = setup();
        let platform = profiles::system1();
        let shares = vec![
            Share {
                device: 0,
                items: 10,
            },
            Share {
                device: 1,
                items: 8,
            },
            Share {
                device: 2,
                items: 6,
            },
        ];
        let (run, metrics) =
            map_on_platform_with_metrics(&mapper, &platform, &shares, &reads).unwrap();
        assert_eq!(metrics.len(), reads.len());
        assert_eq!(run.timelines.len(), shares.len());
        // Every per-read record decomposes that read's work scalar.
        for (m, out) in metrics.iter().zip(&run.outputs) {
            assert_eq!(
                m.work_units(EXTEND_COST, DP_CELL_COST, LOCATE_COST),
                out.work
            );
        }
        // Timeline invariants: ordered timestamps, and (with zero launch
        // overhead) busy time and work adding up to the share accounting.
        for (dr, events) in run.device_runs.iter().zip(&run.timelines) {
            assert!(!events.is_empty());
            for e in events {
                assert!(e.queued_seconds <= e.submitted_seconds);
                assert!(e.submitted_seconds <= e.start_seconds);
                assert!(e.start_seconds <= e.end_seconds);
            }
            let busy: f64 = events.iter().map(Event::duration_seconds).sum();
            assert!((busy - dr.simulated_seconds).abs() < 1e-12);
            assert_eq!(events.iter().map(|e| e.work).sum::<u64>(), dr.work);
        }
        // The roll-up folds totals and energy consistently.
        let report = run.report(&platform, &metrics);
        assert_eq!(report.reads, reads.len() as u64);
        assert_eq!(report.devices.len(), shares.len());
        let mut totals = repute_obs::MapMetrics::new();
        for m in &metrics {
            totals.merge(m);
        }
        assert_eq!(report.totals, totals);
        let energy = report.energy.expect("platform run carries energy");
        let from_power = (energy.average_power_w - energy.idle_power_w) * energy.mapping_seconds;
        assert!(
            (energy.energy_j - from_power).abs() <= 1e-9 * energy.energy_j.max(1.0),
            "energy summary broke the (P - P_idle) x T identity"
        );
    }

    #[test]
    fn share_coverage_is_validated() {
        let (mapper, reads) = setup();
        let platform = profiles::system1();
        let bad = vec![Share {
            device: 0,
            items: 5,
        }];
        assert!(map_on_platform(&mapper, &platform, &bad, &reads).is_err());
        let bad_dev = vec![Share {
            device: 7,
            items: 24,
        }];
        assert!(map_on_platform(&mapper, &platform, &bad_dev, &reads).is_err());
    }

    #[test]
    fn offloading_to_gpus_reduces_completion_time() {
        // The shape of the paper's Fig. 3: moving reads from the CPU to
        // the GPUs shortens the bottleneck, up to a point.
        let (mapper, reads) = setup();
        let platform = profiles::system1();
        let cpu_only = map_on_platform(
            &mapper,
            &platform,
            &platform.single_device_share(0, reads.len()),
            &reads,
        )
        .unwrap();
        let shares = platform.even_shares(reads.len());
        let spread = map_on_platform(&mapper, &platform, &shares, &reads).unwrap();
        assert!(
            spread.simulated_seconds < cpu_only.simulated_seconds,
            "spread {} !< cpu {}",
            spread.simulated_seconds,
            cpu_only.simulated_seconds
        );
    }

    #[test]
    fn balanced_shares_beat_even_shares_for_heavy_kernels() {
        let reference = ReferenceBuilder::new(60_000).seed(205).build();
        let reads: Vec<DnaSeq> = ReadSimulator::new(100, 32)
            .seed(206)
            .simulate(&reference)
            .into_iter()
            .map(|r| r.seq)
            .collect();
        let indexed = Arc::new(IndexedReference::build(reference));
        // Small S_min → heavy kernel → reduced GPU occupancy.
        let mapper = ReputeMapper::new(Arc::clone(&indexed), ReputeConfig::new(4, 12).unwrap());
        let platform = profiles::system1();
        let even = map_on_platform(
            &mapper,
            &platform,
            &platform.even_shares(reads.len()),
            &reads,
        )
        .expect("valid");
        let balanced = balanced_shares(&mapper, &platform, 100, reads.len());
        assert_eq!(balanced.iter().map(|s| s.items).sum::<usize>(), reads.len());
        let run = map_on_platform(&mapper, &platform, &balanced, &reads).expect("valid");
        // The balanced split must not be worse; with per-read work noise
        // allow a small tolerance.
        assert!(
            run.simulated_seconds <= even.simulated_seconds * 1.05,
            "balanced {} vs even {}",
            run.simulated_seconds,
            even.simulated_seconds
        );
        // It assigns the GPUs less than the nominal-throughput split does.
        let even_gpu: usize = platform.even_shares(reads.len())[1..]
            .iter()
            .map(|s| s.items)
            .sum();
        let balanced_gpu: usize = balanced[1..].iter().map(|s| s.items).sum();
        assert!(balanced_gpu <= even_gpu, "{balanced_gpu} > {even_gpu}");
    }

    #[test]
    fn gpu_occupancy_penalises_small_s_min_kernels() {
        // The §IV mechanism: a small S_min inflates the kernel's private
        // footprint, dropping GPU occupancy — simulated seconds per work
        // unit rise even though the algorithmic work is what it is.
        let reference = ReferenceBuilder::new(60_000).seed(202).build();
        let reads: Vec<DnaSeq> = ReadSimulator::new(100, 16)
            .seed(203)
            .simulate(&reference)
            .into_iter()
            .map(|r| r.seq)
            .collect();
        let indexed = Arc::new(IndexedReference::build(reference));
        let gpu_only = Platform::new("gpu", 10.0, vec![profiles::gtx590()]);

        let seconds_per_work = |s_min: usize| -> f64 {
            let mapper =
                ReputeMapper::new(Arc::clone(&indexed), ReputeConfig::new(4, s_min).unwrap());
            let run = map_on_platform(
                &mapper,
                &gpu_only,
                &gpu_only.single_device_share(0, reads.len()),
                &reads,
            )
            .expect("valid shares");
            run.simulated_seconds / run.total_work() as f64
        };
        let heavy = seconds_per_work(12);
        let light = seconds_per_work(20);
        assert!(
            heavy > light * 1.1,
            "occupancy effect missing: {heavy} vs {light} s/unit"
        );

        // The CPU is occupancy-insensitive: identical seconds per unit.
        let cpu_only = profiles::system1_cpu_only();
        let cpu_seconds_per_work = |s_min: usize| -> f64 {
            let mapper =
                ReputeMapper::new(Arc::clone(&indexed), ReputeConfig::new(4, s_min).unwrap());
            let run = map_on_platform(
                &mapper,
                &cpu_only,
                &cpu_only.single_device_share(0, reads.len()),
                &reads,
            )
            .expect("valid shares");
            run.simulated_seconds / run.total_work() as f64
        };
        let a = cpu_seconds_per_work(12);
        let b = cpu_seconds_per_work(20);
        assert!((a - b).abs() / a < 1e-9, "cpu must be occupancy-flat");
    }

    #[test]
    fn batch_plan_respects_quarter_ram() {
        let gpu = profiles::gtx590();
        // A read whose output is 64 MiB forces small batches on a 1.5 GB
        // card (cap 384 MiB → 6 reads per launch).
        let plan = BatchPlan::plan(&gpu, 20, 64 << 20);
        assert_eq!(plan.launches(), 4);
        assert_eq!(plan.batches(), &[6, 6, 6, 2]);
        let empty = BatchPlan::plan(&gpu, 0, 100);
        assert_eq!(empty.launches(), 0);
    }

    #[test]
    #[should_panic(expected = "quarter-RAM cap")]
    fn impossible_item_rejected() {
        let gpu = profiles::gtx590();
        let _ = BatchPlan::plan(&gpu, 1, usize::MAX / 2);
    }

    #[test]
    fn batched_share_time_adds_up() {
        let (mapper, reads) = setup();
        // A tiny device: memory so small every read is its own batch.
        let tiny = repute_hetsim::DeviceProfile::new(
            "tiny",
            repute_hetsim::DeviceKind::Gpu,
            2,
            1e6,
            mapper.max_locations() * 12 * 8, // two reads per quarter-RAM
            1.0,
        );
        let platform = Platform::new("tiny-sys", 1.0, vec![tiny]);
        let run = map_on_platform(
            &mapper,
            &platform,
            &platform.single_device_share(0, reads.len()),
            &reads,
        )
        .unwrap();
        assert_eq!(run.outputs.len(), reads.len());
        assert!(run.simulated_seconds > 0.0);
    }
}
