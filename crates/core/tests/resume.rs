//! Checkpoint/resume: the crash-safe executor's contract.
//!
//! `map_resumable` must produce outputs, per-read metrics, timelines and
//! simulated time **bit-identical** to `map_scheduled` — on a fresh run,
//! and after any number of simulated host crashes — while corrupted or
//! mismatched journals surface as typed [`ReputeError`] variants, never
//! panics. The process-kill variant (real `SIGKILL` against the CLI)
//! lives in `bench --bin resume`.

use std::fs::{self, OpenOptions};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use repute_core::journal::{self, RunFingerprint};
use repute_core::{
    map_resumable, map_scheduled, ReputeConfig, ReputeError, ReputeMapper, Schedule,
    AUTO_HOST_THREADS,
};
use repute_genome::reads::ReadSimulator;
use repute_genome::synth::ReferenceBuilder;
use repute_genome::DnaSeq;
use repute_hetsim::{profiles, FaultPlan, Platform};
use repute_mappers::engine_costs::{DP_CELL_COST, EXTEND_COST, LOCATE_COST};

fn setup() -> (ReputeMapper, Vec<DnaSeq>) {
    let reference = ReferenceBuilder::new(40_000).seed(501).build();
    let reads: Vec<DnaSeq> = ReadSimulator::new(100, 30)
        .seed(502)
        .simulate(&reference)
        .into_iter()
        .map(|r| r.seq)
        .collect();
    let indexed = Arc::new(repute_mappers::IndexedReference::build(reference));
    let mapper = ReputeMapper::new(indexed, ReputeConfig::new(3, 15).unwrap());
    (mapper, reads)
}

fn quad_platform() -> Platform {
    Platform::new(
        "quad",
        10.0,
        vec![
            profiles::intel_i7_2600(),
            profiles::intel_i7_2600(),
            profiles::intel_i7_2600(),
            profiles::intel_i7_2600(),
        ],
    )
}

fn schedules(platform: &Platform, items: usize) -> Vec<Schedule> {
    vec![
        Schedule::Static(platform.even_shares(items)),
        Schedule::Dynamic { batch: 4 },
    ]
}

/// A unique journal path under the system temp dir; any previous file
/// and manifest are removed so every test starts fresh.
fn journal_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "repute-resume-test-{}-{tag}.journal",
        std::process::id()
    ));
    let _ = fs::remove_file(&path);
    let _ = fs::remove_file(journal::manifest_path(&path));
    path
}

fn cleanup(path: &PathBuf) {
    let _ = fs::remove_file(path);
    let _ = fs::remove_file(journal::manifest_path(path));
}

fn fp() -> RunFingerprint {
    RunFingerprint::new(0x1234, 0x5678)
}

/// A fresh journaled run is bit-identical to `map_scheduled` (wall clock
/// aside) on both schedules, and leaves a complete manifest behind.
#[test]
fn fresh_run_matches_map_scheduled() {
    let (mapper, reads) = setup();
    let platform = quad_platform();
    for (idx, schedule) in schedules(&platform, reads.len()).into_iter().enumerate() {
        let (baseline, baseline_metrics) =
            map_scheduled(&mapper, &platform, &schedule, 1, &reads).unwrap();
        let path = journal_path(&format!("fresh-{idx}"));
        let outcome = map_resumable(
            &mapper,
            &platform,
            &schedule,
            1,
            &FaultPlan::new(),
            &path,
            fp(),
            1,
            &reads,
        )
        .unwrap();
        assert_eq!(outcome.resumed_batches, 0);
        assert!(outcome.total_batches > 0);
        assert_eq!(outcome.run.outputs, baseline.outputs);
        assert_eq!(outcome.metrics, baseline_metrics);
        assert_eq!(outcome.run.timelines, baseline.timelines);
        assert_eq!(outcome.run.device_runs, baseline.device_runs);
        assert_eq!(outcome.run.simulated_seconds, baseline.simulated_seconds);
        let manifest = fs::read_to_string(journal::manifest_path(&path)).unwrap();
        assert!(manifest.contains("complete 1"), "{manifest}");
        cleanup(&path);
    }
}

/// Simulated host crashes at five seeded points per schedule: each crash
/// returns the typed `Interrupted` error with a durable prefix, and the
/// resumed run is bit-identical to the uninterrupted one.
#[test]
fn crash_then_resume_is_bit_identical() {
    let (mapper, reads) = setup();
    let platform = quad_platform();
    for (idx, schedule) in schedules(&platform, reads.len()).into_iter().enumerate() {
        let (baseline, baseline_metrics) =
            map_scheduled(&mapper, &platform, &schedule, 1, &reads).unwrap();
        let makespan = baseline.simulated_seconds;
        assert!(makespan > 0.0);
        for (k, frac) in [0.1, 0.3, 0.5, 0.7, 0.9].into_iter().enumerate() {
            let path = journal_path(&format!("crash-{idx}-{k}"));
            let crash_plan = FaultPlan::new().host_crash(makespan * frac);
            let err = map_resumable(
                &mapper,
                &platform,
                &schedule,
                1,
                &crash_plan,
                &path,
                fp(),
                1,
                &reads,
            )
            .expect_err("the crash must interrupt the run");
            let ReputeError::Interrupted {
                committed, total, ..
            } = &err
            else {
                panic!("expected Interrupted, got {err:?}");
            };
            assert!(*committed < *total, "crash must leave work undone");
            assert_eq!(err.exit_code(), 8);

            // Resume without the crash event: completes bit-identically.
            let outcome = map_resumable(
                &mapper,
                &platform,
                &schedule,
                AUTO_HOST_THREADS,
                &FaultPlan::new(),
                &path,
                fp(),
                1,
                &reads,
            )
            .unwrap();
            assert_eq!(outcome.resumed_batches, *committed);
            assert_eq!(outcome.total_batches, *total);
            assert_eq!(outcome.run.outputs, baseline.outputs, "frac {frac}");
            assert_eq!(outcome.metrics, baseline_metrics, "frac {frac}");
            assert_eq!(outcome.run.timelines, baseline.timelines, "frac {frac}");
            assert_eq!(outcome.run.device_runs, baseline.device_runs);
            assert_eq!(outcome.run.simulated_seconds, baseline.simulated_seconds);
            cleanup(&path);
        }
    }
}

/// Repeated crashes at increasing times make monotone progress and still
/// land on the bit-identical result.
#[test]
fn repeated_crashes_make_monotone_progress() {
    let (mapper, reads) = setup();
    let platform = quad_platform();
    let schedule = Schedule::Dynamic { batch: 4 };
    let (baseline, _) = map_scheduled(&mapper, &platform, &schedule, 1, &reads).unwrap();
    let path = journal_path("repeated");
    let mut last_committed = 0usize;
    for frac in [0.2, 0.5, 0.8] {
        let plan = FaultPlan::new().host_crash(baseline.simulated_seconds * frac);
        let err = map_resumable(
            &mapper,
            &platform,
            &schedule,
            1,
            &plan,
            &path,
            fp(),
            1,
            &reads,
        )
        .expect_err("crash");
        let ReputeError::Interrupted { committed, .. } = err else {
            panic!("expected Interrupted");
        };
        assert!(
            committed >= last_committed,
            "progress went backwards: {committed} < {last_committed}"
        );
        last_committed = committed;
    }
    assert!(last_committed > 0, "late crashes must have journaled work");
    let outcome = map_resumable(
        &mapper,
        &platform,
        &schedule,
        1,
        &FaultPlan::new(),
        &path,
        fp(),
        1,
        &reads,
    )
    .unwrap();
    assert_eq!(outcome.resumed_batches, last_committed);
    assert_eq!(outcome.run.outputs, baseline.outputs);
    cleanup(&path);
}

/// The work identity (`metrics.work_units == output.work` per read)
/// survives resume: journaled batches replay the same counters they
/// would have computed.
#[test]
fn work_identity_holds_on_resumed_runs() {
    let (mapper, reads) = setup();
    let platform = quad_platform();
    let schedule = Schedule::Dynamic { batch: 4 };
    let (baseline, _) = map_scheduled(&mapper, &platform, &schedule, 1, &reads).unwrap();
    let path = journal_path("identity");
    let plan = FaultPlan::new().host_crash(baseline.simulated_seconds * 0.5);
    let _ = map_resumable(
        &mapper,
        &platform,
        &schedule,
        1,
        &plan,
        &path,
        fp(),
        1,
        &reads,
    )
    .expect_err("crash");
    let outcome = map_resumable(
        &mapper,
        &platform,
        &schedule,
        1,
        &FaultPlan::new(),
        &path,
        fp(),
        1,
        &reads,
    )
    .unwrap();
    assert!(outcome.resumed_batches > 0, "something must replay");
    for (i, (out, m)) in outcome.run.outputs.iter().zip(&outcome.metrics).enumerate() {
        assert_eq!(
            m.work_units(EXTEND_COST, DP_CELL_COST, LOCATE_COST),
            out.work,
            "work identity broke at read {i} of a resumed run"
        );
    }
    cleanup(&path);
}

/// A journal from a different run (config or workload fingerprint) is
/// refused with the typed mismatch error.
#[test]
fn mismatched_fingerprint_is_refused() {
    let (mapper, reads) = setup();
    let platform = quad_platform();
    let schedule = Schedule::Dynamic { batch: 4 };
    let path = journal_path("mismatch");
    map_resumable(
        &mapper,
        &platform,
        &schedule,
        1,
        &FaultPlan::new(),
        &path,
        fp(),
        1,
        &reads,
    )
    .unwrap();
    for other in [
        RunFingerprint::new(0x9999, 0x5678), // different config
        RunFingerprint::new(0x1234, 0x9999), // different workload
    ] {
        let err = map_resumable(
            &mapper,
            &platform,
            &schedule,
            1,
            &FaultPlan::new(),
            &path,
            other,
            1,
            &reads,
        )
        .expect_err("the journal belongs to a different run");
        assert!(
            matches!(err, ReputeError::ResumeMismatch(_)),
            "expected ResumeMismatch, got {err:?}"
        );
        assert_eq!(err.exit_code(), 6);
    }
    // A schedule change shifts the shape hash — also a mismatch.
    let err = map_resumable(
        &mapper,
        &platform,
        &Schedule::Dynamic { batch: 7 },
        1,
        &FaultPlan::new(),
        &path,
        fp(),
        1,
        &reads,
    )
    .expect_err("different batch decomposition");
    assert!(matches!(err, ReputeError::ResumeMismatch(_)), "{err:?}");
    cleanup(&path);
}

/// A bit flip below the manifest's durable watermark is detected as
/// journal corruption (typed, not a panic, and never silently resumed).
#[test]
fn corruption_below_watermark_is_refused() {
    let (mapper, reads) = setup();
    let platform = quad_platform();
    let schedule = Schedule::Dynamic { batch: 4 };
    let path = journal_path("corrupt");
    map_resumable(
        &mapper,
        &platform,
        &schedule,
        1,
        &FaultPlan::new(),
        &path,
        fp(),
        1,
        &reads,
    )
    .unwrap();
    let mut bytes = fs::read(&path).unwrap();
    let flip_at = journal::JOURNAL_HEADER_LEN + 10;
    bytes[flip_at] ^= 0x40;
    fs::write(&path, &bytes).unwrap();
    let err = map_resumable(
        &mapper,
        &platform,
        &schedule,
        1,
        &FaultPlan::new(),
        &path,
        fp(),
        1,
        &reads,
    )
    .expect_err("a durable record was corrupted");
    assert!(
        matches!(err, ReputeError::JournalCorrupt(_)),
        "expected JournalCorrupt, got {err:?}"
    );
    assert_eq!(err.exit_code(), 5);
    cleanup(&path);
}

/// A torn tail record — bytes past the manifest watermark — is truncated
/// and the run resumes to the bit-identical result.
#[test]
fn torn_tail_is_truncated_and_resume_completes() {
    let (mapper, reads) = setup();
    let platform = quad_platform();
    let schedule = Schedule::Dynamic { batch: 4 };
    let (baseline, baseline_metrics) =
        map_scheduled(&mapper, &platform, &schedule, 1, &reads).unwrap();
    let path = journal_path("torn");
    let plan = FaultPlan::new().host_crash(baseline.simulated_seconds * 0.5);
    let _ = map_resumable(
        &mapper,
        &platform,
        &schedule,
        1,
        &plan,
        &path,
        fp(),
        1,
        &reads,
    )
    .expect_err("crash");
    // Simulate dying mid-append: garbage half-frame at the tail.
    let mut f = OpenOptions::new().append(true).open(&path).unwrap();
    f.write_all(&[0x55; 23]).unwrap();
    drop(f);
    let outcome = map_resumable(
        &mapper,
        &platform,
        &schedule,
        1,
        &FaultPlan::new(),
        &path,
        fp(),
        1,
        &reads,
    )
    .unwrap();
    assert_eq!(outcome.run.outputs, baseline.outputs);
    assert_eq!(outcome.metrics, baseline_metrics);
    cleanup(&path);
}

/// Device fault events are rejected up front: a checkpointed run only
/// accepts the host-crash event.
#[test]
fn device_faults_are_rejected_in_checkpointed_runs() {
    let (mapper, reads) = setup();
    let platform = quad_platform();
    let path = journal_path("devfault");
    let plan = FaultPlan::new().loss(1, 0.5);
    let err = map_resumable(
        &mapper,
        &platform,
        &Schedule::Dynamic { batch: 4 },
        1,
        &plan,
        &path,
        fp(),
        1,
        &reads,
    )
    .expect_err("device faults are not resumable");
    assert!(matches!(err, ReputeError::Config(_)), "{err:?}");
    assert_eq!(err.exit_code(), 2);
    assert!(!path.exists(), "rejected runs must not create a journal");
    cleanup(&path);
}

/// Resuming a *completed* journal recomputes nothing and returns the
/// identical result (idempotent completion).
#[test]
fn completed_journal_resume_is_idempotent() {
    let (mapper, reads) = setup();
    let platform = quad_platform();
    let schedule = Schedule::Dynamic { batch: 4 };
    let path = journal_path("idempotent");
    let first = map_resumable(
        &mapper,
        &platform,
        &schedule,
        1,
        &FaultPlan::new(),
        &path,
        fp(),
        1,
        &reads,
    )
    .unwrap();
    let second = map_resumable(
        &mapper,
        &platform,
        &schedule,
        1,
        &FaultPlan::new(),
        &path,
        fp(),
        1,
        &reads,
    )
    .unwrap();
    assert_eq!(second.resumed_batches, second.total_batches);
    assert_eq!(second.run.outputs, first.run.outputs);
    assert_eq!(second.metrics, first.metrics);
    assert_eq!(second.run.simulated_seconds, first.run.simulated_seconds);
    cleanup(&path);
}

/// An empty read set is a legal journaled run: no batches, a complete
/// manifest, and a zero-energy report.
#[test]
fn empty_read_set_completes_with_empty_journal() {
    let (mapper, _) = setup();
    let platform = quad_platform();
    let path = journal_path("empty");
    let outcome = map_resumable(
        &mapper,
        &platform,
        &Schedule::Dynamic { batch: 4 },
        1,
        &FaultPlan::new(),
        &path,
        fp(),
        1,
        &[],
    )
    .unwrap();
    assert_eq!(outcome.total_batches, 0);
    assert!(outcome.run.outputs.is_empty());
    let manifest = fs::read_to_string(journal::manifest_path(&path)).unwrap();
    assert!(manifest.contains("complete 1"), "{manifest}");
    cleanup(&path);
}
