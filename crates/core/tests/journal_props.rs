#![cfg(feature = "proptest")]
//! NOTE: gated behind the non-default `proptest` feature because the
//! external `proptest` crate cannot be resolved in the offline build
//! environment. Enabling the feature additionally requires restoring a
//! `proptest` dev-dependency where registry access exists. The
//! always-on unit tests in `journal.rs` and the seeded suite in
//! `resume.rs` cover the same invariants with fixed corpora.

use proptest::prelude::*;

use repute_core::journal::{decode_records, encode_record, BatchRecord};
use repute_genome::Strand;
use repute_mappers::{MapOutput, Mapping};
use repute_obs::MapMetrics;

/// Strategy for one batch record over the read range `[lo, lo+reads)`.
fn arb_record(index: u32, lo: u64, reads: usize) -> impl Strategy<Value = BatchRecord> {
    let outputs = prop::collection::vec(
        (
            prop::collection::vec(
                (any::<u32>(), any::<u32>(), any::<bool>()).prop_map(
                    |(position, distance, fwd)| Mapping {
                        position,
                        distance,
                        strand: if fwd {
                            Strand::Forward
                        } else {
                            Strand::Reverse
                        },
                    },
                ),
                0..4,
            ),
            any::<u64>(),
            any::<u64>(),
        )
            .prop_map(|(mappings, work, candidates)| MapOutput {
                mappings,
                work,
                candidates,
            }),
        reads..=reads,
    );
    let metrics = prop::collection::vec(
        prop::collection::vec(any::<u64>(), 13).prop_map(|w| MapMetrics {
            seeds_selected: w[0],
            fm_extend_ops: w[1],
            fm_locate_ops: w[2],
            candidates_raw: w[3],
            candidates_merged: w[4],
            dp_cells: w[5],
            prefilter_tested: w[6],
            prefilter_rejected: w[7],
            prefilter_false_accepts: w[8],
            prefilter_words: w[9],
            verifications: w[10],
            word_updates: w[11],
            hits: w[12],
        }),
        reads..=reads,
    );
    (outputs, metrics).prop_map(move |(outputs, metrics)| BatchRecord {
        index,
        lo,
        hi: lo + reads as u64,
        outputs,
        metrics,
    })
}

/// A contiguous stream of records: sizes drawn per batch, indices and
/// read ranges forming the prefix the journal invariant requires.
fn arb_stream() -> impl Strategy<Value = Vec<BatchRecord>> {
    prop::collection::vec(0usize..5, 0..6).prop_flat_map(|sizes| {
        let mut lo = 0u64;
        let mut parts = Vec::new();
        for (i, reads) in sizes.into_iter().enumerate() {
            parts.push(arb_record(i as u32, lo, reads));
            lo += reads as u64;
        }
        parts
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any record stream round-trips through the framed codec, consuming
    /// exactly the bytes it wrote.
    #[test]
    fn streams_round_trip(records in arb_stream()) {
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&encode_record(r));
        }
        let (decoded, consumed) = decode_records(&bytes);
        prop_assert_eq!(&decoded, &records);
        prop_assert_eq!(consumed, bytes.len());
    }

    /// Truncation at any byte offset keeps exactly the intact prefix
    /// records, and the consumed count lands on a record boundary.
    #[test]
    fn truncation_keeps_the_intact_prefix(records in arb_stream(), cut_frac in 0.0f64..1.0) {
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &records {
            bytes.extend_from_slice(&encode_record(r));
            boundaries.push(bytes.len());
        }
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        let (decoded, consumed) = decode_records(&bytes[..cut]);
        let intact = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        prop_assert_eq!(decoded.len(), intact);
        prop_assert_eq!(consumed, boundaries[intact]);
        prop_assert_eq!(&decoded[..], &records[..intact]);
    }

    /// A single bit flip anywhere in the tail record is detected: decode
    /// never returns a record differing from what was written, and every
    /// record before the flipped one survives.
    #[test]
    fn tail_bit_flip_is_detected(records in arb_stream(), byte_frac in 0.0f64..1.0, bit in 0u8..8) {
        prop_assume!(!records.is_empty());
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &records {
            bytes.extend_from_slice(&encode_record(r));
            boundaries.push(bytes.len());
        }
        let last_start = boundaries[boundaries.len() - 2];
        let tail_len = bytes.len() - last_start;
        let byte = last_start + ((tail_len as f64 * byte_frac) as usize).min(tail_len - 1);
        bytes[byte] ^= 1 << bit;
        let (decoded, _) = decode_records(&bytes);
        let prefix = &records[..records.len() - 1];
        // The corrupt tail is dropped; the prefix survives bit-exact.
        prop_assert_eq!(&decoded[..], prefix);
    }
}
