//! Fault-injection recovery: output invariance, failover attribution,
//! retry semantics, and the typed all-devices-dead partial failure.
//!
//! The executor's contract: whenever at least one device survives a
//! [`FaultPlan`], `map_scheduled_with_faults` returns output hits and
//! per-read metrics bit-identical to the fault-free run of the same
//! schedule — faults may change simulated time, timelines and energy,
//! never mapping results. This suite is always-on and seeded with the
//! in-repo PRNG; the proptest-shaped variant lives in `fault_props.rs`
//! behind the non-default `proptest` feature.

use std::sync::Arc;

use repute_core::{
    map_scheduled, map_scheduled_with_faults, ReputeConfig, ReputeMapper, Schedule,
    AUTO_HOST_THREADS,
};
use repute_genome::reads::ReadSimulator;
use repute_genome::synth::ReferenceBuilder;
use repute_genome::DnaSeq;
use repute_hetsim::{profiles, DeviceKind, DeviceProfile, FaultPlan, LaunchErrorKind, Platform};
use repute_mappers::{MapOutput, Mapper};
use repute_obs::MapMetrics;

fn setup() -> (ReputeMapper, Vec<DnaSeq>) {
    let reference = ReferenceBuilder::new(40_000).seed(401).build();
    let reads: Vec<DnaSeq> = ReadSimulator::new(100, 24)
        .seed(402)
        .simulate(&reference)
        .into_iter()
        .map(|r| r.seq)
        .collect();
    let indexed = Arc::new(repute_mappers::IndexedReference::build(reference));
    let mapper = ReputeMapper::new(indexed, ReputeConfig::new(3, 15).unwrap());
    (mapper, reads)
}

/// Four identical CPUs: any device can absorb any batch, so failover
/// never changes what is computable.
fn quad_platform() -> Platform {
    Platform::new(
        "quad",
        10.0,
        vec![
            profiles::intel_i7_2600(),
            profiles::intel_i7_2600(),
            profiles::intel_i7_2600(),
            profiles::intel_i7_2600(),
        ],
    )
}

fn schedules(platform: &Platform, items: usize) -> Vec<Schedule> {
    vec![
        Schedule::Static(platform.even_shares(items)),
        Schedule::Dynamic { batch: 3 },
    ]
}

fn assert_same_outputs(
    a: &[MapOutput],
    b: &[MapOutput],
    am: &[MapMetrics],
    bm: &[MapMetrics],
    context: &str,
) {
    assert_eq!(a.len(), b.len(), "{context}: output count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.mappings, y.mappings, "{context}: read {i} hits diverged");
    }
    assert_eq!(am, bm, "{context}: per-read metrics diverged");
}

/// Random fault plans with a guaranteed survivor (device 0 is never
/// lost): hits and metric order identical to the fault-free run, across
/// both schedules and host-thread counts {1, 4}.
#[test]
fn random_fault_plans_preserve_output_with_a_survivor() {
    let (mapper, reads) = setup();
    let platform = quad_platform();
    for schedule in schedules(&platform, reads.len()) {
        let (baseline, baseline_metrics) =
            map_scheduled(&mapper, &platform, &schedule, 1, &reads).unwrap();
        for seed in 0..12u64 {
            // Horizon around the fault-free makespan so faults actually
            // land mid-run rather than all before or after it.
            let plan = FaultPlan::random(seed, 4, baseline.simulated_seconds.max(1e-6));
            for host_threads in [1usize, 4] {
                let (run, metrics) = map_scheduled_with_faults(
                    &mapper,
                    &platform,
                    &schedule,
                    host_threads,
                    &plan,
                    2,
                    &reads,
                )
                .unwrap_or_else(|e| {
                    panic!("seed {seed} threads {host_threads}: {e} (plan {plan:?})")
                });
                assert_same_outputs(
                    &run.outputs,
                    &baseline.outputs,
                    &metrics,
                    &baseline_metrics,
                    &format!("seed {seed} threads {host_threads} schedule {schedule:?}"),
                );
                // Injected faults must show up in the accounting iff the
                // plan had any strike (losses always count once armed
                // before probing ends; transients only if consumed).
                let total_items: usize = run.device_runs.iter().map(|r| r.items).sum();
                assert_eq!(total_items, reads.len(), "every read charged to a device");
            }
        }
    }
}

/// A single permanent device failure mid-run: mapping completes, output
/// is bit-identical, and the report attributes the migrated batches.
///
/// Tiny devices (quarter-RAM cap of 4 reads) force each 6-read share
/// into two batches, and the loss arms between them: the dead device's
/// first batch completes (fail-stop at launch granularity), its second
/// must migrate.
#[test]
fn single_device_loss_migrates_batches_and_preserves_output() {
    let (mapper, reads) = setup();
    let bytes_per_read = mapper.max_locations() * 12;
    let tiny = |name: &str| {
        DeviceProfile::new(
            name.to_string(),
            DeviceKind::Cpu,
            2,
            1e7,
            bytes_per_read * 4 * 4, // quarter-RAM = 4 reads
            1.0,
        )
    };
    let platform = Platform::new(
        "tiny-quad",
        1.0,
        vec![tiny("t0"), tiny("t1"), tiny("t2"), tiny("t3")],
    );
    let schedule = Schedule::Static(platform.even_shares(reads.len()));
    let (baseline, baseline_metrics) =
        map_scheduled(&mapper, &platform, &schedule, 1, &reads).unwrap();
    // Kill device 2 just after its first batch starts: the in-flight
    // launch completes, everything after it fails over.
    let plan = FaultPlan::new().loss(2, 1e-9);
    let (run, metrics) =
        map_scheduled_with_faults(&mapper, &platform, &schedule, 1, &plan, 2, &reads).unwrap();
    assert_same_outputs(
        &run.outputs,
        &baseline.outputs,
        &metrics,
        &baseline_metrics,
        "single loss",
    );
    // One run entry per device; the dead device counts its loss, and the
    // survivors absorbed its batches.
    assert_eq!(run.device_runs.len(), 4);
    assert_eq!(run.fault_counters[2].faults, 1, "the loss must be counted");
    let migrated: u64 = run.fault_counters.iter().map(|c| c.migrated_batches).sum();
    assert!(migrated > 0, "batches of the dead device must migrate");
    assert_eq!(run.fault_counters[2].migrated_batches, 0);
    // Fault-annotated timeline entries name the origin device.
    let annotated = run
        .timelines
        .iter()
        .flatten()
        .filter(|e| e.label.contains("[migrated from d2]"))
        .count() as u64;
    assert_eq!(annotated, migrated, "annotations must match the counters");
    // The roll-up carries the counters into the report.
    let report = run.report(&platform, &metrics);
    assert_eq!(
        report
            .devices
            .iter()
            .map(|d| d.migrated_batches)
            .sum::<u64>(),
        migrated
    );
    assert_eq!(report.devices[2].faults, 1);
}

/// Transient faults with a retry budget never change output, and the
/// retries are visible in the accounting.
#[test]
fn transient_faults_retry_without_changing_output() {
    let (mapper, reads) = setup();
    let platform = quad_platform();
    for schedule in schedules(&platform, reads.len()) {
        let (baseline, baseline_metrics) =
            map_scheduled(&mapper, &platform, &schedule, 1, &reads).unwrap();
        let plan = FaultPlan::parse("transient:d0@0,transient:d1@0x2,transient:d3@0").unwrap();
        let (run, metrics) =
            map_scheduled_with_faults(&mapper, &platform, &schedule, 1, &plan, 3, &reads).unwrap();
        assert_same_outputs(
            &run.outputs,
            &baseline.outputs,
            &metrics,
            &baseline_metrics,
            "transient retry",
        );
        let retries: u64 = run.fault_counters.iter().map(|c| c.retries).sum();
        let faults: u64 = run.fault_counters.iter().map(|c| c.faults).sum();
        assert_eq!(faults, 4, "all four armed transients strike");
        assert_eq!(retries, 4, "each strike costs one retry");
        assert!(
            run.timelines
                .iter()
                .flatten()
                .any(|e| e.label.contains("[retry x")),
            "retried launches must be annotated"
        );
        // Backoff makes the faulted run at least as slow as fault-free.
        // (Only provable for the static schedule: the dynamic
        // earliest-free rule may route around a delayed device and land
        // on a different — occasionally shorter — assignment.)
        if matches!(schedule, Schedule::Static(_)) {
            assert!(run.simulated_seconds >= baseline.simulated_seconds - 1e-12);
        }
    }
}

/// `max_retries = 0`: the first transient escalates the device to a
/// permanent loss — but failover still completes the mapping.
#[test]
fn zero_retry_budget_escalates_to_failover() {
    let (mapper, reads) = setup();
    let platform = quad_platform();
    let schedule = Schedule::Static(platform.even_shares(reads.len()));
    let (baseline, baseline_metrics) =
        map_scheduled(&mapper, &platform, &schedule, 1, &reads).unwrap();
    let plan = FaultPlan::new().transient(1, 0.0);
    let (run, metrics) =
        map_scheduled_with_faults(&mapper, &platform, &schedule, 1, &plan, 0, &reads).unwrap();
    assert_same_outputs(
        &run.outputs,
        &baseline.outputs,
        &metrics,
        &baseline_metrics,
        "escalation",
    );
    assert_eq!(run.fault_counters[1].retries, 0);
    // The transient strike plus the escalated loss.
    assert_eq!(run.fault_counters[1].faults, 2);
    assert!(
        run.fault_counters
            .iter()
            .map(|c| c.migrated_batches)
            .sum::<u64>()
            > 0
    );
}

/// All devices dead: a typed error naming the unmapped read range, not a
/// panic.
#[test]
fn all_devices_lost_returns_typed_partial_failure() {
    let (mapper, reads) = setup();
    let platform = quad_platform();
    let plan = FaultPlan::new()
        .loss(0, 0.0)
        .loss(1, 0.0)
        .loss(2, 0.0)
        .loss(3, 0.0);
    for schedule in schedules(&platform, reads.len()) {
        let err = map_scheduled_with_faults(&mapper, &platform, &schedule, 1, &plan, 2, &reads)
            .expect_err("no device survives");
        let range = err
            .unmapped_range()
            .unwrap_or_else(|| panic!("expected AllDevicesLost, got {:?}", err.kind()));
        assert_eq!(range, 0..reads.len(), "everything is unmapped");
        assert!(err.to_string().contains("all devices lost"), "{err}");
    }
}

/// A loss arming mid-run leaves only the later reads unmapped when it is
/// the sole device.
#[test]
fn sole_device_loss_names_the_tail_range() {
    let (mapper, reads) = setup();
    let solo = Platform::new("solo", 1.0, vec![profiles::intel_i7_2600()]);
    let schedule = Schedule::Dynamic { batch: 4 };
    let (baseline, _) = map_scheduled(&mapper, &solo, &schedule, 1, &reads).unwrap();
    let plan = FaultPlan::new().loss(0, baseline.simulated_seconds / 2.0);
    let err = map_scheduled_with_faults(&mapper, &solo, &schedule, 1, &plan, 2, &reads)
        .expect_err("the only device dies");
    let range = err.unmapped_range().expect("typed partial failure");
    assert!(range.start > 0, "early batches completed before the loss");
    assert_eq!(range.end, reads.len());
}

/// An empty plan is the identity: bit-identical to `map_scheduled`,
/// including simulated time and zeroed counters.
#[test]
fn empty_plan_is_identity() {
    let (mapper, reads) = setup();
    let platform = quad_platform();
    for schedule in schedules(&platform, reads.len()) {
        let (a, am) = map_scheduled(&mapper, &platform, &schedule, 1, &reads).unwrap();
        let (b, bm) = map_scheduled_with_faults(
            &mapper,
            &platform,
            &schedule,
            1,
            &FaultPlan::new(),
            2,
            &reads,
        )
        .unwrap();
        assert_same_outputs(&b.outputs, &a.outputs, &bm, &am, "identity");
        assert_eq!(b.simulated_seconds, a.simulated_seconds);
        assert_eq!(b.timelines, a.timelines);
        assert!(b.fault_counters.iter().all(|c| c.is_zero()));
    }
}

/// Degradation slows a device without changing output, and shifts load
/// away from it under the dynamic schedule.
#[test]
fn degradation_changes_time_not_output() {
    let (mapper, reads) = setup();
    let platform = quad_platform();
    let schedule = Schedule::Dynamic { batch: 3 };
    let (baseline, baseline_metrics) =
        map_scheduled(&mapper, &platform, &schedule, 1, &reads).unwrap();
    let plan = FaultPlan::new().degrade(0, 0.0, 0.25);
    let (run, metrics) =
        map_scheduled_with_faults(&mapper, &platform, &schedule, 1, &plan, 2, &reads).unwrap();
    assert_same_outputs(
        &run.outputs,
        &baseline.outputs,
        &metrics,
        &baseline_metrics,
        "degrade",
    );
    // Degradation is silent in the fault counters (it is not a failure).
    assert!(run.fault_counters.iter().all(|c| c.is_zero()));
    // The degraded device processed fewer reads than its healthy peers'
    // average: the earliest-free rule routed work around it.
    let degraded_items = run.device_runs[0].items;
    let peer_avg = (reads.len() - degraded_items) / 3;
    assert!(
        degraded_items < peer_avg,
        "degraded device got {degraded_items}, peers averaged {peer_avg}"
    );
}

/// A plan naming a device the platform lacks is rejected up front.
#[test]
fn plan_with_unknown_device_is_rejected() {
    let (mapper, reads) = setup();
    let platform = quad_platform();
    let plan = FaultPlan::new().loss(9, 0.0);
    let err = map_scheduled_with_faults(
        &mapper,
        &platform,
        &Schedule::Dynamic { batch: 0 },
        1,
        &plan,
        2,
        &reads,
    )
    .expect_err("device 9 does not exist");
    assert_eq!(err.kind(), &LaunchErrorKind::InvalidDistribution);
    assert!(err.to_string().contains("device 9"), "{err}");
}

/// The failover replay is deterministic: identical plans and schedules
/// produce bit-identical simulated schedules for any host thread count.
#[test]
fn faulted_replay_is_deterministic_across_host_threads() {
    let (mapper, reads) = setup();
    let platform = quad_platform();
    for schedule in schedules(&platform, reads.len()) {
        let plan = FaultPlan::random(7, 4, 0.5);
        assert!(!plan.events().is_empty(), "seed 7 must produce a plan");
        let (a, _) =
            map_scheduled_with_faults(&mapper, &platform, &schedule, 1, &plan, 2, &reads).unwrap();
        for host_threads in [4usize, AUTO_HOST_THREADS] {
            let (b, _) = map_scheduled_with_faults(
                &mapper,
                &platform,
                &schedule,
                host_threads,
                &plan,
                2,
                &reads,
            )
            .unwrap();
            assert_eq!(a.simulated_seconds, b.simulated_seconds);
            assert_eq!(a.timelines, b.timelines);
            assert_eq!(a.fault_counters, b.fault_counters);
        }
    }
}
