#![cfg(feature = "proptest")]
//! NOTE: gated behind the non-default `proptest` feature because the
//! external `proptest` crate cannot be resolved in the offline build
//! environment. Enabling the feature additionally requires restoring a
//! `proptest` dev-dependency where registry access exists. The
//! always-on seeded suite in `faults.rs` covers the same invariants
//! with the in-repo PRNG.

use std::sync::Arc;

use proptest::prelude::*;

use repute_core::{map_scheduled, map_scheduled_with_faults, ReputeConfig, ReputeMapper, Schedule};
use repute_genome::reads::ReadSimulator;
use repute_genome::synth::ReferenceBuilder;
use repute_genome::DnaSeq;
use repute_hetsim::{profiles, FaultPlan, Platform};

const DEVICES: usize = 4;

fn setup() -> (ReputeMapper, Vec<DnaSeq>, Platform) {
    let reference = ReferenceBuilder::new(40_000).seed(401).build();
    let reads: Vec<DnaSeq> = ReadSimulator::new(100, 24)
        .seed(402)
        .simulate(&reference)
        .into_iter()
        .map(|r| r.seq)
        .collect();
    let indexed = Arc::new(repute_mappers::IndexedReference::build(reference));
    let mapper = ReputeMapper::new(indexed, ReputeConfig::new(3, 15).unwrap());
    let platform = Platform::new(
        "quad",
        10.0,
        vec![
            profiles::intel_i7_2600(),
            profiles::intel_i7_2600(),
            profiles::intel_i7_2600(),
            profiles::intel_i7_2600(),
        ],
    );
    (mapper, reads, platform)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Output invariance under random fault plans with a guaranteed
    /// survivor: `FaultPlan::random` never kills device 0, so for any
    /// seed, horizon, schedule, and retry budget the faulted run must
    /// produce hits and per-read metrics bit-identical to the fault-free
    /// run — and identical across host-thread counts {1, 4}.
    #[test]
    fn random_plans_with_survivor_preserve_output(
        seed in any::<u64>(),
        horizon in 1e-6f64..1.0,
        dynamic in any::<bool>(),
        max_retries in 0usize..4,
    ) {
        let (mapper, reads, platform) = setup();
        let schedule = if dynamic {
            Schedule::Dynamic { batch: 3 }
        } else {
            Schedule::Static(platform.even_shares(reads.len()))
        };
        let (baseline, baseline_metrics) =
            map_scheduled(&mapper, &platform, &schedule, 1, &reads).unwrap();
        let plan = FaultPlan::random(seed, DEVICES, horizon);
        let mut runs = Vec::new();
        for host_threads in [1usize, 4] {
            let (run, metrics) = map_scheduled_with_faults(
                &mapper,
                &platform,
                &schedule,
                host_threads,
                &plan,
                max_retries,
                &reads,
            )
            .unwrap();
            prop_assert_eq!(run.outputs.len(), baseline.outputs.len());
            for (a, b) in run.outputs.iter().zip(&baseline.outputs) {
                prop_assert_eq!(&a.mappings, &b.mappings);
            }
            prop_assert_eq!(&metrics, &baseline_metrics);
            runs.push(run);
        }
        // Replay is deterministic across host-thread counts.
        prop_assert_eq!(runs[0].simulated_seconds, runs[1].simulated_seconds);
        prop_assert_eq!(&runs[0].timelines, &runs[1].timelines);
        prop_assert_eq!(&runs[0].fault_counters, &runs[1].fault_counters);
    }
}
