//! End-to-end observability smoke test (the PR's acceptance scenario):
//! map a read set over a small reference, once per read on the host and
//! once through the simulated platform, and check that the telemetry
//! layer agrees with the mapper's own work accounting at every level —
//! per read, per device timeline, and in the exported JSON-lines.

use std::sync::Arc;

use repute_core::{map_on_platform_with_metrics, ReputeConfig, ReputeMapper};
use repute_genome::reads::{ErrorProfile, ReadSimulator};
use repute_genome::synth::ReferenceBuilder;
use repute_hetsim::profiles;
use repute_mappers::engine_costs::{DP_CELL_COST, EXTEND_COST, LOCATE_COST};
use repute_mappers::{IndexedReference, Mapper};
use repute_obs::json::{field, parse_flat_object};
use repute_obs::MapMetrics;

#[test]
fn per_read_metrics_decompose_work_on_10kb_reference() {
    let reference = ReferenceBuilder::new(10_000).seed(77).build();
    let indexed = Arc::new(IndexedReference::build(reference));
    let mapper = ReputeMapper::new(Arc::clone(&indexed), ReputeConfig::new(4, 12).unwrap());
    let reads = ReadSimulator::new(100, 30)
        .profile(ErrorProfile::err012100())
        .seed(404)
        .simulate(indexed.seq());

    let mut totals = MapMetrics::new();
    let mut total_work = 0u64;
    for read in &reads {
        let mut m = MapMetrics::new();
        let out = mapper.map_read_metered(&read.seq, &mut m);
        // The per-read record decomposes the work scalar exactly:
        // work = extend·EXTEND + dp_cells·DP + locate·LOCATE + word_updates.
        assert_eq!(
            m.work_units(EXTEND_COST, DP_CELL_COST, LOCATE_COST),
            out.work,
            "read {}",
            read.id
        );
        assert_eq!(m.hits, out.mappings.len() as u64, "read {}", read.id);
        assert_eq!(m.candidates_merged, out.candidates, "read {}", read.id);
        totals.merge(&m);
        total_work += out.work;
    }
    assert!(totals.seeds_selected > 0);
    assert!(totals.fm_extend_ops > 0);
    assert!(totals.verifications >= totals.hits);
    assert_eq!(
        totals.work_units(EXTEND_COST, DP_CELL_COST, LOCATE_COST),
        total_work,
        "totals must decompose the summed work identically"
    );
}

#[test]
fn platform_run_exports_consistent_json_lines() {
    let reference = ReferenceBuilder::new(10_000).seed(78).build();
    let indexed = Arc::new(IndexedReference::build(reference));
    let mapper = ReputeMapper::new(Arc::clone(&indexed), ReputeConfig::new(4, 12).unwrap());
    let reads: Vec<_> = ReadSimulator::new(100, 24)
        .profile(ErrorProfile::err012100())
        .seed(405)
        .simulate(indexed.seq())
        .into_iter()
        .map(|r| r.seq)
        .collect();

    let platform = profiles::system1();
    let shares = platform.even_shares(reads.len());
    let (run, metrics) = map_on_platform_with_metrics(&mapper, &platform, &shares, &reads).unwrap();
    assert_eq!(metrics.len(), reads.len());
    let report = run.report(&platform, &metrics);

    // Fold the report through the JSON-lines export and parse it back.
    let mut buf = Vec::new();
    report.write_json_lines(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();

    let mut totals_from_json = MapMetrics::new();
    let mut event_work = 0u64;
    let mut saw_energy = false;
    for line in text.lines() {
        let fields = parse_flat_object(line).expect("every exported line parses");
        match field(&fields, "type").unwrap().as_str().unwrap() {
            "run" => {
                assert_eq!(
                    field(&fields, "reads").unwrap().as_u64().unwrap(),
                    reads.len() as u64
                );
                for (name, _) in MapMetrics::new().fields() {
                    let value = field(&fields, name)
                        .unwrap_or_else(|| panic!("run record lacks {name}"))
                        .as_u64()
                        .unwrap();
                    match name {
                        "seeds_selected" => totals_from_json.seeds_selected = value,
                        "fm_extend_ops" => totals_from_json.fm_extend_ops = value,
                        "fm_locate_ops" => totals_from_json.fm_locate_ops = value,
                        "candidates_raw" => totals_from_json.candidates_raw = value,
                        "candidates_merged" => totals_from_json.candidates_merged = value,
                        "dp_cells" => totals_from_json.dp_cells = value,
                        "prefilter_tested" => totals_from_json.prefilter_tested = value,
                        "prefilter_rejected" => totals_from_json.prefilter_rejected = value,
                        "prefilter_false_accepts" => {
                            totals_from_json.prefilter_false_accepts = value
                        }
                        "prefilter_words" => totals_from_json.prefilter_words = value,
                        "verifications" => totals_from_json.verifications = value,
                        "word_updates" => totals_from_json.word_updates = value,
                        "hits" => totals_from_json.hits = value,
                        other => panic!("unexpected metric field {other}"),
                    }
                }
            }
            "event" => {
                let queued = field(&fields, "queued_s").unwrap().as_f64().unwrap();
                let start = field(&fields, "start_s").unwrap().as_f64().unwrap();
                let end = field(&fields, "end_s").unwrap().as_f64().unwrap();
                assert!(queued <= start && start <= end, "event timestamps ordered");
                event_work += field(&fields, "work").unwrap().as_u64().unwrap();
            }
            "energy" => {
                saw_energy = true;
                // §III-D identity: energy = (avg − idle) × time.
                let t = field(&fields, "mapping_seconds").unwrap().as_f64().unwrap();
                let avg = field(&fields, "average_power_w").unwrap().as_f64().unwrap();
                let idle = field(&fields, "idle_power_w").unwrap().as_f64().unwrap();
                let e = field(&fields, "energy_j").unwrap().as_f64().unwrap();
                assert!(
                    (e - (avg - idle) * t).abs() <= 1e-9 * e.abs().max(1.0),
                    "energy identity violated: {e} vs ({avg} - {idle}) * {t}"
                );
            }
            _ => {}
        }
    }
    assert!(saw_energy, "platform run must export an energy record");

    // The run record's totals equal the sum of the per-read records, and
    // the per-device event work sums to the mapper's work accounting.
    let mut expected = MapMetrics::new();
    for m in &metrics {
        expected.merge(m);
    }
    assert_eq!(totals_from_json, expected);
    assert_eq!(event_work, run.total_work());
    assert_eq!(
        expected.work_units(EXTEND_COST, DP_CELL_COST, LOCATE_COST),
        run.total_work()
    );
}
