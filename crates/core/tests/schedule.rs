//! Read-order / metrics-order invariance of the task-parallel executor.
//!
//! A tiny-device platform forces every share into ≥ 3 quarter-RAM batches
//! while shares execute on concurrent host threads; the outputs and
//! per-read metrics must still come back in exact read order, identical
//! to a single-device rerun, for every schedule and host-thread count.

use std::sync::Arc;

use repute_core::{
    map_on_platform_with_metrics, map_scheduled, ReputeConfig, ReputeMapper, Schedule,
    AUTO_HOST_THREADS,
};
use repute_genome::reads::ReadSimulator;
use repute_genome::synth::ReferenceBuilder;
use repute_genome::DnaSeq;
use repute_hetsim::{profiles, DeviceKind, DeviceProfile, Platform, Share};
use repute_mappers::Mapper;

fn setup() -> (ReputeMapper, Vec<DnaSeq>) {
    let reference = ReferenceBuilder::new(50_000).seed(301).build();
    let reads: Vec<DnaSeq> = ReadSimulator::new(100, 24)
        .seed(302)
        .simulate(&reference)
        .into_iter()
        .map(|r| r.seq)
        .collect();
    let indexed = Arc::new(repute_mappers::IndexedReference::build(reference));
    let mapper = ReputeMapper::new(indexed, ReputeConfig::new(3, 15).unwrap());
    (mapper, reads)
}

/// Two identical devices whose quarter-RAM output cap is 4 reads: a
/// 12-read share needs 3 sequential batches.
fn tiny_platform(mapper: &ReputeMapper) -> Platform {
    let bytes_per_read = mapper.max_locations() * 12;
    let tiny = |name: &str| {
        DeviceProfile::new(
            name.to_string(),
            DeviceKind::Cpu,
            2,
            1e7,
            bytes_per_read * 4 * 4, // quarter-RAM = 4 reads
            1.0,
        )
    };
    Platform::new("tiny-duo", 1.0, vec![tiny("tiny0"), tiny("tiny1")])
}

#[test]
fn multi_batch_threaded_shares_preserve_read_and_metrics_order() {
    let (mapper, reads) = setup();
    assert_eq!(reads.len(), 24);
    let platform = tiny_platform(&mapper);

    // Single-device reference run (one share, no concurrency between
    // shares) on an ordinary platform.
    let reference = profiles::system1_cpu_only();
    let (ref_run, ref_metrics) = map_on_platform_with_metrics(
        &mapper,
        &reference,
        &reference.single_device_share(0, reads.len()),
        &reads,
    )
    .unwrap();

    let shares = vec![
        Share {
            device: 0,
            items: 12,
        },
        Share {
            device: 1,
            items: 12,
        },
    ];
    for host_threads in [1usize, 2, AUTO_HOST_THREADS] {
        let (run, metrics) = map_scheduled(
            &mapper,
            &platform,
            &Schedule::Static(shares.clone()),
            host_threads,
            &reads,
        )
        .unwrap();
        // Each share was split into ≥ 3 quarter-RAM batches.
        for events in &run.timelines {
            assert!(
                events.len() >= 3,
                "expected ≥3 batches per share, got {}",
                events.len()
            );
        }
        // Outputs and metrics in exact read order, matching the
        // single-device rerun element for element.
        assert_eq!(run.outputs.len(), reads.len());
        for (i, (a, b)) in run.outputs.iter().zip(&ref_run.outputs).enumerate() {
            assert_eq!(
                a.mappings, b.mappings,
                "read {i} (host_threads {host_threads})"
            );
        }
        assert_eq!(metrics, ref_metrics, "host_threads {host_threads}");
    }
}

#[test]
fn dynamic_schedule_on_tiny_devices_matches_single_device_rerun() {
    let (mapper, reads) = setup();
    let platform = tiny_platform(&mapper);
    let reference = profiles::system1_cpu_only();
    let (ref_run, ref_metrics) = map_on_platform_with_metrics(
        &mapper,
        &reference,
        &reference.single_device_share(0, reads.len()),
        &reads,
    )
    .unwrap();
    for (batch, host_threads) in [(0usize, AUTO_HOST_THREADS), (1, 2), (5, 1)] {
        let (run, metrics) = map_scheduled(
            &mapper,
            &platform,
            &Schedule::Dynamic { batch },
            host_threads,
            &reads,
        )
        .unwrap();
        // The quarter-RAM cap bounds every dynamic batch too.
        for events in &run.timelines {
            for e in events {
                assert!(e.items <= 4, "batch of {} exceeds the 4-read cap", e.items);
            }
        }
        for (a, b) in run.outputs.iter().zip(&ref_run.outputs) {
            assert_eq!(a.mappings, b.mappings);
        }
        assert_eq!(metrics, ref_metrics);
    }
}

#[test]
fn empty_read_set_is_a_valid_empty_run_in_both_modes() {
    let (mapper, _) = setup();
    let platform = tiny_platform(&mapper);
    let (static_run, m1) =
        map_on_platform_with_metrics(&mapper, &platform, &[], &[]).expect("empty static run");
    let (dynamic_run, m2) = map_scheduled(
        &mapper,
        &platform,
        &Schedule::Dynamic { batch: 0 },
        AUTO_HOST_THREADS,
        &[],
    )
    .expect("empty dynamic run");
    for run in [&static_run, &dynamic_run] {
        assert!(run.outputs.is_empty());
        assert_eq!(run.simulated_seconds, 0.0);
        assert_eq!(run.energy.energy_j, 0.0);
        assert_eq!(run.energy.average_power_w, platform.idle_power_w());
    }
    assert!(m1.is_empty() && m2.is_empty());
}
