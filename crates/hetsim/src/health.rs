//! Fleet health bookkeeping for long-lived services.
//!
//! A batch run consumes a [`crate::FaultPlan`] and is done; a daemon
//! lives through many batches and must remember what the fleet looks
//! like *between* them: which accelerator died two batches ago, which
//! one keeps throwing transient launch failures and should stop
//! receiving work before it wastes another retry budget. That memory is
//! the [`DeviceHealth`] registry — a strictly monotone per-device ladder
//!
//! ```text
//! Healthy → Degraded → Quarantined → Lost
//! ```
//!
//! with no recovery edges: simulated hardware does not heal, and a
//! monotone ladder is what makes crash-resumed health reconstruction
//! order-insensitive (observations commute, so replaying journal records
//! in any grouping yields the same state).
//!
//! Scheduling semantics: **Healthy** and **Degraded** devices are live
//! (schedulable — degraded devices are slower, not wrong).
//! **Quarantined** devices are preemptively excluded after accumulating
//! too many transient faults (they *would* still run, but every launch
//! risks burning a retry budget and escalating mid-batch).
//! **Lost** devices are gone. A service is unavailable when no live
//! device remains.

use crate::fault::{FaultKind, FaultPlan};
use std::fmt;

/// Transient-fault observations at which a device is quarantined.
///
/// Chosen above the executor's default retry budget so a single noisy
/// batch (which the retry loop already absorbs) does not eject a device,
/// while a device that is noisy across batches gets benched.
pub const DEFAULT_QUARANTINE_FAULTS: u64 = 6;

/// One device's position on the health ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Full throughput, schedulable.
    Healthy,
    /// Throttled or occasionally faulting, still schedulable.
    Degraded,
    /// Preemptively excluded from scheduling after repeated transients.
    Quarantined,
    /// Permanently dead.
    Lost,
}

impl HealthState {
    /// Stable lowercase name (telemetry and journal provenance).
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Quarantined => "quarantined",
            HealthState::Lost => "lost",
        }
    }

    /// Stable wire code for journal serialization.
    pub fn code(self) -> u8 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded => 1,
            HealthState::Quarantined => 2,
            HealthState::Lost => 3,
        }
    }

    /// Inverse of [`code`](HealthState::code); `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<HealthState> {
        match code {
            0 => Some(HealthState::Healthy),
            1 => Some(HealthState::Degraded),
            2 => Some(HealthState::Quarantined),
            3 => Some(HealthState::Lost),
            _ => None,
        }
    }

    /// `true` when the device may still receive work.
    pub fn is_live(self) -> bool {
        matches!(self, HealthState::Healthy | HealthState::Degraded)
    }
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Monotone per-device health registry for a fleet of `len` devices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceHealth {
    states: Vec<HealthState>,
    faults: Vec<u64>,
    quarantine_after: u64,
}

impl DeviceHealth {
    /// A registry of `devices` healthy devices with the default
    /// quarantine threshold.
    ///
    /// # Panics
    ///
    /// Panics if `devices == 0` — a fleet of zero devices has no health
    /// to track.
    pub fn new(devices: usize) -> DeviceHealth {
        assert!(devices > 0, "need at least one device");
        DeviceHealth {
            states: vec![HealthState::Healthy; devices],
            faults: vec![0; devices],
            quarantine_after: DEFAULT_QUARANTINE_FAULTS,
        }
    }

    /// Overrides the transient-fault count at which a device is
    /// quarantined (`0` disables quarantining entirely).
    pub fn with_quarantine_after(mut self, faults: u64) -> DeviceHealth {
        self.quarantine_after = faults;
        self
    }

    /// Number of devices tracked.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Always `false`: the constructor requires at least one device.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Current ladder position of device `index`.
    pub fn state(&self, index: usize) -> HealthState {
        self.states[index]
    }

    /// Cumulative transient faults observed on device `index`.
    pub fn faults(&self, index: usize) -> u64 {
        self.faults[index]
    }

    /// Climbs the ladder monotonically: the more severe of the current
    /// and proposed state wins (derived `Ord` follows ladder order).
    fn escalate(&mut self, index: usize, to: HealthState) {
        if to > self.states[index] {
            self.states[index] = to;
        }
    }

    /// Records `count` transient faults striking device `index`: the
    /// device becomes at least Degraded, and Quarantined once its
    /// cumulative count reaches the threshold.
    pub fn observe_faults(&mut self, index: usize, count: u64) {
        if count == 0 {
            return;
        }
        self.faults[index] += count;
        self.escalate(index, HealthState::Degraded);
        if self.quarantine_after > 0 && self.faults[index] >= self.quarantine_after {
            self.escalate(index, HealthState::Quarantined);
        }
    }

    /// Records a throughput degradation on device `index` (slower, still
    /// schedulable).
    pub fn observe_degrade(&mut self, index: usize) {
        self.escalate(index, HealthState::Degraded);
    }

    /// Records permanent loss of device `index`.
    pub fn observe_loss(&mut self, index: usize) {
        self.escalate(index, HealthState::Lost);
    }

    /// Restores one device's journaled health (resume path). Monotone
    /// like every other observation: never downgrades the live state.
    pub fn restore(&mut self, index: usize, state: HealthState, faults: u64) {
        self.faults[index] = self.faults[index].max(faults);
        self.escalate(index, state);
    }

    /// Applies every plan event armed at or before `up_to_seconds`:
    /// losses mark devices Lost, degradations mark them Degraded.
    /// Transients are *not* applied here — they only count once a run
    /// actually absorbs them (the executor reports them through fault
    /// counters). Out-of-range devices and host crashes are ignored.
    pub fn apply_plan(&mut self, plan: &FaultPlan, up_to_seconds: f64) {
        for event in plan.events() {
            if event.at_seconds > up_to_seconds || event.device >= self.len() {
                continue;
            }
            match event.kind {
                FaultKind::Loss => self.observe_loss(event.device),
                FaultKind::Degrade { .. } => self.observe_degrade(event.device),
                FaultKind::Transient | FaultKind::HostCrash => {}
            }
        }
    }

    /// Indices of schedulable (Healthy or Degraded) devices, ascending.
    pub fn live(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&d| self.states[d].is_live())
            .collect()
    }

    /// Number of schedulable devices.
    pub fn live_count(&self) -> usize {
        self.states.iter().filter(|s| s.is_live()).count()
    }

    /// Number of permanently lost devices.
    pub fn lost_count(&self) -> usize {
        self.states
            .iter()
            .filter(|&&s| s == HealthState::Lost)
            .count()
    }

    /// `true` when no schedulable device remains — the condition under
    /// which a service must degrade to `SERVICE_UNAVAILABLE` rather than
    /// panic.
    pub fn none_live(&self) -> bool {
        self.live_count() == 0
    }

    /// Per-device `(state, cumulative faults)` snapshot in device order —
    /// the payload journal checkpoints persist.
    pub fn snapshot(&self) -> Vec<(HealthState, u64)> {
        self.states
            .iter()
            .copied()
            .zip(self.faults.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_strictly_monotone() {
        let mut h = DeviceHealth::new(2);
        assert_eq!(h.state(0), HealthState::Healthy);
        h.observe_degrade(0);
        assert_eq!(h.state(0), HealthState::Degraded);
        // A later "lesser" observation never demotes.
        h.observe_loss(0);
        h.observe_degrade(0);
        h.observe_faults(0, 1);
        assert_eq!(h.state(0), HealthState::Lost);
        assert_eq!(h.state(1), HealthState::Healthy);
    }

    #[test]
    fn faults_accumulate_into_quarantine() {
        let mut h = DeviceHealth::new(1).with_quarantine_after(3);
        h.observe_faults(0, 1);
        assert_eq!(h.state(0), HealthState::Degraded);
        h.observe_faults(0, 1);
        assert_eq!(h.state(0), HealthState::Degraded);
        h.observe_faults(0, 1);
        assert_eq!(h.state(0), HealthState::Quarantined);
        assert_eq!(h.faults(0), 3);
        // Quarantined devices are not live but not lost either.
        assert_eq!(h.live_count(), 0);
        assert_eq!(h.lost_count(), 0);
        assert!(h.none_live());
        // Zero-count observations are no-ops.
        let mut fresh = DeviceHealth::new(1);
        fresh.observe_faults(0, 0);
        assert_eq!(fresh.state(0), HealthState::Healthy);
        // Threshold 0 disables quarantine.
        let mut lax = DeviceHealth::new(1).with_quarantine_after(0);
        lax.observe_faults(0, 100);
        assert_eq!(lax.state(0), HealthState::Degraded);
    }

    #[test]
    fn live_set_shrinks_with_losses() {
        let mut h = DeviceHealth::new(3);
        assert_eq!(h.live(), vec![0, 1, 2]);
        h.observe_loss(1);
        assert_eq!(h.live(), vec![0, 2]);
        assert_eq!(h.live_count(), 2);
        assert_eq!(h.lost_count(), 1);
        assert!(!h.none_live());
        h.observe_loss(0);
        h.observe_loss(2);
        assert!(h.none_live());
        assert_eq!(h.live(), Vec::<usize>::new());
    }

    #[test]
    fn apply_plan_respects_the_time_horizon() {
        let plan = FaultPlan::new()
            .loss(1, 2.0)
            .degrade(0, 0.5, 0.5)
            .transient(2, 0.0)
            .host_crash(0.0);
        let mut h = DeviceHealth::new(3);
        h.apply_plan(&plan, 1.0);
        assert_eq!(h.state(0), HealthState::Degraded);
        assert_eq!(h.state(1), HealthState::Healthy); // loss arms later
        assert_eq!(h.state(2), HealthState::Healthy); // transients don't pre-mark
        h.apply_plan(&plan, 2.0);
        assert_eq!(h.state(1), HealthState::Lost);
        // Out-of-range devices are ignored.
        let mut small = DeviceHealth::new(1);
        small.apply_plan(&FaultPlan::new().loss(7, 0.0), 10.0);
        assert_eq!(small.live_count(), 1);
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut h = DeviceHealth::new(3);
        h.observe_faults(0, 2);
        h.observe_loss(2);
        let snap = h.snapshot();
        let mut back = DeviceHealth::new(3);
        for (d, (state, faults)) in snap.iter().enumerate() {
            back.restore(d, *state, *faults);
        }
        assert_eq!(back, h);
        // Restore is monotone too: a stale snapshot cannot demote.
        back.observe_loss(0);
        back.restore(0, HealthState::Degraded, 0);
        assert_eq!(back.state(0), HealthState::Lost);
        assert_eq!(back.faults(0), 2);
    }

    #[test]
    fn state_codes_round_trip() {
        for s in [
            HealthState::Healthy,
            HealthState::Degraded,
            HealthState::Quarantined,
            HealthState::Lost,
        ] {
            assert_eq!(HealthState::from_code(s.code()), Some(s));
            assert!(!s.as_str().is_empty());
        }
        assert_eq!(HealthState::from_code(9), None);
        assert!(HealthState::Healthy.is_live());
        assert!(HealthState::Degraded.is_live());
        assert!(!HealthState::Quarantined.is_live());
        assert!(!HealthState::Lost.is_live());
    }

    /// Hand-rolled property test (the workspace is offline, so proptest
    /// is feature-stubbed): under random observation sequences the
    /// ladder only ever climbs, fault counts only grow, and the live set
    /// only shrinks.
    #[test]
    fn randomized_observations_never_recover() {
        for seed in 0..200u64 {
            let mut state = seed ^ 0x5EED_0FDE_01CE;
            let mut next = move || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let devices = 1 + (next() % 4) as usize;
            let mut h = DeviceHealth::new(devices).with_quarantine_after(1 + next() % 5);
            for _ in 0..32 {
                let d = (next() % devices as u64) as usize;
                let before = h.state(d);
                let faults_before = h.faults(d);
                let live_before = h.live_count();
                match next() % 4 {
                    0 => h.observe_faults(d, next() % 3),
                    1 => h.observe_degrade(d),
                    2 => h.observe_loss(d),
                    _ => {
                        let s = HealthState::from_code((next() % 4) as u8)
                            .expect("codes 0..4 are valid");
                        h.restore(d, s, next() % 4);
                    }
                }
                assert!(h.state(d) >= before, "seed {seed}: ladder went down");
                assert!(h.faults(d) >= faults_before, "seed {seed}: faults shrank");
                assert!(h.live_count() <= live_before, "seed {seed}: fleet grew");
                assert_eq!(h.live().len(), h.live_count());
                assert!(h.live().iter().all(|&x| h.state(x).is_live()));
            }
        }
    }
}
