//! Heterogeneous platform simulator — the OpenCL substitution.
//!
//! The paper runs REPUTE through OpenCL 1.2 on three kinds of devices:
//! an Intel CPU, two Nvidia GTX 590 GPUs, and the ARM big.LITTLE clusters
//! of a HiKey970 SoC. This reproduction has none of that hardware, so this
//! crate simulates the *platform*, while the mapping algorithms above it
//! run for real:
//!
//! * kernels execute every work-item on real host threads and **count the
//!   algorithmic work they perform** (FM-Index extensions, DP cells,
//!   bit-vector word updates — and, when the mapper enables it,
//!   pre-alignment filter word operations, which share the Myers
//!   word-update currency so filter cost and saved verification cost
//!   subtract meaningfully on a device timeline; see
//!   `tests/prefilter_calibration.rs` for the calibration check);
//! * [`DeviceProfile`]s convert work counts into simulated seconds via a
//!   per-device throughput, and into joules via a per-device active power;
//! * [`Platform::launch`] reproduces OpenCL's task-parallel multi-device
//!   semantics: kernels launch simultaneously and the run completes when
//!   the slowest device finishes ("making one of the devices the
//!   performance bottleneck", §IV);
//! * [`Buffer`] enforces the OpenCL 1.2 restrictions the paper calls out
//!   in §III: no dynamic allocation (fixed output slots) and no single
//!   allocation above ¼ of device RAM.
//!
//! # Example
//!
//! ```
//! use repute_hetsim::{profiles, FnKernel, Platform};
//!
//! let platform = profiles::system1();
//! // A kernel whose items each cost 1000 work units.
//! let kernel = FnKernel::new(|i: usize| (i * 2, 1000));
//! let run = platform.launch(&platform.even_shares(100), &kernel).expect("shares valid");
//! assert_eq!(run.outputs.len(), 100);
//! assert!(run.simulated_seconds > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod device;
mod fault;
mod health;
mod kernel;
mod platform;
mod power;
pub mod profiles;
mod queue;

pub use buffer::{AllocError, Buffer};
pub use device::{DeviceKind, DeviceProfile};
pub use fault::{
    DeviceFaultState, FaultCounters, FaultEvent, FaultKind, FaultPlan, FaultPlanParseError,
    FaultState,
};
pub use health::{DeviceHealth, HealthState, DEFAULT_QUARANTINE_FAULTS};
pub use kernel::{run_kernel, FnKernel, Kernel, KernelRun};
pub use platform::{
    apportion, DeviceRun, LaunchError, LaunchErrorKind, Platform, PlatformRun, Share,
};
pub use power::EnergyReport;
pub use queue::{CommandQueue, Event, BACKOFF_BASE_SECONDS};
