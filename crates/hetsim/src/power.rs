//! Power and energy measurement (§III-D of the paper).
//!
//! The paper measures "the average power consumption during the mapping
//! process and subtract[s] it with the idle power", then multiplies by the
//! mapping time to obtain energy: `E = (P − P_idle) × T`. The simulator
//! reproduces the same arithmetic from the device side: during a run of
//! duration `T` (the bottleneck device's time), device `d` is busy for its
//! own simulated time `t_d` drawing its active power `P_d`, so the
//! above-idle energy is `E = Σ_d P_d × t_d` and the meter would read
//! `P = P_idle + E / T` on average. Substituting one into the other gives
//! back the paper's formula exactly — `(P − P_idle) × T = E` — an identity
//! the tests assert.

use crate::platform::{Platform, PlatformRun};

/// A §III-D style power/energy measurement of one mapping run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Mapping time in seconds (simulated completion time).
    pub mapping_seconds: f64,
    /// Average total power at the wall during mapping, in watts
    /// (idle + busy devices), the paper's `P(W)` column:
    /// `P = P_idle + Σ_d P_d × t_d / T`.
    pub average_power_w: f64,
    /// Energy above idle over the mapping, in joules — the paper's `E(J)`
    /// column. Computed as busy-device energy `Σ_d P_d × t_d`, which by
    /// construction equals `(average_power_w − P_idle) × mapping_seconds`.
    pub energy_j: f64,
}

impl EnergyReport {
    /// Measures a finished run on its platform.
    pub fn measure<O>(platform: &Platform, run: &PlatformRun<O>) -> EnergyReport {
        let t = run.simulated_seconds;
        if t <= 0.0 {
            return EnergyReport {
                mapping_seconds: 0.0,
                average_power_w: platform.idle_power_w(),
                energy_j: 0.0,
            };
        }
        // Busy-time-weighted active power.
        let active_energy: f64 = run
            .device_runs
            .iter()
            .map(|r| platform.devices()[r.device].active_power_w() * r.simulated_seconds)
            .sum();
        let average_power_w = platform.idle_power_w() + active_energy / t;
        EnergyReport {
            mapping_seconds: t,
            average_power_w,
            energy_j: active_energy,
        }
    }
}

#[cfg(test)]
mod tests {

    use crate::kernel::FnKernel;
    use crate::platform::Share;
    use crate::profiles;

    #[test]
    fn cpu_only_power_matches_table_iv_row() {
        let platform = profiles::system1();
        let kernel = FnKernel::new(|_| ((), 1_000_000));
        let run = platform
            .launch(&platform.single_device_share(0, 100), &kernel)
            .unwrap();
        let report = platform.measure_energy(&run);
        // CPU fully busy for the whole run: P = 160 + 194 = 354 W.
        assert!((report.average_power_w - 354.0).abs() < 1e-6);
        assert!(
            (report.energy_j - 194.0 * report.mapping_seconds).abs() < 1e-9,
            "E = (P - idle) × T"
        );
    }

    #[test]
    fn heterogeneous_run_draws_more_power_but_can_use_less_energy() {
        let platform = profiles::system1();
        let kernel = FnKernel::new(|_| ((), 1_000_000));
        let cpu_only = platform
            .launch(&platform.single_device_share(0, 200), &kernel)
            .unwrap();
        let shares = vec![
            Share {
                device: 0,
                items: 100,
            },
            Share {
                device: 1,
                items: 50,
            },
            Share {
                device: 2,
                items: 50,
            },
        ];
        let all = platform.launch(&shares, &kernel).unwrap();
        let e_cpu = platform.measure_energy(&cpu_only);
        let e_all = platform.measure_energy(&all);
        // The §IV observation: REPUTE-all "uses more power but less
        // energy and is faster".
        assert!(e_all.average_power_w > e_cpu.average_power_w);
        assert!(e_all.mapping_seconds < e_cpu.mapping_seconds);
    }

    #[test]
    fn embedded_platform_is_far_more_energy_efficient() {
        let workstation = profiles::system1_cpu_only();
        let hikey = profiles::system2_hikey970();
        let kernel = FnKernel::new(|_| ((), 10_000_000));
        let w_run = workstation
            .launch(&workstation.single_device_share(0, 100), &kernel)
            .unwrap();
        let h_run = hikey.launch(&hikey.even_shares(100), &kernel).unwrap();
        let w = workstation.measure_energy(&w_run);
        let h = hikey.measure_energy(&h_run);
        // The paper's headline: an order of magnitude or more energy
        // saving on the embedded SoC despite longer mapping time.
        assert!(h.mapping_seconds > w.mapping_seconds);
        assert!(
            w.energy_j / h.energy_j > 10.0,
            "ratio {}",
            w.energy_j / h.energy_j
        );
    }

    #[test]
    fn energy_identity_holds_on_heterogeneous_runs() {
        // §III-D identity: E(J) == (P(W) − P_idle) × T(s), for any
        // distribution, including ones that leave devices partly idle.
        for (platform, shares) in [
            (
                profiles::system1(),
                vec![
                    Share {
                        device: 0,
                        items: 37,
                    },
                    Share {
                        device: 1,
                        items: 11,
                    },
                    Share {
                        device: 2,
                        items: 52,
                    },
                ],
            ),
            (
                profiles::system2_hikey970(),
                vec![
                    Share {
                        device: 0,
                        items: 80,
                    },
                    Share {
                        device: 1,
                        items: 20,
                    },
                ],
            ),
        ] {
            let kernel = FnKernel::new(|i: usize| ((), 1_000_000 + 10_000 * i as u64));
            let run = platform.launch(&shares, &kernel).unwrap();
            let report = platform.measure_energy(&run);
            let from_power =
                (report.average_power_w - platform.idle_power_w()) * report.mapping_seconds;
            assert!(
                (report.energy_j - from_power).abs() <= 1e-9 * report.energy_j.max(1.0),
                "{}: energy_j {} != (P - P_idle) x T {}",
                platform.name(),
                report.energy_j,
                from_power
            );
        }
    }

    #[test]
    fn empty_run_reports_idle() {
        let platform = profiles::system2_hikey970();
        let kernel = FnKernel::new(|_| ((), 0));
        let run = platform.launch(&platform.even_shares(0), &kernel).unwrap();
        let report = platform.measure_energy(&run);
        assert_eq!(report.energy_j, 0.0);
        assert_eq!(report.average_power_w, 3.5);
    }
}
