//! Kernels and the per-device scheduler.
//!
//! A [`Kernel`] is the OpenCL analogue: a function applied to every
//! work-item index. Items execute for real on host threads (one per
//! compute unit, clamped to the host's parallelism) and report the
//! algorithmic work they performed; the device's throughput converts the
//! accumulated work into simulated device seconds.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use crate::device::DeviceProfile;

/// Work-items claimed per scheduling step.
const CHUNK: usize = 16;

/// A data-parallel kernel over work-item indices `0..items`.
///
/// Implementations must be `Sync`: items run concurrently.
pub trait Kernel: Sync {
    /// Per-item output type.
    type Output: Send;

    /// Executes one work-item, returning its output and the work units it
    /// consumed (substrate operations — see
    /// [`DeviceProfile`](crate::DeviceProfile) for the unit definition).
    fn run_item(&self, index: usize) -> (Self::Output, u64);

    /// Private-memory bytes one work-item of this kernel occupies on the
    /// device (drives the occupancy model of
    /// [`DeviceProfile::occupancy`](crate::DeviceProfile::occupancy)).
    /// Zero (the default) means occupancy-insensitive.
    fn private_bytes(&self) -> usize {
        0
    }
}

/// Adapts a closure into a [`Kernel`].
///
/// # Example
///
/// ```
/// use repute_hetsim::{profiles, FnKernel, Kernel};
///
/// let kernel = FnKernel::new(|i: usize| (i + 1, 10));
/// assert_eq!(kernel.run_item(4), (5, 10));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FnKernel<F> {
    f: F,
    private_bytes: usize,
}

impl<F, O> FnKernel<F>
where
    F: Fn(usize) -> (O, u64) + Sync,
    O: Send,
{
    /// Wraps a closure returning `(output, work_units)` per item.
    pub fn new(f: F) -> FnKernel<F> {
        FnKernel {
            f,
            private_bytes: 0,
        }
    }

    /// Declares the per-item private-memory footprint for the occupancy
    /// model.
    pub fn with_private_bytes(mut self, bytes: usize) -> FnKernel<F> {
        self.private_bytes = bytes;
        self
    }
}

impl<F, O> Kernel for FnKernel<F>
where
    F: Fn(usize) -> (O, u64) + Sync,
    O: Send,
{
    type Output = O;

    fn run_item(&self, index: usize) -> (O, u64) {
        (self.f)(index)
    }

    fn private_bytes(&self) -> usize {
        self.private_bytes
    }
}

/// Outcome of running a kernel on one device.
#[derive(Debug, Clone)]
pub struct KernelRun<O> {
    /// Per-item outputs, in item order.
    pub outputs: Vec<O>,
    /// Total work units consumed.
    pub work: u64,
    /// Simulated seconds on the device (`work / throughput`).
    pub simulated_seconds: f64,
    /// Wall-clock seconds the host actually spent.
    pub wall_seconds: f64,
}

/// Runs `kernel` over `items` work-items on `device`.
///
/// Execution is real (host threads, one per device compute unit, capped by
/// host parallelism); time and energy are simulated from the work counts.
pub fn run_kernel<K: Kernel>(
    device: &DeviceProfile,
    items: usize,
    kernel: &K,
) -> KernelRun<K::Output> {
    let start = Instant::now();
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = device.compute_units().min(host_threads).min(items.max(1));

    let mut slots: Vec<Option<K::Output>> = Vec::with_capacity(items);
    slots.resize_with(items, || None);
    let mut work = 0u64;

    if threads <= 1 {
        for (index, slot) in slots.iter_mut().enumerate() {
            let (out, w) = kernel.run_item(index);
            *slot = Some(out);
            work += w;
        }
    } else {
        let counter = AtomicUsize::new(0);
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let counter = &counter;
                    scope.spawn(move || {
                        let mut local: Vec<(usize, K::Output)> = Vec::new();
                        let mut local_work = 0u64;
                        loop {
                            let lo = counter.fetch_add(CHUNK, Ordering::Relaxed);
                            if lo >= items {
                                break;
                            }
                            for index in lo..(lo + CHUNK).min(items) {
                                let (out, w) = kernel.run_item(index);
                                local.push((index, out));
                                local_work += w;
                            }
                        }
                        (local, local_work)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("kernel worker panicked"))
                .collect::<Vec<_>>()
        });
        for (local, local_work) in results {
            work += local_work;
            for (index, out) in local {
                slots[index] = Some(out);
            }
        }
    }

    let outputs = slots
        .into_iter()
        .map(|s| s.expect("every work-item produces an output"))
        .collect();
    KernelRun {
        outputs,
        work,
        simulated_seconds: device.seconds_for_with_footprint(work, kernel.private_bytes()),
        wall_seconds: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceKind;
    use crate::profiles;

    fn device(units: usize) -> DeviceProfile {
        DeviceProfile::new("t", DeviceKind::Cpu, units, 1e6, 1 << 30, 1.0)
    }

    #[test]
    fn outputs_preserve_item_order() {
        let kernel = FnKernel::new(|i: usize| (i * 3, 1));
        for units in [1usize, 4] {
            let run = run_kernel(&device(units), 100, &kernel);
            let expected: Vec<usize> = (0..100).map(|i| i * 3).collect();
            assert_eq!(run.outputs, expected, "units {units}");
            assert_eq!(run.work, 100);
        }
    }

    #[test]
    fn simulated_time_tracks_work_not_wall_time() {
        let kernel = FnKernel::new(|_| ((), 500));
        let run = run_kernel(&device(4), 2000, &kernel);
        // 2000 items × 500 units / 1e6 units-per-second = 1 second.
        assert!((run.simulated_seconds - 1.0).abs() < 1e-9);
        assert!(run.wall_seconds < 1.0, "host must not actually sleep");
    }

    #[test]
    fn zero_items() {
        let kernel = FnKernel::new(|i: usize| (i, 1));
        let run = run_kernel(&device(4), 0, &kernel);
        assert!(run.outputs.is_empty());
        assert_eq!(run.work, 0);
        assert_eq!(run.simulated_seconds, 0.0);
    }

    #[test]
    fn gpu_profile_clamps_to_host_threads() {
        // 512 compute units must not spawn 512 threads.
        let kernel = FnKernel::new(|i: usize| (i, 1));
        let run = run_kernel(&profiles::gtx590(), 1000, &kernel);
        assert_eq!(run.outputs.len(), 1000);
    }

    #[test]
    fn uneven_work_is_summed() {
        let kernel = FnKernel::new(|i: usize| (i, (i % 7) as u64));
        let run = run_kernel(&device(3), 50, &kernel);
        let expected: u64 = (0..50u64).map(|i| i % 7).sum();
        assert_eq!(run.work, expected);
    }
}
