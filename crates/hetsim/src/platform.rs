//! Platforms and task-parallel multi-device launches.
//!
//! "REPUTE distributes the workload on CPU and GPU, as per user
//! specification, executing the work-items in task-parallel fashion using
//! [the] OpenCL framework" (§III-B), and "launches the kernels
//! simultaneously and upon completion it combines the results, thus,
//! making one of the devices the performance bottleneck" (§IV).
//! [`Platform::launch`] reproduces exactly that: a contiguous slice of the
//! work-items per device, simulated completion at the *maximum* of the
//! per-device simulated times.

use std::error::Error;
use std::fmt;

use crate::device::DeviceProfile;
use crate::kernel::{run_kernel, Kernel};
use crate::power::EnergyReport;

/// Splits `items` into `weights.len()` integer parts proportional to the
/// weights, using largest-remainder apportionment: every part receives the
/// floor of its exact quota, and the leftover units go to the parts with
/// the largest fractional remainders (ties broken by lower index). The
/// parts always sum to `items` — no device silently swallows or loses the
/// rounding remainder — and an all-zero weight vector falls back to equal
/// weights.
///
/// # Panics
///
/// Panics if `weights` is empty or contains a negative or non-finite
/// weight.
pub fn apportion(items: usize, weights: &[f64]) -> Vec<usize> {
    assert!(!weights.is_empty(), "apportion needs at least one weight");
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "apportion weights must be finite and non-negative"
    );
    let equal = vec![1.0; weights.len()];
    let weights = if weights.iter().sum::<f64>() > 0.0 {
        weights
    } else {
        &equal[..]
    };
    let total: f64 = weights.iter().sum();
    let quotas: Vec<f64> = weights.iter().map(|w| items as f64 * w / total).collect();
    let mut parts: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
    let assigned: usize = parts.iter().sum();
    let mut order: Vec<usize> = (0..parts.len()).collect();
    order.sort_by(|&a, &b| {
        let frac = |i: usize| quotas[i] - quotas[i].floor();
        frac(b)
            .partial_cmp(&frac(a))
            .expect("quotas are finite")
            .then(a.cmp(&b))
    });
    for &idx in order.iter().take(items.saturating_sub(assigned)) {
        parts[idx] += 1;
    }
    assert_eq!(
        parts.iter().sum::<usize>(),
        items,
        "apportionment must cover every item exactly once"
    );
    parts
}

/// How many work-items one device receives in a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Share {
    /// Index into [`Platform::devices`].
    pub device: usize,
    /// Number of consecutive work-items assigned.
    pub items: usize,
}

/// Classifies a [`LaunchError`] so callers can react (retry a transient
/// fault, fail a batch over after a device loss, surface a partial
/// failure) instead of string-matching messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchErrorKind {
    /// The launch distribution itself was malformed (empty shares, device
    /// index out of range, coverage mismatch).
    InvalidDistribution,
    /// A transient fault failed this launch at enqueue; retrying the same
    /// launch may succeed.
    TransientFault {
        /// Index of the device that rejected the launch.
        device: usize,
    },
    /// The device is permanently lost; no future launch on it can
    /// succeed.
    DeviceLost {
        /// Index of the lost device.
        device: usize,
    },
    /// Every device died before the run completed.
    AllDevicesLost {
        /// Half-open global read range `[lo, hi)` left unmapped.
        unmapped: (usize, usize),
    },
}

/// Error returned by kernel launches: malformed distributions, and (under
/// an armed fault plan) injected transient failures, device loss, and
/// whole-platform loss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchError {
    kind: LaunchErrorKind,
    message: String,
}

impl LaunchError {
    /// Creates an [`LaunchErrorKind::InvalidDistribution`] error with a
    /// caller-supplied message (used by higher-level launchers such as
    /// `repute-core`'s multi-device runner).
    pub fn from_message(message: impl Into<String>) -> LaunchError {
        LaunchError {
            kind: LaunchErrorKind::InvalidDistribution,
            message: message.into(),
        }
    }

    /// A transient launch failure on `device`.
    pub fn transient(device: usize) -> LaunchError {
        LaunchError {
            kind: LaunchErrorKind::TransientFault { device },
            message: String::new(),
        }
    }

    /// A permanent loss of `device`.
    pub fn device_lost(device: usize) -> LaunchError {
        LaunchError {
            kind: LaunchErrorKind::DeviceLost { device },
            message: String::new(),
        }
    }

    /// The typed partial-failure error: every device died, leaving global
    /// reads `lo..hi` unmapped.
    pub fn all_devices_lost(lo: usize, hi: usize) -> LaunchError {
        LaunchError {
            kind: LaunchErrorKind::AllDevicesLost { unmapped: (lo, hi) },
            message: String::new(),
        }
    }

    /// What went wrong.
    pub fn kind(&self) -> &LaunchErrorKind {
        &self.kind
    }

    /// For [`LaunchErrorKind::AllDevicesLost`], the half-open read range
    /// that was never mapped.
    pub fn unmapped_range(&self) -> Option<std::ops::Range<usize>> {
        match self.kind {
            LaunchErrorKind::AllDevicesLost { unmapped: (lo, hi) } => Some(lo..hi),
            _ => None,
        }
    }
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            LaunchErrorKind::InvalidDistribution => {
                write!(f, "invalid launch distribution: {}", self.message)
            }
            LaunchErrorKind::TransientFault { device } => {
                write!(f, "transient launch failure on device {device}")
            }
            LaunchErrorKind::DeviceLost { device } => {
                write!(f, "device {device} permanently lost")
            }
            LaunchErrorKind::AllDevicesLost { unmapped: (lo, hi) } => {
                write!(f, "all devices lost: reads {lo}..{hi} were not mapped")
            }
        }
    }
}

impl Error for LaunchError {}

/// What one device did during a launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceRun {
    /// Index into [`Platform::devices`].
    pub device: usize,
    /// Work-items the device processed.
    pub items: usize,
    /// Work units the device consumed.
    pub work: u64,
    /// Simulated busy time of the device, in seconds.
    pub simulated_seconds: f64,
}

/// Outcome of a task-parallel launch.
#[derive(Debug, Clone)]
pub struct PlatformRun<O> {
    /// Per-item outputs in global item order.
    pub outputs: Vec<O>,
    /// Per-device accounting.
    pub device_runs: Vec<DeviceRun>,
    /// Simulated completion time: the slowest device (the barrier the
    /// paper describes).
    pub simulated_seconds: f64,
    /// Wall-clock seconds the host actually spent.
    pub wall_seconds: f64,
}

impl<O> PlatformRun<O> {
    /// Total work units across all devices.
    pub fn total_work(&self) -> u64 {
        self.device_runs.iter().map(|r| r.work).sum()
    }

    /// Per-device utilisation: busy time divided by the run's completion
    /// time, in `[0, 1]`. The bottleneck device reads 1.0; devices that
    /// idle at the task-parallel barrier read less — the quantity the
    /// paper's Fig. 3 sweep is implicitly balancing.
    pub fn device_utilization(&self) -> Vec<(usize, f64)> {
        if self.simulated_seconds <= 0.0 {
            return self.device_runs.iter().map(|r| (r.device, 0.0)).collect();
        }
        self.device_runs
            .iter()
            .map(|r| (r.device, r.simulated_seconds / self.simulated_seconds))
            .collect()
    }
}

/// A named collection of devices with a shared idle power — one of the
/// paper's two test systems.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    name: String,
    idle_power_w: f64,
    devices: Vec<DeviceProfile>,
}

impl Platform {
    /// Creates a platform.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is empty or `idle_power_w` is negative.
    pub fn new(
        name: impl Into<String>,
        idle_power_w: f64,
        devices: Vec<DeviceProfile>,
    ) -> Platform {
        assert!(!devices.is_empty(), "platform needs at least one device");
        assert!(idle_power_w >= 0.0, "idle power cannot be negative");
        Platform {
            name: name.into(),
            idle_power_w,
            devices,
        }
    }

    /// Platform name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// System idle power in watts.
    pub fn idle_power_w(&self) -> f64 {
        self.idle_power_w
    }

    /// The platform's devices.
    pub fn devices(&self) -> &[DeviceProfile] {
        &self.devices
    }

    /// A distribution that splits `items` across all devices
    /// proportionally to their throughput (a sensible default; Fig. 3 of
    /// the paper sweeps away from it). The rounding remainder is spread
    /// largest-fraction-first (see [`apportion`]), so small read sets
    /// still reach the fastest devices instead of piling up on device 0.
    pub fn even_shares(&self, items: usize) -> Vec<Share> {
        let weights: Vec<f64> = self.devices.iter().map(DeviceProfile::throughput).collect();
        apportion(items, &weights)
            .into_iter()
            .enumerate()
            .map(|(device, items)| Share { device, items })
            .collect()
    }

    /// Largest number of `item_bytes`-sized records that fits the
    /// quarter-RAM output cap of *every* device — the coalescing bound a
    /// long-lived service uses when it packs many small jobs into one
    /// scheduler batch (any larger batch would force the dynamic
    /// scheduler to split it again on the smallest device).
    pub fn max_batch_items(&self, item_bytes: usize) -> usize {
        self.devices
            .iter()
            .map(|d| crate::Buffer::max_items(d, item_bytes))
            .min()
            .unwrap_or(usize::MAX)
    }

    /// A distribution that puts every item on one device.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn single_device_share(&self, device: usize, items: usize) -> Vec<Share> {
        assert!(
            device < self.devices.len(),
            "device index {device} out of range"
        );
        vec![Share { device, items }]
    }

    /// Launches `kernel` task-parallel across the distribution `shares`.
    ///
    /// Each share receives a contiguous run of work-item indices, in share
    /// order. Outputs are recombined in global item order.
    ///
    /// # Errors
    ///
    /// Returns [`LaunchError`] if `shares` is empty or references a device
    /// out of range.
    pub fn launch<K: Kernel>(
        &self,
        shares: &[Share],
        kernel: &K,
    ) -> Result<PlatformRun<K::Output>, LaunchError> {
        if shares.is_empty() {
            return Err(LaunchError::from_message("no shares supplied"));
        }
        for share in shares {
            if share.device >= self.devices.len() {
                return Err(LaunchError::from_message(format!(
                    "device index {} out of range ({} devices)",
                    share.device,
                    self.devices.len()
                )));
            }
        }
        let start = std::time::Instant::now();
        let mut outputs = Vec::new();
        let mut device_runs = Vec::with_capacity(shares.len());
        let mut offset = 0usize;
        for share in shares {
            let device = &self.devices[share.device];
            let base = offset;
            // Shift the item index so the kernel sees global indices.
            let shifted = ShiftedKernel {
                inner: kernel,
                base,
            };
            let run = run_kernel(device, share.items, &shifted);
            outputs.extend(run.outputs);
            device_runs.push(DeviceRun {
                device: share.device,
                items: share.items,
                work: run.work,
                simulated_seconds: run.simulated_seconds,
            });
            offset += share.items;
        }
        let simulated_seconds = device_runs
            .iter()
            .map(|r| r.simulated_seconds)
            .fold(0.0f64, f64::max);
        Ok(PlatformRun {
            outputs,
            device_runs,
            simulated_seconds,
            wall_seconds: start.elapsed().as_secs_f64(),
        })
    }

    /// Measures power and energy for a finished run, per the paper's
    /// §III-D methodology.
    pub fn measure_energy<O>(&self, run: &PlatformRun<O>) -> EnergyReport {
        EnergyReport::measure(self, run)
    }
}

struct ShiftedKernel<'a, K> {
    inner: &'a K,
    base: usize,
}

impl<K: Kernel> Kernel for ShiftedKernel<'_, K> {
    type Output = K::Output;

    fn run_item(&self, index: usize) -> (K::Output, u64) {
        self.inner.run_item(self.base + index)
    }

    fn private_bytes(&self) -> usize {
        self.inner.private_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::FnKernel;
    use crate::profiles;

    #[test]
    fn outputs_recombine_in_global_order() {
        let platform = profiles::system1();
        let kernel = FnKernel::new(|i: usize| (i, 1));
        let shares = vec![
            Share {
                device: 0,
                items: 30,
            },
            Share {
                device: 1,
                items: 50,
            },
            Share {
                device: 2,
                items: 20,
            },
        ];
        let run = platform.launch(&shares, &kernel).unwrap();
        let expected: Vec<usize> = (0..100).collect();
        assert_eq!(run.outputs, expected);
        assert_eq!(run.device_runs.len(), 3);
        assert_eq!(run.total_work(), 100);
    }

    #[test]
    fn bottleneck_device_sets_completion_time() {
        let platform = profiles::system1();
        let kernel = FnKernel::new(|_| ((), 1_000_000));
        // All items on the slower GPU.
        let run = platform
            .launch(&platform.single_device_share(1, 100), &kernel)
            .unwrap();
        let gpu_time = run.device_runs[0].simulated_seconds;
        assert!((run.simulated_seconds - gpu_time).abs() < 1e-12);

        // Splitting with the CPU strictly improves completion time.
        let shares = vec![
            Share {
                device: 0,
                items: 70,
            },
            Share {
                device: 1,
                items: 30,
            },
        ];
        let split = platform.launch(&shares, &kernel).unwrap();
        assert!(split.simulated_seconds < run.simulated_seconds);
        assert_eq!(
            split.simulated_seconds,
            split
                .device_runs
                .iter()
                .map(|r| r.simulated_seconds)
                .fold(0.0, f64::max)
        );
    }

    #[test]
    fn utilization_identifies_the_bottleneck() {
        let platform = profiles::system1();
        let kernel = FnKernel::new(|_| ((), 1_000_000));
        let shares = vec![
            Share {
                device: 0,
                items: 50,
            },
            Share {
                device: 1,
                items: 50,
            },
        ];
        let run = platform.launch(&shares, &kernel).unwrap();
        let util = run.device_utilization();
        // Equal items: the slower GPU is the bottleneck at 1.0; the CPU
        // idles part of the time.
        let cpu = util.iter().find(|(d, _)| *d == 0).unwrap().1;
        let gpu = util.iter().find(|(d, _)| *d == 1).unwrap().1;
        assert!((gpu - 1.0).abs() < 1e-12);
        assert!(cpu < 1.0 && cpu > 0.0);

        // Zero-work run: utilisation reads zero.
        let idle = platform
            .launch(&platform.even_shares(0), &FnKernel::new(|_| ((), 0)))
            .unwrap();
        assert!(idle.device_utilization().iter().all(|&(_, u)| u == 0.0));
    }

    #[test]
    fn even_shares_cover_all_items() {
        let platform = profiles::system1();
        for items in [0usize, 1, 99, 1000] {
            let shares = platform.even_shares(items);
            assert_eq!(shares.iter().map(|s| s.items).sum::<usize>(), items);
            assert_eq!(shares.len(), 3);
        }
    }

    #[test]
    fn apportion_distributes_remainder_largest_fraction_first() {
        // Quotas 3.75 / 2.5 / 1.25 / 2.5: floors give 3/2/1/2, the two
        // leftover items go to the largest fractions (index 0, then the
        // index-1 tie-break between the two .5 fractions).
        assert_eq!(apportion(10, &[3.0, 2.0, 1.0, 2.0]), vec![4, 3, 1, 2]);
        // Exact division leaves no remainder to distribute.
        assert_eq!(apportion(8, &[1.0, 1.0]), vec![4, 4]);
    }

    #[test]
    fn apportion_edge_cases_sum_exactly() {
        // Zero items, fewer items than parts, single part, zero weights.
        assert_eq!(apportion(0, &[1.0, 2.0, 3.0]), vec![0, 0, 0]);
        assert_eq!(apportion(7, &[5.0]), vec![7]);
        assert_eq!(apportion(2, &[0.0, 0.0, 0.0]), vec![1, 1, 0]);
        for items in 0..20usize {
            let parts = apportion(items, &[0.3, 7.1, 0.0, 2.6]);
            assert_eq!(parts.iter().sum::<usize>(), items, "items {items}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn apportion_rejects_empty_weights() {
        let _ = apportion(3, &[]);
    }

    #[test]
    fn small_read_sets_reach_the_fast_devices() {
        // Two items on system 1 (CPU at 1.0e9, two GPUs at 0.55e9): the
        // old remainder rule handed both to device 0; largest-fraction
        // distribution gives one to the CPU and one to the first GPU.
        let platform = profiles::system1();
        let shares = platform.even_shares(2);
        assert_eq!(shares.iter().map(|s| s.items).sum::<usize>(), 2);
        assert!(
            shares[0].items < 2,
            "device 0 must not swallow the whole small read set"
        );
    }

    #[test]
    fn even_shares_on_single_device_platform() {
        let solo = Platform::new("solo", 1.0, vec![profiles::intel_i7_2600()]);
        for items in [0usize, 1, 13] {
            let shares = solo.even_shares(items);
            assert_eq!(shares.len(), 1);
            assert_eq!(shares[0].items, items);
        }
    }

    #[test]
    fn launch_errors() {
        let platform = profiles::system2_hikey970();
        let kernel = FnKernel::new(|i: usize| (i, 1));
        assert!(platform.launch(&[], &kernel).is_err());
        let bad = vec![Share {
            device: 9,
            items: 1,
        }];
        let err = platform.launch(&bad, &kernel).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_platform_rejected() {
        let _ = Platform::new("x", 0.0, vec![]);
    }
}
