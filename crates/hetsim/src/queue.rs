//! In-order command queues with profiling events.
//!
//! OpenCL hosts drive each device through a command queue and read
//! per-kernel timing from profiling events (`clGetEventProfilingInfo`
//! with `CL_PROFILING_COMMAND_QUEUED` / `_SUBMIT` / `_START` / `_END`).
//! This module models that: kernels enqueued on a [`CommandQueue`] run
//! back-to-back on the device's simulated timeline — the mechanism behind
//! REPUTE's "run the kernel multiple times with smaller read sets" when a
//! batch exceeds the quarter-RAM buffer cap (§III/§IV) — and every launch
//! leaves an [`Event`] carrying all four timestamps.
//!
//! The host-side model: the host enqueues commands back-to-back, each
//! costing [`CommandQueue::launch_overhead_seconds`] to queue and again to
//! submit to the device (both default to zero — an infinitely fast host —
//! so `queued == submitted == start` unless an overhead is configured);
//! execution then starts as soon as the device is free. The invariant
//! `queued ≤ submitted ≤ start ≤ end` always holds.

use crate::device::DeviceProfile;
use crate::fault::{DeviceFaultState, FaultCounters};
use crate::kernel::{run_kernel, Kernel};
use crate::platform::{LaunchError, LaunchErrorKind};
use repute_obs::trace::{device_pid, Span};

/// Base of the exponential simulated backoff between transient-fault
/// retries: attempt `n` (counted from zero) waits `BASE * 2^n` simulated
/// seconds before relaunching. Deterministic by construction — no
/// wall-clock sleeps.
pub const BACKOFF_BASE_SECONDS: f64 = 1e-3;

/// Profiling record of one enqueued kernel, mirroring the four OpenCL
/// event timestamps.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Caller-supplied label.
    pub label: String,
    /// Work-items the launch processed.
    pub items: usize,
    /// Work units the launch consumed.
    pub work: u64,
    /// Host time the command entered the queue
    /// (`CL_PROFILING_COMMAND_QUEUED`).
    pub queued_seconds: f64,
    /// Time the command was handed to the device
    /// (`CL_PROFILING_COMMAND_SUBMIT`).
    pub submitted_seconds: f64,
    /// Simulated queue time at which the kernel started
    /// (`CL_PROFILING_COMMAND_START`).
    pub start_seconds: f64,
    /// Simulated queue time at which the kernel finished
    /// (`CL_PROFILING_COMMAND_END`).
    pub end_seconds: f64,
}

impl Event {
    /// Simulated duration of the kernel.
    pub fn duration_seconds(&self) -> f64 {
        self.end_seconds - self.start_seconds
    }

    /// Time between enqueue and execution start (host overhead plus
    /// waiting for the device to drain earlier commands).
    pub fn queue_wait_seconds(&self) -> f64 {
        self.start_seconds - self.queued_seconds
    }
}

/// An in-order command queue bound to one device.
///
/// # Example
///
/// ```
/// use repute_hetsim::{profiles, CommandQueue, FnKernel};
///
/// let cpu = profiles::intel_i7_2600();
/// let mut queue = CommandQueue::new(&cpu);
/// let kernel = FnKernel::new(|i: usize| (i, 1_000_000));
/// let first = queue.enqueue("batch-1", 100, &kernel);
/// let second = queue.enqueue("batch-2", 50, &kernel);
/// assert_eq!(first.len(), 100);
/// assert_eq!(second.len(), 50);
/// // In-order semantics: batch-2 starts exactly when batch-1 ends.
/// let events = queue.events();
/// assert_eq!(events[1].start_seconds, events[0].end_seconds);
/// // OpenCL timestamp ordering holds for every event.
/// assert!(events[1].queued_seconds <= events[1].submitted_seconds);
/// assert!(events[1].submitted_seconds <= events[1].start_seconds);
/// ```
#[derive(Debug)]
pub struct CommandQueue<'d> {
    device: &'d DeviceProfile,
    events: Vec<Event>,
    clock_seconds: f64,
    host_clock_seconds: f64,
    launch_overhead_seconds: f64,
    device_index: usize,
    fault: Option<DeviceFaultState>,
    counters: FaultCounters,
    loss_counted: bool,
    trace: Option<Vec<Span>>,
}

impl<'d> CommandQueue<'d> {
    /// Creates an empty queue on `device`.
    pub fn new(device: &'d DeviceProfile) -> CommandQueue<'d> {
        CommandQueue {
            device,
            events: Vec::new(),
            clock_seconds: 0.0,
            host_clock_seconds: 0.0,
            launch_overhead_seconds: 0.0,
            device_index: 0,
            fault: None,
            counters: FaultCounters::default(),
            loss_counted: false,
            trace: None,
        }
    }

    /// Enables span tracing on this queue: every launch, transient
    /// fault, retry backoff, device loss, and migration leaves a
    /// [`Span`] retrievable via [`take_trace`]. A queue without tracing
    /// (the default) builds no spans at all — the hot path pays one
    /// `Option` check.
    ///
    /// [`take_trace`]: CommandQueue::take_trace
    pub fn with_tracing(mut self) -> CommandQueue<'d> {
        self.trace = Some(Vec::new());
        self
    }

    /// Sets the device index used for fault errors *and* trace process
    /// ids without arming a fault state (share queues under a static
    /// schedule have no faults but still need correct span pids).
    pub fn with_device_index(mut self, device_index: usize) -> CommandQueue<'d> {
        self.device_index = device_index;
        self
    }

    /// Drains the spans recorded so far (empty when tracing is off).
    pub fn take_trace(&mut self) -> Vec<Span> {
        match &mut self.trace {
            Some(spans) => std::mem::take(spans),
            None => Vec::new(),
        }
    }

    /// Arms a fault state on this queue: [`try_enqueue`] and
    /// [`enqueue_with_retries`] consult it at every launch.
    /// `device_index` identifies the device in the errors this queue
    /// raises (a bare queue defaults to index 0).
    ///
    /// [`try_enqueue`]: CommandQueue::try_enqueue
    /// [`enqueue_with_retries`]: CommandQueue::enqueue_with_retries
    pub fn with_fault_state(
        mut self,
        device_index: usize,
        state: DeviceFaultState,
    ) -> CommandQueue<'d> {
        self.device_index = device_index;
        self.fault = Some(state);
        self
    }

    /// Sets the simulated host cost of queueing one command (charged once
    /// between `queued` and `submitted`). Real OpenCL launches cost a few
    /// microseconds; the default of zero keeps the simple back-to-back
    /// timeline.
    pub fn with_launch_overhead(mut self, seconds: f64) -> CommandQueue<'d> {
        assert!(seconds >= 0.0, "launch overhead must be non-negative");
        self.launch_overhead_seconds = seconds;
        self
    }

    /// The configured per-launch host overhead.
    pub fn launch_overhead_seconds(&self) -> f64 {
        self.launch_overhead_seconds
    }

    /// The device this queue drives.
    pub fn device(&self) -> &DeviceProfile {
        self.device
    }

    /// Enqueues and executes a kernel over `items` work-items, returning
    /// its outputs. The kernel occupies the device from the later of the
    /// current queue clock and its submission time until its simulated
    /// completion.
    ///
    /// Infallible: on a queue with no armed fault state this never fails;
    /// with one armed it panics rather than silently succeed — use
    /// [`try_enqueue`](CommandQueue::try_enqueue) or
    /// [`enqueue_with_retries`](CommandQueue::enqueue_with_retries) on
    /// fault-armed queues.
    pub fn enqueue<K: Kernel>(
        &mut self,
        label: impl Into<String>,
        items: usize,
        kernel: &K,
    ) -> Vec<K::Output> {
        assert!(
            self.fault.is_none(),
            "enqueue on a fault-armed queue; use try_enqueue / enqueue_with_retries"
        );
        self.try_enqueue(label, items, kernel)
            .expect("launches cannot fail without an armed fault state")
    }

    /// Enqueues and executes a kernel, consulting the armed fault state
    /// (if any) at the launch's would-be start time.
    ///
    /// Fail-stop is modelled at launch granularity: a permanent loss
    /// rejects every launch *starting* at or after the loss time (kernels
    /// already running complete); an armed transient fault consumes
    /// itself and fails this one launch (the host still pays the launch
    /// overhead); armed degradations stretch the kernel's simulated
    /// duration by the composed throughput factor.
    ///
    /// # Errors
    ///
    /// [`LaunchErrorKind::DeviceLost`] or
    /// [`LaunchErrorKind::TransientFault`] when the fault state says so.
    pub fn try_enqueue<K: Kernel>(
        &mut self,
        label: impl Into<String>,
        items: usize,
        kernel: &K,
    ) -> Result<Vec<K::Output>, LaunchError> {
        let queued_seconds = self.host_clock_seconds;
        let submitted_seconds = queued_seconds + self.launch_overhead_seconds;
        let start_seconds = submitted_seconds.max(self.clock_seconds);
        let pid = device_pid(self.device_index);
        if let Some(fault) = &mut self.fault {
            if fault.is_lost(start_seconds) {
                if let Some(trace) = &mut self.trace {
                    trace.push(
                        Span::instant(label.into(), "fault", pid, start_seconds)
                            .arg_str("kind", "device-lost"),
                    );
                }
                return Err(self.loss_error());
            }
            if fault.take_transient(start_seconds) {
                // The failed submission still costs host time.
                self.host_clock_seconds = submitted_seconds;
                self.counters.faults += 1;
                if let Some(trace) = &mut self.trace {
                    trace.push(
                        Span::instant(label.into(), "fault", pid, start_seconds)
                            .arg_str("kind", "transient"),
                    );
                }
                return Err(LaunchError::transient(self.device_index));
            }
        }
        let run = run_kernel(self.device, items, kernel);
        let factor = self
            .fault
            .as_ref()
            .map_or(1.0, |f| f.throughput_factor(start_seconds));
        self.host_clock_seconds = submitted_seconds;
        let end_seconds = start_seconds + run.simulated_seconds / factor;
        let label = label.into();
        if let Some(trace) = &mut self.trace {
            trace.push(
                Span::new(label.clone(), "kernel", pid, start_seconds, end_seconds)
                    .arg_u64("items", items as u64)
                    .arg_u64("work", run.work),
            );
        }
        self.events.push(Event {
            label,
            items,
            work: run.work,
            queued_seconds,
            submitted_seconds,
            start_seconds,
            end_seconds,
        });
        self.clock_seconds = end_seconds;
        Ok(run.outputs)
    }

    /// Enqueues with bounded retry-on-transient: each transient failure
    /// waits an exponential simulated backoff
    /// ([`BACKOFF_BASE_SECONDS`]` * 2^attempt`) and relaunches, up to
    /// `max_retries` retries. A device whose transients outlast the
    /// budget is escalated to a permanent loss (killed at the current
    /// queue time) so callers observe a single consistent failure mode.
    ///
    /// # Errors
    ///
    /// [`LaunchErrorKind::DeviceLost`] when the device is (or becomes)
    /// permanently lost.
    pub fn enqueue_with_retries<K: Kernel>(
        &mut self,
        label: &str,
        items: usize,
        kernel: &K,
        max_retries: usize,
    ) -> Result<Vec<K::Output>, LaunchError> {
        let mut attempt = 0usize;
        loop {
            match self.try_enqueue(label, items, kernel) {
                Ok(outputs) => {
                    if attempt > 0 {
                        self.annotate_last(&format!("retry x{attempt}"));
                    }
                    return Ok(outputs);
                }
                Err(err) => match err.kind() {
                    LaunchErrorKind::TransientFault { .. } if attempt < max_retries => {
                        self.counters.retries += 1;
                        let backoff = BACKOFF_BASE_SECONDS * (1u64 << attempt) as f64;
                        let begin = self.host_clock_seconds;
                        self.wait(backoff);
                        if let Some(trace) = &mut self.trace {
                            trace.push(
                                Span::new(
                                    label.to_string(),
                                    "retry",
                                    device_pid(self.device_index),
                                    begin,
                                    begin + backoff,
                                )
                                .arg_u64("attempt", attempt as u64 + 1),
                            );
                        }
                        attempt += 1;
                    }
                    LaunchErrorKind::TransientFault { .. } => {
                        // Retry budget exhausted: escalate to a loss.
                        let now = self.host_clock_seconds.max(self.clock_seconds);
                        if let Some(fault) = &mut self.fault {
                            fault.kill(now);
                        }
                        return Err(self.loss_error());
                    }
                    _ => return Err(err),
                },
            }
        }
    }

    /// Advances the host clock by `seconds` of simulated waiting (the
    /// backoff primitive; also usable to model host-side stalls).
    pub fn wait(&mut self, seconds: f64) {
        assert!(
            seconds >= 0.0 && seconds.is_finite(),
            "wait must be finite non-negative seconds"
        );
        self.host_clock_seconds += seconds;
    }

    /// Appends ` [note]` to the label of the most recent event —
    /// fault-annotated timeline entries ("retry x2", "migrated from d1")
    /// without widening the event schema. No-op on an empty queue.
    pub fn annotate_last(&mut self, note: &str) {
        if let Some(event) = self.events.last_mut() {
            event.label.push_str(" [");
            event.label.push_str(note);
            event.label.push(']');
            // Keep the kernel span's name in sync — the span for the
            // last event is always the most recent one pushed.
            if let Some(span) = self.trace.as_mut().and_then(|t| t.last_mut()) {
                if span.cat == "kernel" {
                    span.name.clone_from(&event.label);
                }
            }
        }
    }

    /// Records that this queue absorbed one batch from a dead device.
    pub fn note_migration(&mut self) {
        self.counters.migrated_batches += 1;
        if let Some(event) = self.events.last() {
            let name = event.label.clone();
            let at = event.start_seconds;
            if let Some(trace) = &mut self.trace {
                trace.push(Span::instant(
                    name,
                    "migration",
                    device_pid(self.device_index),
                    at,
                ));
            }
        }
    }

    /// Fault accounting of this queue so far.
    pub fn fault_counters(&self) -> FaultCounters {
        self.counters
    }

    /// The device index reported in this queue's fault errors.
    pub fn device_index(&self) -> usize {
        self.device_index
    }

    /// `true` when the armed fault state says the device is dead at this
    /// queue's current time (a queue without fault state is never lost).
    pub fn is_lost_now(&self) -> bool {
        let now = self.host_clock_seconds.max(self.clock_seconds);
        self.fault.as_ref().is_some_and(|f| f.is_lost(now))
    }

    /// Builds a device-lost error, counting the loss as a fault exactly
    /// once per queue.
    fn loss_error(&mut self) -> LaunchError {
        if !self.loss_counted {
            self.loss_counted = true;
            self.counters.faults += 1;
        }
        LaunchError::device_lost(self.device_index)
    }

    /// Profiling events of every launch so far, in queue order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consumes the queue, returning its events.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }

    /// The queue's simulated completion time (`clFinish` analogue).
    pub fn finish_seconds(&self) -> f64 {
        self.clock_seconds
    }

    /// The earliest simulated time the next launch could start: the later
    /// of the host clock (plus launch overhead) and the device clock.
    /// This is the earliest-free key of the dynamic scheduler — it
    /// accounts for backoff waits, which advance the host clock only.
    pub fn next_start_seconds(&self) -> f64 {
        (self.host_clock_seconds + self.launch_overhead_seconds).max(self.clock_seconds)
    }

    /// Total work enqueued so far.
    pub fn total_work(&self) -> u64 {
        self.events.iter().map(|e| e.work).sum()
    }

    /// Seconds the device spent executing kernels (excludes idle gaps
    /// while waiting for submissions).
    pub fn busy_seconds(&self) -> f64 {
        // + 0.0 normalizes the empty sum's -0.0 (std's f64 Sum folds
        // from the additive identity -0.0): a lost device that never
        // launched should report plain 0.0.
        self.events.iter().map(Event::duration_seconds).sum::<f64>() + 0.0
    }

    /// Busy fraction of the device up to `finish_seconds()`; 1.0 for an
    /// empty queue's degenerate case is avoided by returning 0.0.
    pub fn utilization(&self) -> f64 {
        if self.clock_seconds <= 0.0 {
            0.0
        } else {
            self.busy_seconds() / self.clock_seconds
        }
    }

    /// Renders a one-line-per-event timeline (a text Gantt chart), useful
    /// in examples and debugging output.
    ///
    /// Every bar is exactly `width` cells: a zero-duration run (legal
    /// since zero-reads + zero-shares became a valid empty run) renders
    /// empty bars instead of dividing by zero, and an event ending
    /// exactly at the run's total time fills the bar without overflowing
    /// it.
    pub fn timeline(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let width = 40usize;
        let total = self.clock_seconds;
        for event in &self.events {
            let (from, to) = if total <= 0.0 {
                // Zero-duration run: any division by `total` would yield
                // NaN coordinates; render an empty bar instead.
                (0, 0)
            } else {
                let from = ((event.start_seconds / total * width as f64) as usize).min(width);
                let to = ((event.end_seconds / total * width as f64) as usize)
                    .max(from + 1)
                    .min(width);
                (from.min(to), to)
            };
            let _ = writeln!(
                out,
                "{:<12} [{}{}{}] {:.4}s–{:.4}s",
                event.label,
                " ".repeat(from),
                "#".repeat(to - from),
                " ".repeat(width - to),
                event.start_seconds,
                event.end_seconds
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::FnKernel;
    use crate::profiles;

    #[test]
    fn launches_run_back_to_back() {
        let cpu = profiles::intel_i7_2600();
        let mut queue = CommandQueue::new(&cpu);
        let kernel = FnKernel::new(|_| ((), 1_000_000u64));
        queue.enqueue("a", 10, &kernel);
        queue.enqueue("b", 20, &kernel);
        queue.enqueue("c", 5, &kernel);
        let events = queue.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].start_seconds, 0.0);
        for pair in events.windows(2) {
            assert_eq!(pair[1].start_seconds, pair[0].end_seconds);
        }
        let total: f64 = events.iter().map(Event::duration_seconds).sum();
        assert!((queue.finish_seconds() - total).abs() < 1e-12);
        assert_eq!(queue.total_work(), 35_000_000);
        // With no host overhead the device never idles.
        assert!((queue.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn event_timestamps_are_ordered() {
        let cpu = profiles::intel_i7_2600();
        let mut queue = CommandQueue::new(&cpu);
        let kernel = FnKernel::new(|_| ((), 1_000_000u64));
        queue.enqueue("a", 10, &kernel);
        queue.enqueue("b", 10, &kernel);
        for event in queue.events() {
            assert!(event.queued_seconds <= event.submitted_seconds);
            assert!(event.submitted_seconds <= event.start_seconds);
            assert!(event.start_seconds <= event.end_seconds);
        }
        // Second command was queued while the first still ran: it waits.
        assert!(queue.events()[1].queue_wait_seconds() > 0.0);
    }

    #[test]
    fn launch_overhead_delays_submission_and_opens_idle_gaps() {
        let cpu = profiles::intel_i7_2600();
        let overhead = 1.0;
        let mut queue = CommandQueue::new(&cpu).with_launch_overhead(overhead);
        // ~0.23 s of work per launch at the i7's throughput: shorter than
        // the (deliberately huge) launch overhead, so the device idles
        // between kernels.
        let kernel = FnKernel::new(|_| ((), 100_000_000u64));
        queue.enqueue("a", 4, &kernel);
        queue.enqueue("b", 4, &kernel);
        let events = queue.events();
        assert_eq!(events[0].queued_seconds, 0.0);
        assert_eq!(events[0].submitted_seconds, overhead);
        assert_eq!(events[0].start_seconds, overhead);
        assert_eq!(events[1].queued_seconds, overhead);
        assert_eq!(events[1].submitted_seconds, 2.0 * overhead);
        assert!(events[1].start_seconds >= events[0].end_seconds);
        assert!(queue.utilization() < 1.0);
        assert!(queue.busy_seconds() < queue.finish_seconds());
    }

    #[test]
    fn durations_scale_with_device_speed() {
        let cpu = profiles::intel_i7_2600();
        let gpu = profiles::gtx590();
        let kernel = FnKernel::new(|_| ((), 1_000_000u64));
        let mut qc = CommandQueue::new(&cpu);
        let mut qg = CommandQueue::new(&gpu);
        qc.enqueue("x", 100, &kernel);
        qg.enqueue("x", 100, &kernel);
        assert!(qg.finish_seconds() > qc.finish_seconds());
        assert_eq!(qc.device().name(), "Intel Core i7-2600");
    }

    #[test]
    fn outputs_are_returned_in_order() {
        let cpu = profiles::intel_i7_2600();
        let mut queue = CommandQueue::new(&cpu);
        let kernel = FnKernel::new(|i: usize| (i * 2, 1));
        let out = queue.enqueue("double", 8, &kernel);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn timeline_renders_every_event() {
        let cpu = profiles::intel_i7_2600();
        let mut queue = CommandQueue::new(&cpu);
        let kernel = FnKernel::new(|_| ((), 500_000u64));
        queue.enqueue("first", 10, &kernel);
        queue.enqueue("second", 10, &kernel);
        let text = queue.timeline();
        assert!(text.contains("first"));
        assert!(text.contains("second"));
        assert!(text.contains('#'));
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn empty_queue() {
        let cpu = profiles::intel_i7_2600();
        let queue = CommandQueue::new(&cpu);
        assert_eq!(queue.finish_seconds(), 0.0);
        assert!(queue.events().is_empty());
        assert!(queue.timeline().is_empty());
        assert_eq!(queue.utilization(), 0.0);
    }

    /// Regression: a zero-duration run (zero-work kernels keep the clock
    /// at 0.0) used to divide by `total == 0` producing NaN→`as usize`
    /// bar coordinates; it must render empty, fixed-width bars.
    #[test]
    fn timeline_survives_zero_duration_run() {
        let cpu = profiles::intel_i7_2600();
        let mut queue = CommandQueue::new(&cpu);
        let kernel = FnKernel::new(|_| ((), 0u64));
        queue.enqueue("noop-a", 0, &kernel);
        queue.enqueue("noop-b", 3, &kernel);
        assert_eq!(queue.finish_seconds(), 0.0);
        let text = queue.timeline();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(!line.contains('#'), "zero-duration bars must be empty");
            let bar = &line[line.find('[').unwrap() + 1..line.find(']').unwrap()];
            assert_eq!(bar.len(), 40, "bar must keep its fixed width");
        }
    }

    /// Regression: a final event ending exactly at `total` could round to
    /// `to > width` and render a bar longer than the box.
    #[test]
    fn timeline_bar_never_exceeds_width() {
        let cpu = profiles::intel_i7_2600();
        let mut queue = CommandQueue::new(&cpu);
        let kernel = FnKernel::new(|_| ((), 1_000_000u64));
        // Three back-to-back launches: the last ends exactly at
        // finish_seconds(), the case that used to overflow.
        queue.enqueue("a", 10, &kernel);
        queue.enqueue("b", 10, &kernel);
        queue.enqueue("c", 13, &kernel);
        let last = queue.events().last().unwrap();
        assert_eq!(last.end_seconds, queue.finish_seconds());
        for line in queue.timeline().lines() {
            let bar = &line[line.find('[').unwrap() + 1..line.find(']').unwrap()];
            assert_eq!(bar.len(), 40, "bar overflowed: {line:?}");
        }
    }

    #[test]
    fn transient_fault_fails_one_launch_then_recovers() {
        use crate::fault::FaultPlan;
        let cpu = profiles::intel_i7_2600();
        let state = FaultPlan::new().transient(1, 0.0).state(2).take_device(1);
        let mut queue = CommandQueue::new(&cpu).with_fault_state(1, state);
        let kernel = FnKernel::new(|i: usize| (i, 1_000u64));
        let err = queue.try_enqueue("x", 4, &kernel).unwrap_err();
        assert_eq!(err.kind(), &LaunchErrorKind::TransientFault { device: 1 });
        // The transient is consumed: the retry succeeds.
        let out = queue.try_enqueue("x", 4, &kernel).unwrap();
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(queue.fault_counters().faults, 1);
        assert_eq!(queue.events().len(), 1);
    }

    #[test]
    fn enqueue_with_retries_recovers_and_annotates() {
        use crate::fault::FaultPlan;
        let cpu = profiles::intel_i7_2600();
        let state = FaultPlan::parse("transient:d0@0x2")
            .unwrap()
            .state(1)
            .take_device(0);
        let mut queue = CommandQueue::new(&cpu).with_fault_state(0, state);
        let kernel = FnKernel::new(|i: usize| (i, 1_000u64));
        let out = queue.enqueue_with_retries("job", 3, &kernel, 3).unwrap();
        assert_eq!(out, vec![0, 1, 2]);
        let counters = queue.fault_counters();
        assert_eq!(counters.retries, 2);
        assert_eq!(counters.faults, 2);
        let event = &queue.events()[0];
        assert!(event.label.contains("[retry x2]"), "{}", event.label);
        // Backoffs 1ms + 2ms delayed the successful launch.
        assert!(event.start_seconds >= 3.0 * BACKOFF_BASE_SECONDS - 1e-12);
    }

    #[test]
    fn exhausted_retries_escalate_to_loss() {
        use crate::fault::FaultPlan;
        let cpu = profiles::intel_i7_2600();
        let state = FaultPlan::parse("transient:d2@0x5")
            .unwrap()
            .state(3)
            .take_device(2);
        let mut queue = CommandQueue::new(&cpu).with_fault_state(2, state);
        let kernel = FnKernel::new(|_| ((), 1_000u64));
        let err = queue
            .enqueue_with_retries("job", 3, &kernel, 1)
            .unwrap_err();
        assert_eq!(err.kind(), &LaunchErrorKind::DeviceLost { device: 2 });
        assert!(queue.is_lost_now());
        // One retry spent, two transients struck, plus the loss itself.
        let counters = queue.fault_counters();
        assert_eq!(counters.retries, 1);
        assert_eq!(counters.faults, 3);
        // Future launches stay dead, without recounting the loss.
        let again = queue
            .enqueue_with_retries("job", 3, &kernel, 1)
            .unwrap_err();
        assert_eq!(again.kind(), &LaunchErrorKind::DeviceLost { device: 2 });
        assert_eq!(queue.fault_counters().faults, 3);
    }

    #[test]
    fn loss_applies_to_launch_starts_only() {
        use crate::fault::FaultPlan;
        let cpu = profiles::intel_i7_2600();
        let kernel = FnKernel::new(|_| ((), 1_000_000u64));
        // Find how long one launch takes, then arm a loss mid-first-launch.
        let mut probe = CommandQueue::new(&cpu);
        probe.enqueue("probe", 10, &kernel);
        let one = probe.finish_seconds();
        let state = FaultPlan::new().loss(0, one / 2.0).state(1).take_device(0);
        let mut queue = CommandQueue::new(&cpu).with_fault_state(0, state);
        // First launch starts at 0.0 < loss time: it completes (fail-stop
        // at launch granularity).
        assert!(queue.try_enqueue("a", 10, &kernel).is_ok());
        // Second launch would start after the loss: rejected.
        let err = queue.try_enqueue("b", 10, &kernel).unwrap_err();
        assert_eq!(err.kind(), &LaunchErrorKind::DeviceLost { device: 0 });
        assert_eq!(queue.events().len(), 1);
        assert_eq!(queue.fault_counters().faults, 1);
    }

    #[test]
    fn degradation_stretches_simulated_duration() {
        use crate::fault::FaultPlan;
        let cpu = profiles::intel_i7_2600();
        let kernel = FnKernel::new(|_| ((), 1_000_000u64));
        let mut healthy = CommandQueue::new(&cpu);
        healthy.enqueue("x", 10, &kernel);
        let state = FaultPlan::new()
            .degrade(0, 0.0, 0.5)
            .state(1)
            .take_device(0);
        let mut degraded = CommandQueue::new(&cpu).with_fault_state(0, state);
        degraded.try_enqueue("x", 10, &kernel).unwrap();
        let ratio = degraded.finish_seconds() / healthy.finish_seconds();
        assert!((ratio - 2.0).abs() < 1e-9, "half throughput = double time");
        // Degradation is not an error and not a counted fault.
        assert!(degraded.fault_counters().is_zero());
    }

    #[test]
    #[should_panic(expected = "fault-armed")]
    fn infallible_enqueue_rejects_armed_queues() {
        use crate::fault::FaultPlan;
        let cpu = profiles::intel_i7_2600();
        let state = FaultPlan::new().state(1).take_device(0);
        let mut queue = CommandQueue::new(&cpu).with_fault_state(0, state);
        let _ = queue.enqueue("x", 1, &FnKernel::new(|_| ((), 1u64)));
    }

    #[test]
    fn tracing_records_kernel_retry_and_fault_spans() {
        use crate::fault::FaultPlan;
        let cpu = profiles::intel_i7_2600();
        let state = FaultPlan::parse("transient:d0@0x2")
            .unwrap()
            .state(1)
            .take_device(0);
        let mut queue = CommandQueue::new(&cpu)
            .with_fault_state(0, state)
            .with_tracing();
        let kernel = FnKernel::new(|i: usize| (i, 1_000u64));
        queue.enqueue_with_retries("job", 3, &kernel, 3).unwrap();
        queue.annotate_last("migrated from d9");
        queue.note_migration();
        let spans = queue.take_trace();
        let cats: Vec<&str> = spans.iter().map(|s| s.cat.as_str()).collect();
        // Two transients, two backoffs, then the kernel, then migration.
        assert_eq!(
            cats,
            ["fault", "retry", "fault", "retry", "kernel", "migration"]
        );
        let kernel_span = &spans[4];
        assert_eq!(kernel_span.name, "job [retry x2] [migrated from d9]");
        assert_eq!(kernel_span.pid, repute_obs::trace::device_pid(0));
        assert!(kernel_span.end_seconds > kernel_span.begin_seconds);
        // Draining leaves the queue still tracing.
        assert!(queue.take_trace().is_empty());
        queue.wait(0.0);
    }

    #[test]
    fn untraced_queue_yields_no_spans() {
        let cpu = profiles::intel_i7_2600();
        let mut queue = CommandQueue::new(&cpu);
        queue.enqueue("a", 4, &FnKernel::new(|_| ((), 1_000u64)));
        assert!(queue.take_trace().is_empty());
    }

    #[test]
    fn annotate_and_migration_counters() {
        let cpu = profiles::intel_i7_2600();
        let mut queue = CommandQueue::new(&cpu);
        // Annotating an empty queue is a no-op.
        queue.annotate_last("nothing");
        queue.enqueue("batch", 2, &FnKernel::new(|_| ((), 1u64)));
        queue.annotate_last("migrated from d3");
        assert_eq!(queue.events()[0].label, "batch [migrated from d3]");
        queue.note_migration();
        assert_eq!(queue.fault_counters().migrated_batches, 1);
        assert!(!queue.is_lost_now());
    }
}
