//! In-order command queues with profiling events.
//!
//! OpenCL hosts drive each device through a command queue and read
//! per-kernel timing from profiling events (`clGetEventProfilingInfo`
//! with `CL_PROFILING_COMMAND_QUEUED` / `_SUBMIT` / `_START` / `_END`).
//! This module models that: kernels enqueued on a [`CommandQueue`] run
//! back-to-back on the device's simulated timeline — the mechanism behind
//! REPUTE's "run the kernel multiple times with smaller read sets" when a
//! batch exceeds the quarter-RAM buffer cap (§III/§IV) — and every launch
//! leaves an [`Event`] carrying all four timestamps.
//!
//! The host-side model: the host enqueues commands back-to-back, each
//! costing [`CommandQueue::launch_overhead_seconds`] to queue and again to
//! submit to the device (both default to zero — an infinitely fast host —
//! so `queued == submitted == start` unless an overhead is configured);
//! execution then starts as soon as the device is free. The invariant
//! `queued ≤ submitted ≤ start ≤ end` always holds.

use crate::device::DeviceProfile;
use crate::kernel::{run_kernel, Kernel};

/// Profiling record of one enqueued kernel, mirroring the four OpenCL
/// event timestamps.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Caller-supplied label.
    pub label: String,
    /// Work-items the launch processed.
    pub items: usize,
    /// Work units the launch consumed.
    pub work: u64,
    /// Host time the command entered the queue
    /// (`CL_PROFILING_COMMAND_QUEUED`).
    pub queued_seconds: f64,
    /// Time the command was handed to the device
    /// (`CL_PROFILING_COMMAND_SUBMIT`).
    pub submitted_seconds: f64,
    /// Simulated queue time at which the kernel started
    /// (`CL_PROFILING_COMMAND_START`).
    pub start_seconds: f64,
    /// Simulated queue time at which the kernel finished
    /// (`CL_PROFILING_COMMAND_END`).
    pub end_seconds: f64,
}

impl Event {
    /// Simulated duration of the kernel.
    pub fn duration_seconds(&self) -> f64 {
        self.end_seconds - self.start_seconds
    }

    /// Time between enqueue and execution start (host overhead plus
    /// waiting for the device to drain earlier commands).
    pub fn queue_wait_seconds(&self) -> f64 {
        self.start_seconds - self.queued_seconds
    }
}

/// An in-order command queue bound to one device.
///
/// # Example
///
/// ```
/// use repute_hetsim::{profiles, CommandQueue, FnKernel};
///
/// let cpu = profiles::intel_i7_2600();
/// let mut queue = CommandQueue::new(&cpu);
/// let kernel = FnKernel::new(|i: usize| (i, 1_000_000));
/// let first = queue.enqueue("batch-1", 100, &kernel);
/// let second = queue.enqueue("batch-2", 50, &kernel);
/// assert_eq!(first.len(), 100);
/// assert_eq!(second.len(), 50);
/// // In-order semantics: batch-2 starts exactly when batch-1 ends.
/// let events = queue.events();
/// assert_eq!(events[1].start_seconds, events[0].end_seconds);
/// // OpenCL timestamp ordering holds for every event.
/// assert!(events[1].queued_seconds <= events[1].submitted_seconds);
/// assert!(events[1].submitted_seconds <= events[1].start_seconds);
/// ```
#[derive(Debug)]
pub struct CommandQueue<'d> {
    device: &'d DeviceProfile,
    events: Vec<Event>,
    clock_seconds: f64,
    host_clock_seconds: f64,
    launch_overhead_seconds: f64,
}

impl<'d> CommandQueue<'d> {
    /// Creates an empty queue on `device`.
    pub fn new(device: &'d DeviceProfile) -> CommandQueue<'d> {
        CommandQueue {
            device,
            events: Vec::new(),
            clock_seconds: 0.0,
            host_clock_seconds: 0.0,
            launch_overhead_seconds: 0.0,
        }
    }

    /// Sets the simulated host cost of queueing one command (charged once
    /// between `queued` and `submitted`). Real OpenCL launches cost a few
    /// microseconds; the default of zero keeps the simple back-to-back
    /// timeline.
    pub fn with_launch_overhead(mut self, seconds: f64) -> CommandQueue<'d> {
        assert!(seconds >= 0.0, "launch overhead must be non-negative");
        self.launch_overhead_seconds = seconds;
        self
    }

    /// The configured per-launch host overhead.
    pub fn launch_overhead_seconds(&self) -> f64 {
        self.launch_overhead_seconds
    }

    /// The device this queue drives.
    pub fn device(&self) -> &DeviceProfile {
        self.device
    }

    /// Enqueues and executes a kernel over `items` work-items, returning
    /// its outputs. The kernel occupies the device from the later of the
    /// current queue clock and its submission time until its simulated
    /// completion.
    pub fn enqueue<K: Kernel>(
        &mut self,
        label: impl Into<String>,
        items: usize,
        kernel: &K,
    ) -> Vec<K::Output> {
        let run = run_kernel(self.device, items, kernel);
        let queued_seconds = self.host_clock_seconds;
        let submitted_seconds = queued_seconds + self.launch_overhead_seconds;
        self.host_clock_seconds = submitted_seconds;
        let start_seconds = submitted_seconds.max(self.clock_seconds);
        let end_seconds = start_seconds + run.simulated_seconds;
        self.events.push(Event {
            label: label.into(),
            items,
            work: run.work,
            queued_seconds,
            submitted_seconds,
            start_seconds,
            end_seconds,
        });
        self.clock_seconds = end_seconds;
        run.outputs
    }

    /// Profiling events of every launch so far, in queue order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consumes the queue, returning its events.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }

    /// The queue's simulated completion time (`clFinish` analogue).
    pub fn finish_seconds(&self) -> f64 {
        self.clock_seconds
    }

    /// Total work enqueued so far.
    pub fn total_work(&self) -> u64 {
        self.events.iter().map(|e| e.work).sum()
    }

    /// Seconds the device spent executing kernels (excludes idle gaps
    /// while waiting for submissions).
    pub fn busy_seconds(&self) -> f64 {
        self.events.iter().map(Event::duration_seconds).sum()
    }

    /// Busy fraction of the device up to `finish_seconds()`; 1.0 for an
    /// empty queue's degenerate case is avoided by returning 0.0.
    pub fn utilization(&self) -> f64 {
        if self.clock_seconds <= 0.0 {
            0.0
        } else {
            self.busy_seconds() / self.clock_seconds
        }
    }

    /// Renders a one-line-per-event timeline (a text Gantt chart), useful
    /// in examples and debugging output.
    pub fn timeline(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let total = self.clock_seconds.max(f64::MIN_POSITIVE);
        for event in &self.events {
            let width = 40usize;
            let from = (event.start_seconds / total * width as f64) as usize;
            let to = ((event.end_seconds / total * width as f64) as usize).max(from + 1);
            let _ = writeln!(
                out,
                "{:<12} [{}{}{}] {:.4}s–{:.4}s",
                event.label,
                " ".repeat(from.min(width)),
                "#".repeat((to - from).min(width - from.min(width))),
                " ".repeat(width.saturating_sub(to)),
                event.start_seconds,
                event.end_seconds
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::FnKernel;
    use crate::profiles;

    #[test]
    fn launches_run_back_to_back() {
        let cpu = profiles::intel_i7_2600();
        let mut queue = CommandQueue::new(&cpu);
        let kernel = FnKernel::new(|_| ((), 1_000_000u64));
        queue.enqueue("a", 10, &kernel);
        queue.enqueue("b", 20, &kernel);
        queue.enqueue("c", 5, &kernel);
        let events = queue.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].start_seconds, 0.0);
        for pair in events.windows(2) {
            assert_eq!(pair[1].start_seconds, pair[0].end_seconds);
        }
        let total: f64 = events.iter().map(Event::duration_seconds).sum();
        assert!((queue.finish_seconds() - total).abs() < 1e-12);
        assert_eq!(queue.total_work(), 35_000_000);
        // With no host overhead the device never idles.
        assert!((queue.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn event_timestamps_are_ordered() {
        let cpu = profiles::intel_i7_2600();
        let mut queue = CommandQueue::new(&cpu);
        let kernel = FnKernel::new(|_| ((), 1_000_000u64));
        queue.enqueue("a", 10, &kernel);
        queue.enqueue("b", 10, &kernel);
        for event in queue.events() {
            assert!(event.queued_seconds <= event.submitted_seconds);
            assert!(event.submitted_seconds <= event.start_seconds);
            assert!(event.start_seconds <= event.end_seconds);
        }
        // Second command was queued while the first still ran: it waits.
        assert!(queue.events()[1].queue_wait_seconds() > 0.0);
    }

    #[test]
    fn launch_overhead_delays_submission_and_opens_idle_gaps() {
        let cpu = profiles::intel_i7_2600();
        let overhead = 1.0;
        let mut queue = CommandQueue::new(&cpu).with_launch_overhead(overhead);
        // ~0.23 s of work per launch at the i7's throughput: shorter than
        // the (deliberately huge) launch overhead, so the device idles
        // between kernels.
        let kernel = FnKernel::new(|_| ((), 100_000_000u64));
        queue.enqueue("a", 4, &kernel);
        queue.enqueue("b", 4, &kernel);
        let events = queue.events();
        assert_eq!(events[0].queued_seconds, 0.0);
        assert_eq!(events[0].submitted_seconds, overhead);
        assert_eq!(events[0].start_seconds, overhead);
        assert_eq!(events[1].queued_seconds, overhead);
        assert_eq!(events[1].submitted_seconds, 2.0 * overhead);
        assert!(events[1].start_seconds >= events[0].end_seconds);
        assert!(queue.utilization() < 1.0);
        assert!(queue.busy_seconds() < queue.finish_seconds());
    }

    #[test]
    fn durations_scale_with_device_speed() {
        let cpu = profiles::intel_i7_2600();
        let gpu = profiles::gtx590();
        let kernel = FnKernel::new(|_| ((), 1_000_000u64));
        let mut qc = CommandQueue::new(&cpu);
        let mut qg = CommandQueue::new(&gpu);
        qc.enqueue("x", 100, &kernel);
        qg.enqueue("x", 100, &kernel);
        assert!(qg.finish_seconds() > qc.finish_seconds());
        assert_eq!(qc.device().name(), "Intel Core i7-2600");
    }

    #[test]
    fn outputs_are_returned_in_order() {
        let cpu = profiles::intel_i7_2600();
        let mut queue = CommandQueue::new(&cpu);
        let kernel = FnKernel::new(|i: usize| (i * 2, 1));
        let out = queue.enqueue("double", 8, &kernel);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn timeline_renders_every_event() {
        let cpu = profiles::intel_i7_2600();
        let mut queue = CommandQueue::new(&cpu);
        let kernel = FnKernel::new(|_| ((), 500_000u64));
        queue.enqueue("first", 10, &kernel);
        queue.enqueue("second", 10, &kernel);
        let text = queue.timeline();
        assert!(text.contains("first"));
        assert!(text.contains("second"));
        assert!(text.contains('#'));
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn empty_queue() {
        let cpu = profiles::intel_i7_2600();
        let queue = CommandQueue::new(&cpu);
        assert_eq!(queue.finish_seconds(), 0.0);
        assert!(queue.events().is_empty());
        assert!(queue.timeline().is_empty());
        assert_eq!(queue.utilization(), 0.0);
    }
}
