//! In-order command queues with profiling events.
//!
//! OpenCL hosts drive each device through a command queue and read
//! per-kernel timing from profiling events (`CL_PROFILING_COMMAND_START` /
//! `_END`). This module models that: kernels enqueued on a
//! [`CommandQueue`] run back-to-back on the device's simulated timeline —
//! the mechanism behind REPUTE's "run the kernel multiple times with
//! smaller read sets" when a batch exceeds the quarter-RAM buffer cap
//! (§III/§IV) — and every launch leaves an [`Event`] for inspection.

use crate::device::DeviceProfile;
use crate::kernel::{run_kernel, Kernel};

/// Profiling record of one enqueued kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Caller-supplied label.
    pub label: String,
    /// Work-items the launch processed.
    pub items: usize,
    /// Work units the launch consumed.
    pub work: u64,
    /// Simulated queue time at which the kernel started.
    pub start_seconds: f64,
    /// Simulated queue time at which the kernel finished.
    pub end_seconds: f64,
}

impl Event {
    /// Simulated duration of the kernel.
    pub fn duration_seconds(&self) -> f64 {
        self.end_seconds - self.start_seconds
    }
}

/// An in-order command queue bound to one device.
///
/// # Example
///
/// ```
/// use repute_hetsim::{profiles, CommandQueue, FnKernel};
///
/// let cpu = profiles::intel_i7_2600();
/// let mut queue = CommandQueue::new(&cpu);
/// let kernel = FnKernel::new(|i: usize| (i, 1_000_000));
/// let first = queue.enqueue("batch-1", 100, &kernel);
/// let second = queue.enqueue("batch-2", 50, &kernel);
/// assert_eq!(first.len(), 100);
/// assert_eq!(second.len(), 50);
/// // In-order semantics: batch-2 starts exactly when batch-1 ends.
/// let events = queue.events();
/// assert_eq!(events[1].start_seconds, events[0].end_seconds);
/// ```
#[derive(Debug)]
pub struct CommandQueue<'d> {
    device: &'d DeviceProfile,
    events: Vec<Event>,
    clock_seconds: f64,
}

impl<'d> CommandQueue<'d> {
    /// Creates an empty queue on `device`.
    pub fn new(device: &'d DeviceProfile) -> CommandQueue<'d> {
        CommandQueue {
            device,
            events: Vec::new(),
            clock_seconds: 0.0,
        }
    }

    /// The device this queue drives.
    pub fn device(&self) -> &DeviceProfile {
        self.device
    }

    /// Enqueues and executes a kernel over `items` work-items, returning
    /// its outputs. The kernel occupies the device from the current queue
    /// clock until its simulated completion.
    pub fn enqueue<K: Kernel>(
        &mut self,
        label: impl Into<String>,
        items: usize,
        kernel: &K,
    ) -> Vec<K::Output> {
        let run = run_kernel(self.device, items, kernel);
        let start_seconds = self.clock_seconds;
        let end_seconds = start_seconds + run.simulated_seconds;
        self.events.push(Event {
            label: label.into(),
            items,
            work: run.work,
            start_seconds,
            end_seconds,
        });
        self.clock_seconds = end_seconds;
        run.outputs
    }

    /// Profiling events of every launch so far, in queue order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The queue's simulated completion time (`clFinish` analogue).
    pub fn finish_seconds(&self) -> f64 {
        self.clock_seconds
    }

    /// Total work enqueued so far.
    pub fn total_work(&self) -> u64 {
        self.events.iter().map(|e| e.work).sum()
    }

    /// Renders a one-line-per-event timeline (a text Gantt chart), useful
    /// in examples and debugging output.
    pub fn timeline(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let total = self.clock_seconds.max(f64::MIN_POSITIVE);
        for event in &self.events {
            let width = 40usize;
            let from = (event.start_seconds / total * width as f64) as usize;
            let to = ((event.end_seconds / total * width as f64) as usize).max(from + 1);
            let _ = writeln!(
                out,
                "{:<12} [{}{}{}] {:.4}s–{:.4}s",
                event.label,
                " ".repeat(from.min(width)),
                "#".repeat((to - from).min(width - from.min(width))),
                " ".repeat(width.saturating_sub(to)),
                event.start_seconds,
                event.end_seconds
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::FnKernel;
    use crate::profiles;

    #[test]
    fn launches_run_back_to_back() {
        let cpu = profiles::intel_i7_2600();
        let mut queue = CommandQueue::new(&cpu);
        let kernel = FnKernel::new(|_| ((), 1_000_000u64));
        queue.enqueue("a", 10, &kernel);
        queue.enqueue("b", 20, &kernel);
        queue.enqueue("c", 5, &kernel);
        let events = queue.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].start_seconds, 0.0);
        for pair in events.windows(2) {
            assert_eq!(pair[1].start_seconds, pair[0].end_seconds);
        }
        let total: f64 = events.iter().map(Event::duration_seconds).sum();
        assert!((queue.finish_seconds() - total).abs() < 1e-12);
        assert_eq!(queue.total_work(), 35_000_000);
    }

    #[test]
    fn durations_scale_with_device_speed() {
        let cpu = profiles::intel_i7_2600();
        let gpu = profiles::gtx590();
        let kernel = FnKernel::new(|_| ((), 1_000_000u64));
        let mut qc = CommandQueue::new(&cpu);
        let mut qg = CommandQueue::new(&gpu);
        qc.enqueue("x", 100, &kernel);
        qg.enqueue("x", 100, &kernel);
        assert!(qg.finish_seconds() > qc.finish_seconds());
        assert_eq!(qc.device().name(), "Intel Core i7-2600");
    }

    #[test]
    fn outputs_are_returned_in_order() {
        let cpu = profiles::intel_i7_2600();
        let mut queue = CommandQueue::new(&cpu);
        let kernel = FnKernel::new(|i: usize| (i * 2, 1));
        let out = queue.enqueue("double", 8, &kernel);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn timeline_renders_every_event() {
        let cpu = profiles::intel_i7_2600();
        let mut queue = CommandQueue::new(&cpu);
        let kernel = FnKernel::new(|_| ((), 500_000u64));
        queue.enqueue("first", 10, &kernel);
        queue.enqueue("second", 10, &kernel);
        let text = queue.timeline();
        assert!(text.contains("first"));
        assert!(text.contains("second"));
        assert!(text.contains('#'));
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn empty_queue() {
        let cpu = profiles::intel_i7_2600();
        let queue = CommandQueue::new(&cpu);
        assert_eq!(queue.finish_seconds(), 0.0);
        assert!(queue.events().is_empty());
        assert!(queue.timeline().is_empty());
    }
}
