//! Deterministic fault injection for the simulated platform.
//!
//! Real OpenCL deployments lose devices: a flaky PCIe link drops a GPU
//! mid-run, a thermal throttle halves a cluster's clock, a driver hiccup
//! fails one `clEnqueueNDRangeKernel` and succeeds on retry. The paper's
//! headline claim — task-parallel mapping across heterogeneous devices —
//! is only production-credible if the executor survives all three, so
//! this module models them *deterministically*: a [`FaultPlan`] is a set
//! of [`FaultEvent`]s pinned to **simulated** time (no wall clocks, no
//! ambient randomness), and a run under the same plan, seed and workload
//! is bit-reproducible.
//!
//! Three fault kinds (the taxonomy DESIGN.md §10 documents):
//!
//! * **Transient** — one kernel launch on the device fails at enqueue;
//!   the next attempt may succeed. Models driver/queue hiccups. Armed at
//!   a simulated time; consumed by the first launch at or after it.
//! * **Degrade** — the device's effective throughput is multiplied by a
//!   factor in `(0, 1]` for every kernel *starting* at or after the arm
//!   time. Models thermal throttling / DVFS capping. Factors compose
//!   multiplicatively if several degrade events have armed.
//! * **Loss** — the device is permanently dead: every launch starting at
//!   or after the arm time fails. Fail-stop is modelled at *launch
//!   granularity*: a kernel already running when the loss arms completes
//!   (its results were computed; the simulation charges the time), but
//!   nothing starts afterwards.
//!
//! The runtime view is a [`FaultState`] ([`FaultPlan::state`]): one
//! consumable [`DeviceFaultState`] per device, which command queues and
//! the multi-device executor query at enqueue time.

use std::error::Error;
use std::fmt;

/// What kind of fault a [`FaultEvent`] injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// One kernel launch fails at enqueue; consumed by the first launch
    /// at or after the arm time.
    Transient,
    /// Effective throughput is multiplied by `factor` (in `(0, 1]`) for
    /// kernels starting at or after the arm time.
    Degrade {
        /// Throughput multiplier in `(0, 1]`.
        factor: f64,
    },
    /// The device is permanently dead from the arm time on.
    Loss,
    /// The *host* process dies at the arm time — the whole run stops and
    /// can only continue from a checkpoint journal. Not tied to any
    /// device (the event's `device` field is ignored); consumed by the
    /// resumable executor, ignored by per-device fault state.
    HostCrash,
}

/// One fault, armed at a point in simulated time on one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Index of the device the fault strikes.
    pub device: usize,
    /// Simulated seconds at which the fault arms.
    pub at_seconds: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// Error from [`FaultPlan::parse`] naming the offending entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanParseError {
    entry: String,
    reason: String,
}

impl fmt::Display for FaultPlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid fault-plan entry {:?}: {} \
             (expected loss:d<dev>@<t> | transient:d<dev>@<t>[x<count>] | \
             slow:d<dev>@<t>x<factor> | correlated:d<a>+d<b>+...@<t> | crash:@<t>)",
            self.entry, self.reason
        )
    }
}

impl Error for FaultPlanParseError {}

/// A deterministic set of faults to inject into a run.
///
/// # Example
///
/// ```
/// use repute_hetsim::FaultPlan;
///
/// let plan = FaultPlan::new()
///     .transient(1, 0.0)
///     .degrade(0, 0.5, 0.5)
///     .loss(2, 1.0);
/// assert_eq!(plan.events().len(), 3);
/// // The same plan, as a CLI spec string:
/// let parsed = FaultPlan::parse("transient:d1@0,slow:d0@0.5x0.5,loss:d2@1").unwrap();
/// assert_eq!(parsed.events().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (injects nothing; executors take the fault-free
    /// fast path).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The planned fault events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Adds an explicit event.
    pub fn with_event(mut self, event: FaultEvent) -> FaultPlan {
        self.events.push(event);
        self
    }

    /// Adds one transient launch failure arming at `at_seconds` on
    /// `device`.
    pub fn transient(self, device: usize, at_seconds: f64) -> FaultPlan {
        self.with_event(FaultEvent {
            device,
            at_seconds,
            kind: FaultKind::Transient,
        })
    }

    /// Adds a throughput degradation (multiplier `factor` in `(0, 1]`)
    /// arming at `at_seconds` on `device`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is outside `(0, 1]`.
    pub fn degrade(self, device: usize, at_seconds: f64, factor: f64) -> FaultPlan {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "degrade factor {factor} outside (0, 1]"
        );
        self.with_event(FaultEvent {
            device,
            at_seconds,
            kind: FaultKind::Degrade { factor },
        })
    }

    /// Adds a permanent device loss arming at `at_seconds` on `device`.
    pub fn loss(self, device: usize, at_seconds: f64) -> FaultPlan {
        self.with_event(FaultEvent {
            device,
            at_seconds,
            kind: FaultKind::Loss,
        })
    }

    /// Adds a correlated (rack-style) loss: every device in `devices`
    /// dies simultaneously at `at_seconds`. Models a shared power rail or
    /// PCIe switch taking out several accelerators at once; equivalent to
    /// one [`loss`](FaultPlan::loss) per device at the same instant.
    pub fn correlated(mut self, devices: &[usize], at_seconds: f64) -> FaultPlan {
        for &device in devices {
            self = self.loss(device, at_seconds);
        }
        self
    }

    /// Adds a host-process crash at `at_seconds` of simulated time — the
    /// simulated `kill -9` the checkpoint/resume machinery recovers from.
    pub fn host_crash(self, at_seconds: f64) -> FaultPlan {
        self.with_event(FaultEvent {
            device: 0, // ignored: the crash takes the whole host
            at_seconds,
            kind: FaultKind::HostCrash,
        })
    }

    /// The earliest planned host-crash time, if any.
    pub fn host_crash_at(&self) -> Option<f64> {
        self.events
            .iter()
            .filter(|e| e.kind == FaultKind::HostCrash)
            .map(|e| e.at_seconds)
            .min_by(|a, b| a.partial_cmp(b).expect("arm times are finite"))
    }

    /// `true` when the plan carries any *device* fault (anything besides
    /// host crashes) — the events a checkpointed run must reject.
    pub fn has_device_events(&self) -> bool {
        self.events.iter().any(|e| e.kind != FaultKind::HostCrash)
    }

    /// The highest device index any device-level event names (`None` for
    /// an empty or crash-only plan) — lets callers validate a plan
    /// against a platform. Host crashes strike the host, not a device,
    /// so they are skipped.
    pub fn max_device(&self) -> Option<usize> {
        self.events
            .iter()
            .filter(|e| e.kind != FaultKind::HostCrash)
            .map(|e| e.device)
            .max()
    }

    /// Parses a CLI spec: comma- or semicolon-separated entries of
    ///
    /// * `loss:d<dev>@<t>` — permanent loss at simulated second `t`;
    /// * `transient:d<dev>@<t>` (optionally `x<count>`) — `count`
    ///   transient launch failures arming at `t`;
    /// * `slow:d<dev>@<t>x<factor>` — throughput multiplied by `factor`
    ///   from `t` on;
    /// * `correlated:d<a>+d<b>+...@<t>` — every listed device dies
    ///   simultaneously at `t` (rack-style correlated loss);
    /// * `crash:@<t>` — the host process dies at simulated second `t`
    ///   (no device index: the crash takes the whole run).
    ///
    /// Example: `--fault-plan "loss:d1@0.5,transient:d0@0x2"`.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanParseError`] naming the first malformed entry.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultPlanParseError> {
        let mut plan = FaultPlan::new();
        for raw in spec.split([',', ';']) {
            let entry = raw.trim();
            if entry.is_empty() {
                continue;
            }
            let err = |reason: &str| FaultPlanParseError {
                entry: entry.to_string(),
                reason: reason.to_string(),
            };
            let (kind, rest) = entry
                .split_once(':')
                .ok_or_else(|| err("missing ':' after the fault kind"))?;
            if kind == "crash" {
                let t_str = rest
                    .strip_prefix('@')
                    .ok_or_else(|| err("crash takes no device: write crash:@<seconds>"))?;
                let t: f64 = t_str
                    .parse()
                    .map_err(|_| err("arm time must be a number of seconds"))?;
                if !t.is_finite() || t < 0.0 {
                    return Err(err("arm time must be finite and non-negative"));
                }
                plan = plan.host_crash(t);
                continue;
            }
            if kind == "correlated" {
                let (devs, t_str) = rest
                    .split_once('@')
                    .ok_or_else(|| err("missing '@<seconds>'"))?;
                let t: f64 = t_str
                    .parse()
                    .map_err(|_| err("arm time must be a number of seconds"))?;
                if !t.is_finite() || t < 0.0 {
                    return Err(err("arm time must be finite and non-negative"));
                }
                let mut devices = Vec::new();
                for part in devs.split('+') {
                    let idx = part
                        .strip_prefix('d')
                        .ok_or_else(|| err("devices must be written d<a>+d<b>+..."))?;
                    let device: usize = idx
                        .parse()
                        .map_err(|_| err("device index must be an integer"))?;
                    devices.push(device);
                }
                plan = plan.correlated(&devices, t);
                continue;
            }
            let rest = rest
                .strip_prefix('d')
                .ok_or_else(|| err("device must be written d<index>"))?;
            let (dev, at_and_param) = rest
                .split_once('@')
                .ok_or_else(|| err("missing '@<seconds>'"))?;
            let device: usize = dev
                .parse()
                .map_err(|_| err("device index must be an integer"))?;
            let parse_t = |s: &str| -> Result<f64, FaultPlanParseError> {
                let t: f64 = s
                    .parse()
                    .map_err(|_| err("arm time must be a number of seconds"))?;
                if !t.is_finite() || t < 0.0 {
                    return Err(err("arm time must be finite and non-negative"));
                }
                Ok(t)
            };
            match kind {
                "loss" => {
                    plan = plan.loss(device, parse_t(at_and_param)?);
                }
                "transient" => {
                    let (t, count) = match at_and_param.split_once('x') {
                        Some((t, n)) => (
                            parse_t(t)?,
                            n.parse::<usize>()
                                .map_err(|_| err("transient count must be an integer"))?,
                        ),
                        None => (parse_t(at_and_param)?, 1),
                    };
                    if count == 0 {
                        return Err(err("transient count must be positive"));
                    }
                    for _ in 0..count {
                        plan = plan.transient(device, t);
                    }
                }
                "slow" => {
                    let (t, factor) = at_and_param
                        .split_once('x')
                        .ok_or_else(|| err("slow needs 'x<factor>'"))?;
                    let factor: f64 = factor
                        .parse()
                        .map_err(|_| err("slow factor must be a number"))?;
                    if !(factor > 0.0 && factor <= 1.0) {
                        return Err(err("slow factor must be in (0, 1]"));
                    }
                    plan = plan.degrade(device, parse_t(t)?, factor);
                }
                _ => return Err(err("unknown fault kind")),
            }
        }
        Ok(plan)
    }

    /// Re-expresses the plan relative to a later time origin — the bridge
    /// between a daemon's continuous simulated clock and an executor that
    /// always starts a batch at local `t = 0`.
    ///
    /// The rule is stateless so a crash-resumed daemon rebuilds the exact
    /// same per-batch plans from its journaled clock alone:
    ///
    /// * **Loss / Degrade** are persistent conditions: every event is
    ///   kept, armed at `max(at - origin, 0)` (a device dead or throttled
    ///   before the batch starts is dead or throttled from its local
    ///   `t = 0`).
    /// * **Transient** is a one-shot: it is delivered to the batch whose
    ///   window it falls in, i.e. kept (at `at - origin`) only when
    ///   `at >= origin`. Batch windows tile simulated time, so each
    ///   transient is handed to exactly one batch; one that arms after a
    ///   batch's last launch dissipates, like a hiccup on an idle queue.
    /// * **HostCrash** events are dropped — a serving daemon models host
    ///   death through its journal, not through the executor.
    pub fn rebased(&self, origin: f64) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for event in &self.events {
            match event.kind {
                FaultKind::Loss | FaultKind::Degrade { .. } => {
                    plan = plan.with_event(FaultEvent {
                        at_seconds: (event.at_seconds - origin).max(0.0),
                        ..*event
                    });
                }
                FaultKind::Transient => {
                    if event.at_seconds >= origin {
                        plan = plan.with_event(FaultEvent {
                            at_seconds: event.at_seconds - origin,
                            ..*event
                        });
                    }
                }
                FaultKind::HostCrash => {}
            }
        }
        plan
    }

    /// Projects the plan onto a device subset: events for devices in
    /// `subset` are kept with their device index remapped to the position
    /// within `subset`; events for other devices (and host crashes, which
    /// have no device) are dropped. This is how a daemon hands a
    /// fleet-level plan to an executor running on a sub-platform.
    pub fn for_subset(&self, subset: &[usize]) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for event in &self.events {
            if event.kind == FaultKind::HostCrash {
                continue;
            }
            if let Some(local) = subset.iter().position(|&d| d == event.device) {
                plan = plan.with_event(FaultEvent {
                    device: local,
                    ..*event
                });
            }
        }
        plan
    }

    /// A seeded pseudo-random plan over `devices` devices with fault
    /// times in `[0, horizon_seconds)` — the generator behind the
    /// randomized recovery tests. Deterministic in `seed`, and device 0
    /// never receives a loss event, so **at least one device always
    /// survives** (the precondition of the output-invariance property).
    ///
    /// # Panics
    ///
    /// Panics if `devices == 0` or `horizon_seconds` is not positive.
    pub fn random(seed: u64, devices: usize, horizon_seconds: f64) -> FaultPlan {
        assert!(devices > 0, "need at least one device");
        assert!(
            horizon_seconds > 0.0,
            "fault horizon must be positive seconds"
        );
        let mut state = seed ^ 0xFAB1_7FA0_17ED_5EED;
        let mut next = move || splitmix64(&mut state);
        let mut plan = FaultPlan::new();
        for device in 0..devices {
            // 0–2 transients, 0–1 degradations, and (never on device 0)
            // a loss with probability 1/2.
            let transients = (next() % 3) as usize;
            for _ in 0..transients {
                plan = plan.transient(device, frac(next()) * horizon_seconds);
            }
            if next() % 2 == 0 {
                let factor = 0.25 + 0.75 * frac(next());
                plan = plan.degrade(device, frac(next()) * horizon_seconds, factor);
            }
            if device != 0 && next() % 2 == 0 {
                plan = plan.loss(device, frac(next()) * horizon_seconds);
            }
        }
        plan
    }

    /// The runtime view of the plan for a platform of `devices` devices:
    /// one consumable [`DeviceFaultState`] per device. Events naming
    /// out-of-range devices are ignored (validate with
    /// [`max_device`](FaultPlan::max_device) first if that should be an
    /// error).
    pub fn state(&self, devices: usize) -> FaultState {
        let mut per_device: Vec<DeviceFaultState> =
            (0..devices).map(|_| DeviceFaultState::default()).collect();
        for event in &self.events {
            let Some(state) = per_device.get_mut(event.device) else {
                continue;
            };
            match event.kind {
                FaultKind::Transient => state.transients.push(event.at_seconds),
                FaultKind::Degrade { factor } => state.degrades.push((event.at_seconds, factor)),
                FaultKind::Loss => {
                    state.lost_at = Some(match state.lost_at {
                        Some(t) => t.min(event.at_seconds),
                        None => event.at_seconds,
                    });
                }
                // Host crashes take the whole process, not a device; the
                // resumable executor consumes them before this point.
                FaultKind::HostCrash => {}
            }
        }
        for state in &mut per_device {
            state
                .transients
                .sort_by(|a, b| a.partial_cmp(b).expect("arm times are finite"));
            state
                .degrades
                .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("arm times are finite"));
        }
        FaultState { per_device }
    }
}

/// SplitMix64 step — the same seeder `repute_genome::rng` uses; inlined
/// because this crate is dependency-free.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps 64 random bits onto `[0, 1)`.
fn frac(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Consumable runtime fault state of one device.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeviceFaultState {
    /// Sorted arm times of unconsumed transient faults.
    transients: Vec<f64>,
    /// Index of the next unconsumed transient.
    next_transient: usize,
    /// Sorted `(arm_time, factor)` degradations.
    degrades: Vec<(f64, f64)>,
    /// Earliest permanent-loss time, if any.
    lost_at: Option<f64>,
}

impl DeviceFaultState {
    /// `true` when the device is dead for a launch starting at
    /// `at_seconds`.
    pub fn is_lost(&self, at_seconds: f64) -> bool {
        self.lost_at.is_some_and(|t| at_seconds >= t)
    }

    /// The device's permanent-loss time, if one is planned (or was
    /// escalated via [`kill`](DeviceFaultState::kill)).
    pub fn lost_at(&self) -> Option<f64> {
        self.lost_at
    }

    /// Consumes one armed transient fault, if any has an arm time at or
    /// before `at_seconds`. Returns `true` exactly when a launch at this
    /// time must fail transiently.
    pub fn take_transient(&mut self, at_seconds: f64) -> bool {
        match self.transients.get(self.next_transient) {
            Some(&armed) if armed <= at_seconds => {
                self.next_transient += 1;
                true
            }
            _ => false,
        }
    }

    /// Unconsumed transient faults armed at or before `at_seconds`.
    pub fn pending_transients(&self, at_seconds: f64) -> usize {
        self.transients[self.next_transient..]
            .iter()
            .filter(|&&t| t <= at_seconds)
            .count()
    }

    /// The composed throughput multiplier for a kernel starting at
    /// `at_seconds` (product of all armed degrade factors; 1.0 when
    /// healthy).
    pub fn throughput_factor(&self, at_seconds: f64) -> f64 {
        self.degrades
            .iter()
            .take_while(|(t, _)| *t <= at_seconds)
            .map(|(_, f)| f)
            .product()
    }

    /// Escalates to a permanent loss at `at_seconds` — the executor's
    /// response to a device whose transient faults outlast the retry
    /// budget. Never moves an existing loss later.
    pub fn kill(&mut self, at_seconds: f64) {
        self.lost_at = Some(match self.lost_at {
            Some(t) => t.min(at_seconds),
            None => at_seconds,
        });
    }
}

/// Runtime fault state of a whole platform: one [`DeviceFaultState`] per
/// device, indexed like [`crate::Platform::devices`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultState {
    per_device: Vec<DeviceFaultState>,
}

impl FaultState {
    /// Number of devices tracked.
    pub fn len(&self) -> usize {
        self.per_device.len()
    }

    /// `true` when no devices are tracked.
    pub fn is_empty(&self) -> bool {
        self.per_device.is_empty()
    }

    /// Immutable view of one device's fault state.
    pub fn device(&self, index: usize) -> &DeviceFaultState {
        &self.per_device[index]
    }

    /// Mutable (consumable) view of one device's fault state.
    pub fn device_mut(&mut self, index: usize) -> &mut DeviceFaultState {
        &mut self.per_device[index]
    }

    /// Removes and returns one device's state (for handing to that
    /// device's [`crate::CommandQueue`]); the slot is left defaulted.
    pub fn take_device(&mut self, index: usize) -> DeviceFaultState {
        std::mem::take(&mut self.per_device[index])
    }
}

/// Per-device fault accounting of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounters {
    /// Retry attempts performed after transient launch failures.
    pub retries: u64,
    /// Fault injections that struck the device (transients consumed,
    /// plus one if the device was lost).
    pub faults: u64,
    /// Batches this device absorbed from dead devices (failover).
    pub migrated_batches: u64,
}

impl FaultCounters {
    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.retries += other.retries;
        self.faults += other.faults;
        self.migrated_batches += other.migrated_batches;
    }

    /// `true` when nothing was recorded.
    pub fn is_zero(&self) -> bool {
        self.retries == 0 && self.faults == 0 && self.migrated_batches == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_kind() {
        let plan = FaultPlan::parse("loss:d2@1.5, transient:d0@0x3; slow:d1@0.25x0.5").unwrap();
        assert_eq!(plan.events().len(), 5);
        assert_eq!(plan.max_device(), Some(2));
        let state = plan.state(3);
        assert_eq!(state.device(2).lost_at(), Some(1.5));
        assert_eq!(state.device(0).pending_transients(0.0), 3);
        assert!((state.device(1).throughput_factor(0.3) - 0.5).abs() < 1e-12);
        assert_eq!(state.device(1).throughput_factor(0.1), 1.0);
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        for bad in [
            "loss",
            "loss:2@1",
            "loss:d2",
            "loss:dx@1",
            "loss:d1@-1",
            "loss:d1@nan",
            "transient:d0@0x0",
            "transient:d0@0xq",
            "slow:d0@1",
            "slow:d0@1x0",
            "slow:d0@1x1.5",
            "explode:d0@1",
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(
                err.to_string().contains("invalid fault-plan entry"),
                "{bad}"
            );
        }
        // Empty entries are tolerated.
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" , ;").unwrap().is_empty());
    }

    #[test]
    fn host_crash_parses_and_stays_off_devices() {
        let plan = FaultPlan::parse("crash:@0.75").unwrap();
        assert_eq!(plan.host_crash_at(), Some(0.75));
        assert!(!plan.has_device_events());
        assert!(!plan.is_empty());
        // Crash events never count as device events nor reach device state.
        assert_eq!(plan.max_device(), None);
        let state = plan.state(2);
        assert!(!state.device(0).is_lost(99.0));
        assert!(!state.device(1).is_lost(99.0));

        let mixed = FaultPlan::parse("loss:d1@0.5,crash:@1").unwrap();
        assert!(mixed.has_device_events());
        assert_eq!(mixed.max_device(), Some(1));
        assert_eq!(mixed.host_crash_at(), Some(1.0));
        // The earliest of several crashes wins.
        let twice = FaultPlan::new().host_crash(2.0).host_crash(0.5);
        assert_eq!(twice.host_crash_at(), Some(0.5));

        for bad in ["crash:d0@1", "crash:@-1", "crash:@nan", "crash:1"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn correlated_parses_and_expands_to_losses() {
        let plan = FaultPlan::parse("correlated:d1+d2@0.5").unwrap();
        assert_eq!(plan.events().len(), 2);
        assert!(plan
            .events()
            .iter()
            .all(|e| e.kind == FaultKind::Loss && e.at_seconds == 0.5));
        assert_eq!(plan.max_device(), Some(2));
        let single = FaultPlan::parse("correlated:d0@1").unwrap();
        assert_eq!(single.events().len(), 1);
        assert_eq!(
            FaultPlan::parse("correlated:d1+d2@0.5").unwrap(),
            FaultPlan::new().correlated(&[1, 2], 0.5)
        );
        for bad in [
            "correlated:d1+d2",
            "correlated:@1",
            "correlated:1+2@1",
            "correlated:d1+x@1",
            "correlated:d1@-1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn rebased_shifts_persistent_faults_and_windows_transients() {
        let plan = FaultPlan::new()
            .loss(1, 2.0)
            .degrade(0, 0.5, 0.5)
            .transient(0, 1.0)
            .transient(0, 4.0)
            .host_crash(3.0);
        let local = plan.rebased(3.0);
        // Loss before the origin clamps to 0; degrade likewise.
        let state = local.state(2);
        assert_eq!(state.device(1).lost_at(), Some(0.0));
        assert!((state.device(0).throughput_factor(0.0) - 0.5).abs() < 1e-12);
        // The t=1 transient belonged to an earlier window; the t=4 one
        // lands at local t=1. Host crashes never cross the re-basing.
        assert_eq!(state.device(0).pending_transients(0.5), 0);
        assert_eq!(state.device(0).pending_transients(1.0), 1);
        assert!(local.host_crash_at().is_none());
        // Origin 0 is the identity for device events.
        assert_eq!(
            plan.rebased(0.0).events().len(),
            plan.events().len() - 1 // minus the host crash
        );
    }

    #[test]
    fn for_subset_remaps_and_drops_foreign_devices() {
        let plan = FaultPlan::new()
            .loss(2, 1.0)
            .transient(0, 0.5)
            .degrade(1, 0.25, 0.5)
            .host_crash(9.0);
        let sub = plan.for_subset(&[2, 0]);
        assert_eq!(sub.events().len(), 2);
        let state = sub.state(2);
        assert_eq!(state.device(0).lost_at(), Some(1.0)); // was device 2
        assert_eq!(state.device(1).pending_transients(0.5), 1); // was device 0
        assert!(sub.host_crash_at().is_none());
        assert!(plan.for_subset(&[]).is_empty());
    }

    #[test]
    fn transients_are_consumed_in_arm_order() {
        let plan = FaultPlan::new().transient(0, 1.0).transient(0, 0.0);
        let mut state = plan.state(1);
        let dev = state.device_mut(0);
        // Before any arm time: nothing fires.
        assert!(!dev.take_transient(-0.5));
        // At 0.5 only the t=0 transient has armed.
        assert!(dev.take_transient(0.5));
        assert!(!dev.take_transient(0.5));
        // The t=1 one fires later, once.
        assert!(dev.take_transient(2.0));
        assert!(!dev.take_transient(99.0));
    }

    #[test]
    fn degrade_factors_compose_and_loss_is_earliest() {
        let plan = FaultPlan::new()
            .degrade(0, 0.0, 0.5)
            .degrade(0, 1.0, 0.5)
            .loss(0, 3.0)
            .loss(0, 2.0);
        let state = plan.state(1);
        let dev = state.device(0);
        assert!((dev.throughput_factor(0.5) - 0.5).abs() < 1e-12);
        assert!((dev.throughput_factor(1.0) - 0.25).abs() < 1e-12);
        assert_eq!(dev.lost_at(), Some(2.0));
        assert!(!dev.is_lost(1.9));
        assert!(dev.is_lost(2.0));
    }

    #[test]
    fn kill_escalates_but_never_postpones() {
        let mut state = FaultPlan::new().loss(0, 1.0).state(1);
        state.device_mut(0).kill(5.0);
        assert_eq!(state.device(0).lost_at(), Some(1.0));
        state.device_mut(0).kill(0.5);
        assert_eq!(state.device(0).lost_at(), Some(0.5));
    }

    #[test]
    fn random_plans_are_deterministic_and_spare_device_zero() {
        for seed in 0..50u64 {
            let a = FaultPlan::random(seed, 4, 2.0);
            let b = FaultPlan::random(seed, 4, 2.0);
            assert_eq!(a, b, "seed {seed} not reproducible");
            assert!(
                a.events()
                    .iter()
                    .all(|e| !(e.device == 0 && e.kind == FaultKind::Loss)),
                "seed {seed} killed device 0"
            );
            for e in a.events() {
                assert!(e.at_seconds >= 0.0 && e.at_seconds < 2.0);
                assert!(e.device < 4);
                if let FaultKind::Degrade { factor } = e.kind {
                    assert!(factor > 0.0 && factor <= 1.0);
                }
            }
        }
        // Different seeds eventually differ.
        assert_ne!(
            FaultPlan::random(1, 4, 2.0),
            FaultPlan::random(2, 4, 2.0),
            "seeds 1 and 2 produced identical plans"
        );
    }

    #[test]
    fn out_of_range_events_are_ignored_by_state() {
        let plan = FaultPlan::new().loss(7, 0.0);
        let state = plan.state(2);
        assert!(!state.device(0).is_lost(1.0));
        assert!(!state.device(1).is_lost(1.0));
        assert_eq!(plan.max_device(), Some(7));
    }

    #[test]
    fn counters_merge_and_zero_check() {
        let mut a = FaultCounters::default();
        assert!(a.is_zero());
        a.merge(&FaultCounters {
            retries: 1,
            faults: 2,
            migrated_batches: 3,
        });
        a.merge(&FaultCounters {
            retries: 1,
            faults: 0,
            migrated_batches: 0,
        });
        assert_eq!(a.retries, 2);
        assert_eq!(a.faults, 2);
        assert_eq!(a.migrated_batches, 3);
        assert!(!a.is_zero());
    }
}
