//! Device and platform profiles matching the paper's two systems (§III).
//!
//! Throughputs are calibrated so the *relative* speeds match the paper's
//! observations, which is what the shape reproduction needs:
//!
//! * REPUTE-all (CPU + 2 GPUs) gains ≈2× over REPUTE-cpu (§IV, Table II),
//!   so the two GTX 590s together roughly match the i7-2600;
//! * REPUTE-HiKey is ≈2.3× slower than REPUTE-cpu at (n=100, δ=3)
//!   (Tables I and III), so the HiKey clusters sum to ≈0.43× of the i7;
//! * the A73 "big" cluster is ≈2.3× the A53 "LITTLE" cluster, the usual
//!   big.LITTLE ratio at these clocks.
//!
//! Power numbers come straight from Table IV: System 1 idles at 160 W and
//! REPUTE-cpu draws 354 W (CPU ≈ 194 W active); REPUTE-all draws ≈ 455 W
//! (≈ 50 W per busy GPU). System 2 idles at 3.5 W and draws ≈ 8 W when
//! mapping (≈ 3 W big cluster, ≈ 1.5 W LITTLE cluster).

use crate::device::{DeviceKind, DeviceProfile};
use crate::platform::Platform;

/// Intel Core i7-2600 @ 3.40 GHz, 16 GB RAM (System 1 host CPU).
pub fn intel_i7_2600() -> DeviceProfile {
    DeviceProfile::new(
        "Intel Core i7-2600",
        DeviceKind::Cpu,
        8, // 4 cores / 8 threads
        1.0e9,
        16 << 30,
        194.0,
    )
}

/// One GeForce GTX 590 with 1.5 GB of usable RAM (System 1 carries two).
pub fn gtx590() -> DeviceProfile {
    DeviceProfile::new(
        "GeForce GTX 590",
        DeviceKind::Gpu,
        512,
        0.55e9,
        (3 << 30) / 2, // 1.5 GB
        50.0,
    )
    // Fermi-era SM: 48 KiB shared/local memory per unit; needs many
    // resident work-items to hide memory latency. This is the lever
    // behind the paper's Figs. 3–4: kernel footprint ↔ GPU occupancy.
    .with_occupancy_model(48 << 10, 64)
}

/// The Cortex-A73 "big" MP4 cluster of the HiKey970 (up to 2.36 GHz).
pub fn cortex_a73_cluster() -> DeviceProfile {
    DeviceProfile::new(
        "ARM Cortex-A73 MP4",
        DeviceKind::BigCluster,
        4,
        0.30e9,
        6 << 30, // shared 6 GB
        3.0,
    )
}

/// The Cortex-A53 "LITTLE" MP4 cluster of the HiKey970 (up to 1.8 GHz).
pub fn cortex_a53_cluster() -> DeviceProfile {
    DeviceProfile::new(
        "ARM Cortex-A53 MP4",
        DeviceKind::LittleCluster,
        4,
        0.13e9,
        6 << 30,
        1.5,
    )
}

/// System 1 of the paper: i7-2600 + 2 × GTX 590, 160 W idle.
pub fn system1() -> Platform {
    Platform::new(
        "System 1 (i7-2600 + 2x GTX 590)",
        160.0,
        vec![intel_i7_2600(), gtx590(), gtx590()],
    )
}

/// System 1 restricted to its CPU (the homogeneous scenario, §III-A).
pub fn system1_cpu_only() -> Platform {
    Platform::new("System 1 (CPU only)", 160.0, vec![intel_i7_2600()])
}

/// System 2 of the paper: HiKey970 embedded SoC, 3.5 W idle.
pub fn system2_hikey970() -> Platform {
    Platform::new(
        "System 2 (HiKey970)",
        3.5,
        vec![cortex_a73_cluster(), cortex_a53_cluster()],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_throughputs_match_paper_shapes() {
        let cpu = intel_i7_2600().throughput();
        let gpu2 = 2.0 * gtx590().throughput();
        // Two GPUs ≈ one CPU (REPUTE-all ≈ 2× REPUTE-cpu).
        let ratio = gpu2 / cpu;
        assert!((0.8..=1.4).contains(&ratio), "gpu pair / cpu = {ratio}");
        // HiKey970 total ≈ 0.4–0.5× of the i7.
        let hikey = cortex_a73_cluster().throughput() + cortex_a53_cluster().throughput();
        let ratio = hikey / cpu;
        assert!((0.3..=0.6).contains(&ratio), "hikey / cpu = {ratio}");
    }

    #[test]
    fn platform_construction() {
        assert_eq!(system1().devices().len(), 3);
        assert_eq!(system1_cpu_only().devices().len(), 1);
        assert_eq!(system2_hikey970().devices().len(), 2);
        assert_eq!(system1().idle_power_w(), 160.0);
        assert_eq!(system2_hikey970().idle_power_w(), 3.5);
    }

    #[test]
    fn gpu_memory_matches_paper() {
        // 1.5 GB per GTX 590, so ¼-RAM cap is 384 MiB.
        assert_eq!(gtx590().max_alloc_bytes(), 384 << 20);
    }

    #[test]
    fn active_power_sums_match_table_iv() {
        // REPUTE-cpu on System 1: 160 idle + 194 CPU ≈ 354 W.
        let p = 160.0 + intel_i7_2600().active_power_w();
        assert!((p - 354.0).abs() < 1.0);
        // REPUTE-all: + two GPUs ≈ 454 W.
        let p = p + 2.0 * gtx590().active_power_w();
        assert!((p - 454.0).abs() < 1.0);
        // HiKey970 under load ≈ 8 W.
        let p = 3.5 + cortex_a73_cluster().active_power_w() + cortex_a53_cluster().active_power_w();
        assert!((p - 8.0).abs() < 0.1);
    }
}
