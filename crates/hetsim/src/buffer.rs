//! Device buffer allocation under OpenCL 1.2 restrictions.
//!
//! §III of the paper: OpenCL 1.2 "does not permit dynamic memory
//! allocation" (outputs per read must be sized beforehand) and caps any
//! single variable at a quarter of device RAM. REPUTE consequently reports
//! only the *first-n* mapping locations and, when a batch would exceed the
//! cap, "runs the kernel multiple times with smaller read sets" (§IV).
//! [`Buffer`] models exactly these rules; the core crate sizes its output
//! slots and chunks its batches through it.

use std::error::Error;
use std::fmt;

use crate::device::DeviceProfile;

/// Error returned when an allocation violates a device restriction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocError {
    requested: usize,
    limit: usize,
    device: String,
}

impl AllocError {
    /// Bytes that were requested.
    pub fn requested(&self) -> usize {
        self.requested
    }

    /// The device's single-allocation limit in bytes.
    pub fn limit(&self) -> usize {
        self.limit
    }
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "allocation of {} bytes exceeds the quarter-RAM limit of {} bytes on {}",
            self.requested, self.limit, self.device
        )
    }
}

impl Error for AllocError {}

/// A simulated device buffer.
///
/// # Example
///
/// ```
/// use repute_hetsim::{profiles, Buffer};
///
/// let gpu = profiles::gtx590();
/// let ok = Buffer::allocate(&gpu, 1 << 20);
/// assert!(ok.is_ok());
/// let too_big = Buffer::allocate(&gpu, gpu.max_alloc_bytes() + 1);
/// assert!(too_big.is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Buffer {
    bytes: usize,
}

impl Buffer {
    /// Allocates `bytes` on `device`, enforcing the ¼-RAM rule.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] when `bytes` exceeds
    /// [`DeviceProfile::max_alloc_bytes`].
    pub fn allocate(device: &DeviceProfile, bytes: usize) -> Result<Buffer, AllocError> {
        let limit = device.max_alloc_bytes();
        if bytes > limit {
            return Err(AllocError {
                requested: bytes,
                limit,
                device: device.name().to_string(),
            });
        }
        Ok(Buffer { bytes })
    }

    /// Size of the buffer in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Largest number of `item_bytes`-sized records a single buffer can
    /// hold on `device` — the planning primitive for batch chunking.
    pub fn max_items(device: &DeviceProfile, item_bytes: usize) -> usize {
        if item_bytes == 0 {
            return usize::MAX;
        }
        device.max_alloc_bytes() / item_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceKind;

    fn device() -> DeviceProfile {
        DeviceProfile::new("t", DeviceKind::Gpu, 1, 1.0, 4096, 1.0)
    }

    #[test]
    fn within_limit_succeeds() {
        let b = Buffer::allocate(&device(), 1024).unwrap();
        assert_eq!(b.bytes(), 1024);
        assert!(Buffer::allocate(&device(), 0).is_ok());
    }

    #[test]
    fn beyond_limit_fails_with_context() {
        let err = Buffer::allocate(&device(), 1025).unwrap_err();
        assert_eq!(err.requested(), 1025);
        assert_eq!(err.limit(), 1024);
        assert!(err.to_string().contains("quarter-RAM"));
    }

    #[test]
    fn max_items_plans_batches() {
        assert_eq!(Buffer::max_items(&device(), 100), 10);
        assert_eq!(Buffer::max_items(&device(), 0), usize::MAX);
    }
}
