//! Device profiles: the compute/memory/power description of one OpenCL
//! device.

/// What kind of silicon a device models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// A general-purpose CPU.
    Cpu,
    /// A discrete GPU.
    Gpu,
    /// The "big" cluster of a big.LITTLE SoC.
    BigCluster,
    /// The "LITTLE" cluster of a big.LITTLE SoC.
    LittleCluster,
}

impl DeviceKind {
    /// Stable lower-case name used by telemetry exports.
    pub fn as_str(self) -> &'static str {
        match self {
            DeviceKind::Cpu => "cpu",
            DeviceKind::Gpu => "gpu",
            DeviceKind::BigCluster => "big",
            DeviceKind::LittleCluster => "little",
        }
    }
}

/// The static description of one simulated device.
///
/// `throughput` is calibrated in *work units per second*, where one work
/// unit is one substrate operation of the mapping stack (an FM-Index
/// left-extension, a DP cell, or a 64-cell bit-vector word update — these
/// are deliberately comparable integer-dominated operations, which is the
/// paper's argument for why simple embedded cores suit genomics, §I).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    name: String,
    kind: DeviceKind,
    compute_units: usize,
    throughput: f64,
    memory_bytes: usize,
    active_power_w: f64,
    /// Private/local memory per compute unit, in bytes.
    private_memory_bytes: usize,
    /// Resident work-items per compute unit the device needs to reach
    /// peak throughput (latency hiding). 1 = occupancy-insensitive (CPU).
    latency_hiding: u32,
}

impl DeviceProfile {
    /// Creates a device profile.
    ///
    /// # Panics
    ///
    /// Panics if `compute_units == 0`, `throughput <= 0`,
    /// `memory_bytes == 0` or `active_power_w < 0`.
    pub fn new(
        name: impl Into<String>,
        kind: DeviceKind,
        compute_units: usize,
        throughput: f64,
        memory_bytes: usize,
        active_power_w: f64,
    ) -> DeviceProfile {
        assert!(compute_units > 0, "device needs at least one compute unit");
        assert!(throughput > 0.0, "throughput must be positive");
        assert!(memory_bytes > 0, "device needs memory");
        assert!(active_power_w >= 0.0, "power cannot be negative");
        DeviceProfile {
            name: name.into(),
            kind,
            compute_units,
            throughput,
            memory_bytes,
            active_power_w,
            private_memory_bytes: usize::MAX,
            latency_hiding: 1,
        }
    }

    /// Configures the occupancy model: `private_memory_bytes` of
    /// private/local memory per compute unit, and the number of resident
    /// work-items per unit needed to hide memory latency (GPUs need many;
    /// CPUs run at peak with one).
    ///
    /// A kernel whose per-item private footprint is `b` bytes keeps
    /// `private_memory_bytes / b` items resident per unit; when that
    /// falls below `latency_hiding`, throughput degrades proportionally —
    /// the §IV mechanism behind the paper's Figs. 3–4 ("large k-mer
    /// lengths reduce the memory footprint of the kernel allowing more
    /// workgroups to be processed by the GPU").
    ///
    /// # Panics
    ///
    /// Panics if `private_memory_bytes == 0` or `latency_hiding == 0`.
    pub fn with_occupancy_model(
        mut self,
        private_memory_bytes: usize,
        latency_hiding: u32,
    ) -> DeviceProfile {
        assert!(private_memory_bytes > 0, "private memory must be positive");
        assert!(latency_hiding > 0, "latency hiding factor must be positive");
        self.private_memory_bytes = private_memory_bytes;
        self.latency_hiding = latency_hiding;
        self
    }

    /// Throughput factor in `(0, 1]` for a kernel needing
    /// `private_bytes_per_item` of private memory per work-item.
    pub fn occupancy(&self, private_bytes_per_item: usize) -> f64 {
        if private_bytes_per_item == 0 || self.latency_hiding == 1 {
            return 1.0;
        }
        let resident = (self.private_memory_bytes / private_bytes_per_item).max(1);
        (resident as f64 / f64::from(self.latency_hiding)).min(1.0)
    }

    /// Seconds this device needs for `work` units of a kernel with the
    /// given per-item private footprint.
    pub fn seconds_for_with_footprint(&self, work: u64, private_bytes_per_item: usize) -> f64 {
        work as f64 / (self.throughput * self.occupancy(private_bytes_per_item))
    }

    /// Device name, e.g. `"GeForce GTX 590"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// What kind of device this is.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// Number of parallel compute units (cores / SM groups).
    pub fn compute_units(&self) -> usize {
        self.compute_units
    }

    /// Work units per second across the whole device.
    pub fn throughput(&self) -> f64 {
        self.throughput
    }

    /// Device RAM in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.memory_bytes
    }

    /// Incremental power draw when busy, in watts (above system idle).
    pub fn active_power_w(&self) -> f64 {
        self.active_power_w
    }

    /// OpenCL 1.2 restriction (b) of §III: the largest single allocation
    /// is a quarter of device RAM.
    pub fn max_alloc_bytes(&self) -> usize {
        self.memory_bytes / 4
    }

    /// Seconds this device needs for `work` units.
    pub fn seconds_for(&self, work: u64) -> f64 {
        work as f64 / self.throughput
    }

    /// A DVFS-scaled variant of this device running at `frequency` of its
    /// nominal clock (in `(0, 1]`).
    ///
    /// Throughput scales linearly with frequency; active power follows
    /// the classic `P ∝ f·V²` with voltage roughly proportional to
    /// frequency in the DVFS range, i.e. `P ∝ f³` — the model behind the
    /// race-to-idle ablation (the HiKey970's clusters are specified "up
    /// to" their clocks for exactly this reason).
    ///
    /// # Panics
    ///
    /// Panics if `frequency` is outside `(0, 1]`.
    pub fn scaled(&self, frequency: f64) -> DeviceProfile {
        assert!(
            frequency > 0.0 && frequency <= 1.0,
            "frequency fraction {frequency} outside (0, 1]"
        );
        DeviceProfile {
            name: format!("{} @{:.0}%", self.name, frequency * 100.0),
            throughput: self.throughput * frequency,
            active_power_w: self.active_power_w * frequency.powi(3),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceProfile {
        DeviceProfile::new("test", DeviceKind::Cpu, 4, 1e9, 16 << 30, 100.0)
    }

    #[test]
    fn accessors() {
        let d = device();
        assert_eq!(d.name(), "test");
        assert_eq!(d.kind(), DeviceKind::Cpu);
        assert_eq!(d.compute_units(), 4);
        assert_eq!(d.memory_bytes(), 16 << 30);
        assert_eq!(d.active_power_w(), 100.0);
    }

    #[test]
    fn quarter_ram_rule() {
        assert_eq!(device().max_alloc_bytes(), 4 << 30);
    }

    #[test]
    fn time_model_is_linear() {
        let d = device();
        assert_eq!(d.seconds_for(0), 0.0);
        assert!((d.seconds_for(2_000_000_000) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn occupancy_model() {
        let d = device(); // latency_hiding 1 by default
        assert_eq!(d.occupancy(1 << 20), 1.0);
        let gpu = device().with_occupancy_model(48 << 10, 64);
        // 1 KiB per item → 48 resident < 64 wanted → 75 % throughput.
        assert!((gpu.occupancy(1 << 10) - 0.75).abs() < 1e-12);
        // Tiny footprint → full occupancy; zero footprint = insensitive.
        assert_eq!(gpu.occupancy(64), 1.0);
        assert_eq!(gpu.occupancy(0), 1.0);
        // Gigantic footprint floors at one resident item per unit.
        assert!((gpu.occupancy(1 << 30) - 1.0 / 64.0).abs() < 1e-12);
        // Time model composes.
        let slow = gpu.seconds_for_with_footprint(1_000_000_000, 1 << 10);
        let fast = gpu.seconds_for_with_footprint(1_000_000_000, 64);
        assert!(slow > fast);
    }

    #[test]
    fn dvfs_scaling_model() {
        let d = device();
        let half = d.scaled(0.5);
        assert!((half.throughput() - 0.5e9).abs() < 1.0);
        // P ∝ f³: half frequency → one eighth the active power.
        assert!((half.active_power_w() - 12.5).abs() < 1e-9);
        assert!(half.name().contains("@50%"));
        // Energy per work unit = P/throughput: scaling down wins on
        // active energy (f³/f = f²)…
        let energy_full = d.active_power_w() / d.throughput();
        let energy_half = half.active_power_w() / half.throughput();
        assert!(energy_half < energy_full);
        let full = d.scaled(1.0);
        assert_eq!(full.throughput(), d.throughput());
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn bad_frequency_rejected() {
        let _ = device().scaled(0.0);
    }

    #[test]
    #[should_panic(expected = "throughput")]
    fn zero_throughput_rejected() {
        let _ = DeviceProfile::new("bad", DeviceKind::Cpu, 1, 0.0, 1, 0.0);
    }

    #[test]
    #[should_panic(expected = "compute unit")]
    fn zero_units_rejected() {
        let _ = DeviceProfile::new("bad", DeviceKind::Cpu, 0, 1.0, 1, 0.0);
    }
}
