//! Calibration of the pre-alignment filter's kernel cost against the
//! platform simulator's time model.
//!
//! The prefilter crate reports its work in the same currency the Myers
//! verifier charges to `MapOutput.work` — one unit ≈ one 64-lane word
//! operation — so [`DeviceProfile::seconds_for`] converts both without
//! any special-casing. This test checks the calibration holds up on a
//! junk-heavy workload: the device seconds spent filtering must be
//! *less* than the device seconds of verification the rejections save,
//! on every profiled device class. If a filter change breaks that
//! inequality, enabling the filter would slow the simulated platform
//! down and the calibration (not just the tuning) is wrong.

use repute_align::verify_counting;
use repute_genome::rng::StdRng;
use repute_genome::synth::ReferenceBuilder;
use repute_hetsim::{profiles, DeviceProfile};
use repute_prefilter::{Candidate, Chain, PreFilter, QgramBins, QgramFilter, ShdFilter};

const DELTA: u32 = 5;
const READ_LEN: usize = 100;

struct Workload {
    codes: Vec<u8>,
    bins: QgramBins,
    /// (read, window_start, is_planted)
    cases: Vec<(Vec<u8>, usize, bool)>,
}

fn workload() -> Workload {
    let reference = ReferenceBuilder::new(16_384).seed(0xCAFE).build();
    let codes = reference.to_codes();
    let bins = QgramBins::build_default(&codes);
    let mut rng = StdRng::seed_from_u64(0xD1CE);
    let mut cases = Vec::new();
    // Junk-heavy mix, like the candidate stream of a repetitive
    // reference: 8 random reads per planted one.
    for i in 0..180 {
        let start = rng.gen_range(0..codes.len() - READ_LEN - 2 * DELTA as usize);
        if i % 9 == 0 {
            let mut read =
                codes[start + DELTA as usize..start + DELTA as usize + READ_LEN].to_vec();
            for _ in 0..rng.gen_range(0..=DELTA) {
                let p = rng.gen_range(0..read.len());
                read[p] = (read[p] + rng.gen_range(1..4u8)) % 4;
            }
            cases.push((read, start, true));
        } else {
            let read: Vec<u8> = (0..READ_LEN).map(|_| rng.gen_range(0..4u8)).collect();
            cases.push((read, start, false));
        }
    }
    Workload { codes, bins, cases }
}

/// Runs the chained filter over the workload, returning
/// `(filter_words_spent, verify_words_saved, true_candidates_rejected)`.
fn run_filtered(w: &Workload) -> (u64, u64, u64) {
    let shd = ShdFilter::new();
    let qgram = QgramFilter::new(&w.bins);
    let chain = Chain::new(vec![&qgram, &shd]);
    let mut spent = 0u64;
    let mut saved = 0u64;
    let mut true_rejects = 0u64;
    for (read, start, planted) in &w.cases {
        let end = (*start + read.len() + 2 * DELTA as usize).min(w.codes.len());
        let window = &w.codes[*start..end];
        let verdict = chain.examine(&Candidate {
            read,
            window,
            window_start: *start,
            delta: DELTA,
        });
        spent += verdict.cost_words;
        let (hit, cost) = verify_counting(read, window, DELTA);
        if !verdict.accept {
            saved += cost.word_updates;
            if hit.is_some() {
                true_rejects += 1;
            }
        }
        if *planted {
            assert!(hit.is_some(), "planted case must verify");
        }
    }
    (spent, saved, true_rejects)
}

fn every_device() -> Vec<DeviceProfile> {
    vec![
        profiles::intel_i7_2600(),
        profiles::gtx590(),
        profiles::cortex_a73_cluster(),
        profiles::cortex_a53_cluster(),
    ]
}

#[test]
fn filter_seconds_stay_below_saved_verification_seconds() {
    let w = workload();
    let (spent, saved, true_rejects) = run_filtered(&w);
    assert_eq!(true_rejects, 0, "soundness: a verifiable case was rejected");
    assert!(saved > 0, "junk workload produced no rejections");
    for device in every_device() {
        let filter_s = device.seconds_for(spent);
        let saved_s = device.seconds_for(saved);
        assert!(
            filter_s < saved_s,
            "{}: filtering costs {filter_s:.9} s but only saves {saved_s:.9} s",
            device.name()
        );
    }
}

#[test]
fn net_kernel_time_improves_with_filtration() {
    // End-to-end on one device: total simulated kernel seconds of
    // (filter + surviving verifications) vs (verify everything).
    let w = workload();
    let shd = ShdFilter::new();
    let qgram = QgramFilter::new(&w.bins);
    let chain = Chain::new(vec![&qgram, &shd]);
    let mut unfiltered_words = 0u64;
    let mut filtered_words = 0u64;
    for (read, start, _) in &w.cases {
        let end = (*start + read.len() + 2 * DELTA as usize).min(w.codes.len());
        let window = &w.codes[*start..end];
        let (_, cost) = verify_counting(read, window, DELTA);
        unfiltered_words += cost.word_updates;
        let verdict = chain.examine(&Candidate {
            read,
            window,
            window_start: *start,
            delta: DELTA,
        });
        filtered_words += verdict.cost_words;
        if verdict.accept {
            filtered_words += cost.word_updates;
        }
    }
    let gpu = profiles::gtx590();
    assert!(
        gpu.seconds_for(filtered_words) < gpu.seconds_for(unfiltered_words),
        "filtered pipeline must be cheaper: {filtered_words} vs {unfiltered_words} words"
    );
}
