//! Sparse (non-covering) optimal seed selection — the original OSS
//! semantics.
//!
//! The paper's Fig. 1/2 partition the read completely: δ+1 k-mers tile
//! all `n` bases. The original Optimal Seed Solver is more general — its
//! δ+1 seeds must be non-overlapping but may leave gaps. Sensitivity is
//! unchanged (δ errors can damage at most δ of δ+1 *disjoint* seeds, so
//! one stays exact), and the optimum can only improve: every covering
//! partition is also a sparse selection. The ablation bench quantifies
//! how much the gaps buy; this reproduction keeps the covering DP
//! ([`crate::oss`]) as the primary implementation because it is what the
//! paper describes and demonstrates.

use crate::freq::{FreqTable, MAX_EXTRA};
use crate::oss::{Exploration, OssParams};
use crate::seed::{Seed, SeedSelection, SelectionStats};

/// Saturation cap for accumulated candidate counts.
const COST_CAP: u32 = u32::MAX / 2;

/// Result of a sparse selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseOutcome {
    /// The chosen seeds (non-overlapping, possibly with gaps); not a
    /// partition, so [`SeedSelection::is_valid_partition`] does not apply.
    pub selection: SeedSelection,
    /// Substrate work spent.
    pub stats: SelectionStats,
}

/// The sparse optimal seed solver.
///
/// # Example
///
/// ```
/// use repute_genome::synth::ReferenceBuilder;
/// use repute_index::FmIndex;
/// use repute_filter::{freq::FreqTable, oss::OssParams, sparse::SparseSolver};
///
/// let reference = ReferenceBuilder::new(20_000).seed(4).build();
/// let fm = FmIndex::build(&reference);
/// let read = reference.subseq(700..800).to_codes();
/// let params = OssParams::new(5, 12).expect("valid");
/// // The sparse table needs full-exploration columns (seeds may end
/// // anywhere).
/// use repute_filter::oss::Exploration;
/// let full = params.exploration(Exploration::Full);
/// let table = FreqTable::build(&fm, &read, &full);
/// let outcome = SparseSolver::new(full).select(&read, &table);
/// assert_eq!(outcome.selection.seeds.len(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparseSolver {
    params: OssParams,
}

impl SparseSolver {
    /// Creates a solver. Sparse seeds can end anywhere, so the parameters
    /// are coerced to [`Exploration::Full`] — frequency tables must be
    /// built with [`SparseSolver::params`] (or full-exploration params) to
    /// be accepted by [`SparseSolver::select`].
    pub fn new(params: OssParams) -> SparseSolver {
        SparseSolver {
            params: params.exploration(Exploration::Full),
        }
    }

    /// The (full-exploration) parameters tables must be built with.
    pub fn params(&self) -> &OssParams {
        &self.params
    }

    /// Selects δ+1 non-overlapping seeds minimising the total candidate
    /// count (gaps allowed).
    ///
    /// # Panics
    ///
    /// Panics if the read cannot host δ+1 seeds of `s_min`, or the table
    /// was built for different parameters.
    pub fn select(&self, read: &[u8], table: &FreqTable) -> SparseOutcome {
        let n = read.len();
        let p = &self.params;
        assert!(
            p.feasible_for(n),
            "read of length {n} cannot host {} seeds of at least {}",
            p.seed_count(),
            p.s_min()
        );
        assert!(
            table.read_len() == n && p.table_compatible(table.params()),
            "frequency table mismatch"
        );
        let seeds = p.seed_count();
        let s_min = p.s_min();
        let max_len = s_min + MAX_EXTRA;

        // opt[t][p]: minimal total using t+1 seeds inside the prefix of
        // length p (seeds disjoint, gaps free). Length-capped transitions
        // keep this O(x · n · MAX_EXTRA).
        const NONE: u16 = u16::MAX;
        let mut dp_cells = 0u64;
        let width = n + 1;
        let mut opt = vec![COST_CAP; seeds * width];
        // choice[t][p] = seed length used at p (0 = carried from p−1).
        let mut choice = vec![NONE; seeds * width];
        for t in 0..seeds {
            for pl in (s_min * (t + 1))..=n {
                // Carry: position pl-1's best also stands at pl.
                let mut best = opt[t * width + pl - 1];
                let mut best_len = 0u16;
                let lmax = max_len.min(pl - s_min * t);
                for len in s_min..=lmax {
                    let left = if t == 0 {
                        0
                    } else {
                        opt[(t - 1) * width + (pl - len)]
                    };
                    dp_cells += 1;
                    if left >= best {
                        continue;
                    }
                    let cost = left.saturating_add(table.count(pl - len, pl)).min(COST_CAP);
                    if cost < best {
                        best = cost;
                        best_len = len as u16;
                    }
                }
                opt[t * width + pl] = best;
                choice[t * width + pl] = best_len;
            }
        }

        // Backtrack.
        let mut seeds_rev: Vec<Seed> = Vec::with_capacity(seeds);
        let mut pl = n;
        for t in (0..seeds).rev() {
            // Walk left over carried positions.
            while choice[t * width + pl] == 0 {
                pl -= 1;
            }
            let len = choice[t * width + pl];
            assert_ne!(len, NONE, "sparse DP backtrack left the table");
            let len = len as usize;
            let start = pl - len;
            let interval = table.interval(start, pl);
            let anchor = start.max(pl.saturating_sub(s_min + MAX_EXTRA));
            seeds_rev.push(Seed {
                start,
                len,
                count: interval.map_or(0, |iv| iv.width()),
                interval,
                anchor,
            });
            pl = start;
        }
        seeds_rev.reverse();

        SparseOutcome {
            selection: SeedSelection { seeds: seeds_rev },
            stats: SelectionStats {
                extend_ops: table.extend_ops(),
                dp_cells,
                peak_bytes: opt.len() * 4 + choice.len() * 2,
            },
        }
    }
}

impl crate::SeedSelector for SparseSolver {
    fn strategy_name(&self) -> &str {
        "oss-sparse"
    }

    fn select_seeds(
        &self,
        read: &[u8],
        fm: &repute_index::FmIndex,
    ) -> (crate::SeedSelection, crate::SelectionStats) {
        let table = FreqTable::build(fm, read, &self.params);
        let outcome = self.select(read, &table);
        (outcome.selection, outcome.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oss::OssSolver;
    use repute_genome::synth::{ReferenceBuilder, RepeatFamily};
    use repute_genome::DnaSeq;
    use repute_index::FmIndex;

    fn setup() -> (DnaSeq, FmIndex) {
        let reference = ReferenceBuilder::new(80_000)
            .seed(901)
            .repeat_families(vec![RepeatFamily {
                unit_len: 120,
                copies: 80,
                divergence: 0.01,
            }])
            .build();
        let fm = FmIndex::build(&reference);
        (reference, fm)
    }

    #[test]
    fn seeds_are_disjoint_ordered_and_long_enough() {
        let (reference, fm) = setup();
        let full = OssParams::new(5, 12)
            .unwrap()
            .exploration(Exploration::Full);
        let solver = SparseSolver::new(full);
        for off in (0..40_000).step_by(3301) {
            let read = reference.subseq(off..off + 100).to_codes();
            let table = FreqTable::build(&fm, &read, &full);
            let outcome = solver.select(&read, &table);
            let seeds = &outcome.selection.seeds;
            assert_eq!(seeds.len(), 6);
            for w in seeds.windows(2) {
                assert!(
                    w[0].end() <= w[1].start,
                    "overlap at offset {off}: {seeds:?}"
                );
            }
            assert!(seeds.iter().all(|s| s.len >= 12));
            assert!(seeds.last().unwrap().end() <= 100);
        }
    }

    #[test]
    fn sparse_never_loses_to_covering() {
        // Every covering partition is a sparse selection, so the sparse
        // optimum is at most the covering optimum (under the shared
        // capped cost function).
        let (reference, fm) = setup();
        let covering = OssParams::new(5, 12).unwrap();
        let full = covering.exploration(Exploration::Full);
        for off in (0..40_000).step_by(2707) {
            let read = reference.subseq(off..off + 100).to_codes();
            let cover_table = FreqTable::build(&fm, &read, &covering);
            let sparse_table = FreqTable::build(&fm, &read, &full);
            let cover = OssSolver::new(covering).select(&read, &cover_table);
            let sparse = SparseSolver::new(full).select(&read, &sparse_table);
            assert!(
                sparse.selection.total_candidates() <= cover.selection.total_candidates(),
                "offset {off}: sparse {} > covering {}",
                sparse.selection.total_candidates(),
                cover.selection.total_candidates()
            );
        }
    }

    #[test]
    fn gaps_avoid_repeat_stretches() {
        // A read half inside a dense repeat: the sparse solver can put
        // every seed in the unique half, paying (near) zero candidates.
        let (reference, fm) = setup();
        let codes = reference.to_codes();
        let full = OssParams::new(3, 10)
            .unwrap()
            .exploration(Exploration::Full);
        // Find a read whose left half is very repetitive.
        for off in (0..60_000).step_by(509) {
            let read = &codes[off..off + 100];
            let table = FreqTable::build(&fm, read, &full);
            let left_heavy = table.count(0, 10) > 50 && table.count(50, 60) <= 2;
            if !left_heavy {
                continue;
            }
            let sparse = SparseSolver::new(full).select(read, &table);
            // Gaps let the solver dodge the repeat entirely: every chosen
            // seed should be (nearly) unique even though the read's left
            // half is drowning in candidates.
            assert!(
                sparse.selection.total_candidates() <= 2 * sparse.selection.seeds.len() as u64,
                "sparse seeds did not avoid the repeat: {:?}",
                sparse.selection.seeds
            );
            return;
        }
        // No such read in this reference build — vacuously fine.
    }

    #[test]
    #[should_panic(expected = "cannot host")]
    fn infeasible_read_rejected() {
        let (reference, fm) = setup();
        let full = OssParams::new(7, 15)
            .unwrap()
            .exploration(Exploration::Full);
        let read = reference.subseq(0..100).to_codes();
        let table = FreqTable::build(&fm, &read, &full);
        let _ = SparseSolver::new(full).select(&read, &table);
    }
}
