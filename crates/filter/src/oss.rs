//! Memory-optimised dynamic-programming seed selection.
//!
//! This is the paper's core contribution (§II-B): partition a read of
//! length `n` into δ+1 contiguous seeds, each at least `S_min` long, such
//! that the total number of candidate locations is minimal. The algorithm
//! runs δ iterations; iteration `t` computes, for every admissible prefix
//! length `p`, the best way to split that prefix into `t+1` seeds, reusing
//! iteration `t−1` (the "1st section" of the paper's Fig. 2) and adding
//! one more seed (the "2nd section"). Backtracking over the stored optimal
//! dividers recovers the full partition.
//!
//! Two departures from the original Optimal Seed Solver, both from the
//! paper, are implemented and ablatable via [`Exploration`]:
//!
//! * **restricted exploration space** — iteration `t` only considers
//!   prefix lengths in `[S_min·(t+1), n − S_min·(δ−t)]` (any other prefix
//!   cannot appear in a feasible solution), shrinking both DP time and the
//!   divider tables that must be kept for backtracking;
//! * **bit-width minimisation** — divider tables store `u16` positions and
//!   cost tables `u32` counts, the paper's "optimized the bitwidths of
//!   variables to reduce memory footprint".

use std::error::Error;
use std::fmt;

use crate::freq::FreqTable;
use crate::seed::{Seed, SeedSelection, SelectionStats};

/// Saturation cap for accumulated candidate counts.
const COST_CAP: u32 = u32::MAX / 2;

/// Which prefix lengths each DP iteration explores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Exploration {
    /// The paper's memory optimisation: only prefixes that can appear in a
    /// feasible δ+1 partition.
    #[default]
    Restricted,
    /// The original OSS behaviour: every prefix up to the full read, at
    /// each iteration (more DP cells and larger divider tables, identical
    /// result — kept for the ablation benches).
    Full,
}

/// Parameters of the DP filtration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OssParams {
    delta: u32,
    s_min: usize,
    exploration: Exploration,
    early_termination: bool,
}

/// Error returned for parameter combinations that cannot describe a
/// pigeonhole filtration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidParamsError {
    message: String,
}

impl fmt::Display for InvalidParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid filtration parameters: {}", self.message)
    }
}

impl Error for InvalidParamsError {}

impl OssParams {
    /// Creates parameters for `delta` errors and minimum seed length
    /// `s_min`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParamsError`] if `s_min == 0` or the partition
    /// arithmetic would overflow `u16` read positions.
    pub fn new(delta: u32, s_min: usize) -> Result<OssParams, InvalidParamsError> {
        if s_min == 0 {
            return Err(InvalidParamsError {
                message: "minimum seed length must be positive".into(),
            });
        }
        let seeds = delta as usize + 1;
        if s_min
            .checked_mul(seeds)
            .filter(|&v| v <= u16::MAX as usize)
            .is_none()
        {
            return Err(InvalidParamsError {
                message: format!("s_min {s_min} × {seeds} seeds exceeds the u16 position range"),
            });
        }
        Ok(OssParams {
            delta,
            s_min,
            exploration: Exploration::default(),
            early_termination: true,
        })
    }

    /// Switches the exploration space (see [`Exploration`]).
    pub fn exploration(mut self, exploration: Exploration) -> OssParams {
        self.exploration = exploration;
        self
    }

    /// The error budget δ.
    pub fn delta(&self) -> u32 {
        self.delta
    }

    /// Number of seeds, δ + 1.
    pub fn seed_count(&self) -> usize {
        self.delta as usize + 1
    }

    /// The minimum seed length `S_min`.
    pub fn s_min(&self) -> usize {
        self.s_min
    }

    /// The configured exploration space.
    pub fn exploration_mode(&self) -> Exploration {
        self.exploration
    }

    /// Enables or disables the Optimal Seed Solver's early divider
    /// termination and zero-cost early leave (both exact; on by default —
    /// the paper "retained all the optimizations proposed in" OSS).
    /// Turning them off is for the ablation benches.
    pub fn early_termination(mut self, enabled: bool) -> OssParams {
        self.early_termination = enabled;
        self
    }

    /// Returns `true` if a [`crate::freq::FreqTable`] built with `other`
    /// serves this solver: the table layout depends on δ, `S_min` and the
    /// exploration space, but not on the divider-scan optimisations.
    pub fn table_compatible(&self, other: &OssParams) -> bool {
        self.delta == other.delta
            && self.s_min == other.s_min
            && self.exploration == other.exploration
    }

    /// For a seed ending at read position `p` (read length `read_len`),
    /// the longest seed any DP iteration can ask about — or `None` when
    /// no iteration's window contains `p` (the column is dead space the
    /// restricted exploration never touches).
    ///
    /// Iteration `t` owns prefixes `[s_min·(t+1), n − s_min·(δ−t)]` and
    /// dividers `≥ s_min·t`, so a seed ending at `p` in iteration `t` has
    /// length at most `p − s_min·t`; the smallest valid `t` gives the
    /// bound. Under [`Exploration::Full`] every column is live with an
    /// unbounded (read-length) depth, as in the original OSS.
    pub fn max_seed_len_at(&self, p: usize, read_len: usize) -> Option<usize> {
        let s_min = self.s_min;
        let delta = self.delta as usize;
        if p < s_min || p > read_len {
            return None;
        }
        if matches!(self.exploration, Exploration::Full) {
            return Some(p);
        }
        // Smallest t with p ≤ n − s_min·(δ − t).
        let deficit = (p + s_min * delta).saturating_sub(read_len);
        let t_min = deficit.div_ceil(s_min);
        // Also need p ≥ s_min·(t+1), i.e. t ≤ p/s_min − 1.
        if t_min + 1 > p / s_min || t_min > delta {
            return None;
        }
        if t_min == 0 {
            // Base case: only the prefix seed [0..p] itself.
            Some(p)
        } else {
            Some(p - s_min * t_min)
        }
    }

    /// Returns `true` if a read of `read_len` bases can be partitioned
    /// into δ+1 seeds of at least `S_min`.
    pub fn feasible_for(&self, read_len: usize) -> bool {
        read_len >= self.s_min * self.seed_count() && read_len <= u16::MAX as usize
    }

    /// Estimated working-memory bytes of the DP for one read: the two
    /// live cost rows (`u32`) plus the δ divider tables (`u16`) kept for
    /// backtracking. This is the quantity the restricted exploration
    /// space shrinks — and, through GPU occupancy, the §IV explanation of
    /// why the paper's mapping time depends on `S_min` (Fig. 4).
    ///
    /// Returns 0 for infeasible reads.
    pub fn dp_footprint_bytes(&self, read_len: usize) -> usize {
        if !self.feasible_for(read_len) {
            return 0;
        }
        let delta = self.delta as usize;
        let mut divider_entries = 0usize;
        let mut max_window = 0usize;
        for t in 1..=delta {
            let lo = self.s_min * (t + 1);
            let hi = match self.exploration {
                Exploration::Restricted => read_len - self.s_min * (delta - t),
                Exploration::Full => read_len,
            };
            let width = hi - lo + 1;
            divider_entries += width;
            max_window = max_window.max(width);
        }
        let base_width = match self.exploration {
            Exploration::Restricted => read_len - self.s_min * delta - self.s_min + 1,
            Exploration::Full => read_len - self.s_min + 1,
        };
        max_window = max_window.max(base_width);
        2 * max_window * 4 + divider_entries * 2
    }
}

/// Result of a selection call: the chosen seeds plus cost accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionOutcome {
    /// The chosen partition.
    pub selection: SeedSelection,
    /// Substrate work and memory spent choosing it.
    pub stats: SelectionStats,
}

impl SelectionOutcome {
    /// Records the DP-side work into a per-read metric record: the cells
    /// the solver filled and the seeds it chose. The FM extensions in
    /// `stats.extend_ops` are deliberately *not* added here — they belong
    /// to the [`FreqTable`](crate::freq::FreqTable) that performed them
    /// (see [`crate::freq::FreqTable::record_metrics`]), and counting them
    /// in both places would double-book the filtration stage.
    pub fn record_metrics(&self, metrics: &mut repute_obs::MapMetrics) {
        metrics.dp_cells += self.stats.dp_cells;
        metrics.seeds_selected += self.selection.seeds.len() as u64;
    }
}

/// Step-by-step record of one DP run, for the paper's Fig. 2.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OssTrace {
    /// Per-iteration divider decisions: `iterations[t]` holds
    /// `(prefix_len, divider, cost)` for each explored prefix.
    pub iterations: Vec<Vec<(usize, usize, u32)>>,
    /// The dividers recovered by backtracking (positions between seeds).
    pub dividers: Vec<usize>,
}

/// The memory-optimised DP seed selector.
///
/// See the [module documentation](self) for the algorithm; see
/// [`crate::lib`-level docs](crate) for a usage example.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OssSolver {
    params: OssParams,
}

impl OssSolver {
    /// Creates a solver with the given parameters.
    pub fn new(params: OssParams) -> OssSolver {
        OssSolver { params }
    }

    /// The solver's parameters.
    pub fn params(&self) -> &OssParams {
        &self.params
    }

    /// Selects the optimal δ+1 seed partition for `read`.
    ///
    /// # Panics
    ///
    /// Panics if the partition is infeasible
    /// (`!params.feasible_for(read.len())`) or `table` was built for a
    /// different read length / smaller `s_min`.
    pub fn select(&self, read: &[u8], table: &FreqTable) -> SelectionOutcome {
        self.run(read, table, None)
    }

    /// Like [`OssSolver::select`], also recording the per-iteration
    /// decisions (used to regenerate the paper's Fig. 2).
    pub fn select_traced(&self, read: &[u8], table: &FreqTable) -> (SelectionOutcome, OssTrace) {
        let mut trace = OssTrace::default();
        let outcome = self.run(read, table, Some(&mut trace));
        (outcome, trace)
    }

    fn run(
        &self,
        read: &[u8],
        table: &FreqTable,
        mut trace: Option<&mut OssTrace>,
    ) -> SelectionOutcome {
        let n = read.len();
        let p = &self.params;
        assert!(
            p.feasible_for(n),
            "read of length {n} cannot host {} seeds of at least {}",
            p.seed_count(),
            p.s_min()
        );
        assert!(
            table.read_len() == n && p.table_compatible(table.params()),
            "frequency table mismatch (table: len {}, params {:?}; solver params {:?})",
            table.read_len(),
            table.params(),
            p
        );
        let delta = p.delta as usize;
        let s_min = p.s_min;

        let window = |t: usize| -> (usize, usize) {
            let lo = s_min * (t + 1);
            let hi = match p.exploration {
                Exploration::Restricted => n - s_min * (delta - t),
                Exploration::Full => n,
            };
            (lo, hi)
        };

        let mut dp_cells = 0u64;
        // opt[p - lo] for the current iteration's window.
        let (lo0, hi0) = window(0);
        let mut prev_lo = lo0;
        let mut prev_opt: Vec<u32> = (lo0..=hi0).map(|pl| table.count(0, pl)).collect();
        dp_cells += prev_opt.len() as u64;
        // Divider tables, one per iteration, kept for backtracking — this
        // is the memory the restricted exploration space shrinks.
        let mut dividers: Vec<(usize, Vec<u16>)> = Vec::with_capacity(delta);
        let mut peak_bytes = prev_opt.len() * 4;

        if let Some(tr) = trace.as_deref_mut() {
            tr.iterations.push(
                (lo0..=hi0)
                    .map(|pl| (pl, 0usize, table.count(0, pl)))
                    .collect(),
            );
        }

        for t in 1..=delta {
            let (lo, hi) = window(t);
            let mut opt = vec![COST_CAP; hi - lo + 1];
            let mut div = vec![0u16; hi - lo + 1];
            let (dlo, dhi) = window(t - 1);
            // Prefix minima of the previous iteration: `prefix_min[i]` is
            // the best first-section cost over dividers `dlo..=dlo+i`.
            // This is the exact form of the Optimal Seed Solver's early
            // divider termination — seed counts are non-negative, so once
            // every *remaining* divider's first section already costs at
            // least the best total, the scan can stop. (A simple
            // monotonicity break is not sound here: the capped frequency
            // table can make `opt` non-monotone across columns.)
            let mut prefix_min = Vec::with_capacity(prev_opt.len());
            let mut running = COST_CAP;
            for &v in &prev_opt {
                running = running.min(v);
                prefix_min.push(running);
            }
            for pl in lo..=hi {
                let mut best = COST_CAP;
                let mut best_d = 0usize;
                // Divider d splits prefix pl into [.. d] (t seeds) and
                // [d .. pl] (the new seed, ≥ s_min long), scanned from the
                // longest first section down.
                let d_hi = pl.saturating_sub(s_min).min(dhi);
                for d in (dlo..=d_hi).rev() {
                    dp_cells += 1;
                    if self.params.early_termination && prefix_min[d - prev_lo] >= best {
                        break;
                    }
                    let left = prev_opt[d - prev_lo];
                    if left >= best {
                        continue; // cannot improve: the new seed costs ≥ 0
                    }
                    let cost = left.saturating_add(table.count(d, pl)).min(COST_CAP);
                    if cost < best {
                        best = cost;
                        best_d = d;
                        // OSS early leave: a zero-candidate split is
                        // unbeatable.
                        if self.params.early_termination && best == 0 {
                            break;
                        }
                    }
                }
                opt[pl - lo] = best;
                div[pl - lo] = best_d as u16;
            }
            if let Some(tr) = trace.as_deref_mut() {
                tr.iterations.push(
                    (lo..=hi)
                        .map(|pl| (pl, div[pl - lo] as usize, opt[pl - lo]))
                        .collect(),
                );
            }
            let live = opt.len() * 4
                + prev_opt.len() * 4
                + dividers.iter().map(|(_, v)| v.len() * 2).sum::<usize>()
                + div.len() * 2;
            peak_bytes = peak_bytes.max(live);
            dividers.push((lo, div));
            prev_opt = opt;
            prev_lo = lo;
        }

        // Backtrack from the full read.
        let mut cuts = vec![n];
        let mut cursor = n;
        for (lo, div) in dividers.iter().rev() {
            cursor = div[cursor - lo] as usize;
            cuts.push(cursor);
        }
        cuts.push(0);
        cuts.reverse();

        if let Some(tr) = trace {
            tr.dividers = cuts[1..cuts.len() - 1].to_vec();
        }

        let cap = table.s_min() + crate::freq::MAX_EXTRA;
        let seeds: Vec<Seed> = cuts
            .windows(2)
            .map(|w| {
                let (start, end) = (w[0], w[1]);
                let interval = table.interval(start, end);
                // A capped seed's interval belongs to its suffix; anchor
                // candidate diagonals there.
                let anchor = start.max(end.saturating_sub(cap));
                Seed {
                    start,
                    len: end - start,
                    count: interval.map_or(0, |iv| iv.width()),
                    interval,
                    anchor,
                }
            })
            .collect();

        SelectionOutcome {
            selection: SeedSelection { seeds },
            stats: SelectionStats {
                extend_ops: table.extend_ops(),
                dp_cells,
                peak_bytes,
            },
        }
    }
}

impl crate::SeedSelector for OssSolver {
    fn strategy_name(&self) -> &str {
        "oss-covering"
    }

    fn select_seeds(
        &self,
        read: &[u8],
        fm: &repute_index::FmIndex,
    ) -> (crate::SeedSelection, crate::SelectionStats) {
        let table = FreqTable::build(fm, read, &self.params);
        let outcome = self.select(read, &table);
        (outcome.selection, outcome.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repute_genome::synth::ReferenceBuilder;
    use repute_genome::DnaSeq;
    use repute_index::FmIndex;

    fn setup(len: usize) -> (DnaSeq, FmIndex) {
        let reference = ReferenceBuilder::new(len).seed(13).build();
        let fm = FmIndex::build(&reference);
        (reference, fm)
    }

    fn brute_force_best(table: &FreqTable, n: usize, delta: usize, s_min: usize) -> u64 {
        // Enumerate all partitions recursively (small cases only).
        fn rec(table: &FreqTable, start: usize, n: usize, parts: usize, s_min: usize) -> u64 {
            if parts == 1 {
                return if n - start >= s_min {
                    u64::from(table.count(start, n))
                } else {
                    u64::MAX / 4
                };
            }
            let mut best = u64::MAX / 4;
            for cut in (start + s_min)..=(n - s_min * (parts - 1)) {
                let here = u64::from(table.count(start, cut));
                let rest = rec(table, cut, n, parts - 1, s_min);
                best = best.min(here + rest);
            }
            best
        }
        rec(table, 0, n, delta + 1, s_min)
    }

    #[test]
    fn params_validation() {
        assert!(OssParams::new(5, 0).is_err());
        assert!(OssParams::new(5, 12).is_ok());
        assert!(OssParams::new(7, 10_000).is_err());
        let p = OssParams::new(5, 12).unwrap();
        assert!(p.feasible_for(100));
        assert!(!p.feasible_for(71)); // needs 72
        assert_eq!(p.seed_count(), 6);
    }

    #[test]
    fn produces_valid_partition() {
        let (reference, fm) = setup(30_000);
        for (read_len, delta, s_min) in [(100, 5, 12), (150, 7, 15), (100, 3, 20)] {
            let read = reference.subseq(777..777 + read_len).to_codes();
            let params = OssParams::new(delta, s_min).unwrap();
            let table = FreqTable::build(&fm, &read, &params);
            let outcome = OssSolver::new(params).select(&read, &table);
            assert_eq!(outcome.selection.seeds.len(), delta as usize + 1);
            assert!(
                outcome.selection.is_valid_partition(read_len, s_min),
                "invalid partition for delta={delta} s_min={s_min}"
            );
        }
    }

    #[test]
    fn matches_brute_force_optimum() {
        let (reference, fm) = setup(15_000);
        for seed_off in [100usize, 900, 4242] {
            let read = reference.subseq(seed_off..seed_off + 60).to_codes();
            let params = OssParams::new(2, 10).unwrap();
            let table = FreqTable::build(&fm, &read, &params);
            let outcome = OssSolver::new(params).select(&read, &table);
            let best = brute_force_best(&table, 60, 2, 10);
            assert_eq!(
                outcome.selection.total_candidates(),
                best,
                "offset {seed_off}"
            );
        }
    }

    #[test]
    fn full_and_restricted_exploration_agree_on_partition_validity() {
        let (reference, fm) = setup(20_000);
        let read = reference.subseq(3000..3100).to_codes();
        let restricted = OssParams::new(5, 12).unwrap();
        let full = restricted.exploration(Exploration::Full);
        let rt = FreqTable::build(&fm, &read, &restricted);
        let ft = FreqTable::build(&fm, &read, &full);
        let a = OssSolver::new(restricted).select(&read, &rt);
        let b = OssSolver::new(full).select(&read, &ft);
        assert!(a.selection.is_valid_partition(100, 12));
        assert!(b.selection.is_valid_partition(100, 12));
        // The restriction is the memory/time optimisation:
        assert!(a.stats.dp_cells <= b.stats.dp_cells);
        assert!(a.stats.peak_bytes <= b.stats.peak_bytes);
        assert!(rt.extend_ops() <= ft.extend_ops());
        // Both explorations reach an optimal partition of their own cost
        // model; with the full table's deeper columns the cost models can
        // differ only by capped-seed approximation, so the candidate
        // totals stay close.
        let (ca, cb) = (
            a.selection.total_candidates(),
            b.selection.total_candidates(),
        );
        assert!(
            ca <= cb.saturating_mul(2) + 8 && cb <= ca.saturating_mul(2) + 8,
            "restricted {ca} vs full {cb} diverged"
        );
    }

    #[test]
    fn early_termination_preserves_optimality_with_fewer_cells() {
        // A repeat-rich reference makes the capped frequency table bind,
        // which is exactly the regime where a naive monotonicity-based
        // pruning would lose optimality.
        let reference = ReferenceBuilder::new(120_000)
            .seed(13)
            .repeat_families(vec![
                repute_genome::synth::RepeatFamily {
                    unit_len: 80,
                    copies: 100,
                    divergence: 0.01,
                },
                repute_genome::synth::RepeatFamily {
                    unit_len: 300,
                    copies: 50,
                    divergence: 0.015,
                },
            ])
            .build();
        let fm = FmIndex::build(&reference);
        for delta in [3u32, 5] {
            let params = OssParams::new(delta, 12).unwrap();
            let slow = params.early_termination(false);
            let mut saved_somewhere = false;
            for off in (0..100_000).step_by(1709) {
                let read = reference.subseq(off..off + 100).to_codes();
                let table = FreqTable::build(&fm, &read, &params);
                let fast = OssSolver::new(params).select(&read, &table);
                let full = OssSolver::new(slow).select(&read, &table);
                assert_eq!(
                    fast.selection.total_candidates(),
                    full.selection.total_candidates(),
                    "optimality lost at offset {off} (δ={delta})"
                );
                assert!(fast.stats.dp_cells <= full.stats.dp_cells);
                saved_somewhere |= fast.stats.dp_cells < full.stats.dp_cells;
            }
            assert!(saved_somewhere, "early termination never pruned anything");
        }
    }

    #[test]
    fn table_compatibility_ignores_scan_optimisations() {
        let a = OssParams::new(4, 12).unwrap();
        let b = a.early_termination(false);
        assert!(a.table_compatible(&b));
        let c = a.exploration(Exploration::Full);
        assert!(!a.table_compatible(&c));
        let d = OssParams::new(5, 12).unwrap();
        assert!(!a.table_compatible(&d));
    }

    #[test]
    #[should_panic(expected = "frequency table mismatch")]
    fn table_and_solver_params_must_match() {
        let (reference, fm) = setup(20_000);
        let read = reference.subseq(3000..3100).to_codes();
        let restricted = OssParams::new(5, 12).unwrap();
        let full = restricted.exploration(Exploration::Full);
        let table = FreqTable::build(&fm, &read, &restricted);
        let _ = OssSolver::new(full).select(&read, &table);
    }

    #[test]
    fn beats_or_ties_uniform_partition() {
        let (reference, fm) = setup(40_000);
        let params = OssParams::new(5, 12).unwrap();
        for off in (0..20_000).step_by(3011) {
            let read = reference.subseq(off..off + 100).to_codes();
            let table = FreqTable::build(&fm, &read, &params);
            let outcome = OssSolver::new(params).select(&read, &table);
            // Uniform partition into 6 seeds (len 17, last 15).
            let cuts = [0usize, 17, 34, 51, 68, 85, 100];
            let uniform_total: u64 = cuts
                .windows(2)
                .map(|w| u64::from(table.count(w[0], w[1])))
                .sum();
            assert!(
                outcome.selection.total_candidates() <= uniform_total,
                "DP worse than uniform at offset {off}"
            );
        }
    }

    #[test]
    fn trace_records_delta_plus_one_iterations_and_dividers() {
        let (reference, fm) = setup(20_000);
        let read = reference.subseq(123..223).to_codes();
        let params = OssParams::new(5, 12).unwrap();
        let table = FreqTable::build(&fm, &read, &params);
        let (outcome, trace) = OssSolver::new(params).select_traced(&read, &table);
        assert_eq!(trace.iterations.len(), 6); // base + 5 iterations
        assert_eq!(trace.dividers.len(), 5);
        // Dividers must be strictly increasing and consistent with seeds.
        for w in trace.dividers.windows(2) {
            assert!(w[0] < w[1]);
        }
        let seed_cuts: Vec<usize> = outcome.selection.seeds[1..]
            .iter()
            .map(|s| s.start)
            .collect();
        assert_eq!(trace.dividers, seed_cuts);
    }

    #[test]
    fn seed_intervals_locate_real_occurrences_of_the_capped_suffix() {
        let (reference, fm) = setup(25_000);
        let read = reference.subseq(5000..5100).to_codes();
        let params = OssParams::new(4, 15).unwrap();
        let table = FreqTable::build(&fm, &read, &params);
        let outcome = OssSolver::new(params).select(&read, &table);
        let codes = reference.to_codes();
        for seed in &outcome.selection.seeds {
            if let Some(interval) = seed.interval {
                // Long seeds carry the interval of their capped suffix
                // (see `FreqTable::interval`).
                let suffix_len = seed.len.min(params.s_min() + crate::freq::MAX_EXTRA);
                let suffix_start = seed.end() - suffix_len;
                let positions = fm.locate(interval, 5);
                for pos in positions {
                    let got = &codes[pos as usize..pos as usize + suffix_len];
                    assert_eq!(got, &read[suffix_start..seed.end()]);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot host")]
    fn infeasible_read_rejected() {
        let (reference, fm) = setup(10_000);
        let read = reference.subseq(0..50).to_codes();
        let params = OssParams::new(5, 12).unwrap(); // needs 72 bases
        let table = FreqTable::build(&fm, &read, &params);
        let _ = OssSolver::new(params).select(&read, &table);
    }
}
