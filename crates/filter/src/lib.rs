//! Filtration strategies — the heart of the REPUTE reproduction.
//!
//! Read mapping spends its time verifying candidate locations, so the
//! filtration stage's job (§II-B of the paper) is to pick the δ+1 seeds
//! whose *total candidate count* is as small as possible. This crate
//! implements the paper's contribution and the strategies it is compared
//! against:
//!
//! * [`oss`] — the memory-optimised dynamic-programming seed selection
//!   inspired by the Optimal Seed Solver, with the restricted exploration
//!   space that is REPUTE's key memory optimisation,
//! * [`pigeonhole`] — the pigeonhole principle and uniform partitions
//!   (the RazerS3-style baseline),
//! * [`greedy`] — serial heuristic k-mer selection (the CORAL-style
//!   baseline: "CORAL examines k-mers serially"),
//! * [`freq`] — seed-frequency providers backed by the FM-Index with
//!   incremental backward-search reuse.
//!
//! # Example
//!
//! ```
//! use repute_genome::synth::ReferenceBuilder;
//! use repute_index::FmIndex;
//! use repute_filter::{freq::FreqTable, oss::{OssParams, OssSolver}};
//!
//! let reference = ReferenceBuilder::new(20_000).seed(1).build();
//! let fm = FmIndex::build(&reference);
//! let read = reference.subseq(500..600).to_codes();
//!
//! let params = OssParams::new(5, 12).expect("valid");
//! let solver = OssSolver::new(params);
//! let outcome = solver.select(&read, &FreqTable::build(&fm, &read, &params));
//! assert_eq!(outcome.selection.seeds.len(), 6); // δ + 1 seeds
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod freq;
pub mod greedy;
pub mod oss;
pub mod pigeonhole;
mod seed;
pub mod segmented;
pub mod sparse;

pub use seed::{Seed, SeedSelection, SeedSelector, SelectionStats};
