//! Serial heuristic seed selection (the CORAL-style baseline).
//!
//! The paper contrasts its DP filtration with CORAL's heuristic: "CORAL
//! examines k-mers serially" with a variable-length k-mer selection
//! criterion, making locally greedy choices instead of examining the whole
//! read (§I). This selector reproduces that strategy: walking from the
//! read's right end, each seed grows leftward one base at a time — each
//! step one cheap FM left-extension — until its occurrence count drops to
//! the target threshold or the space reserved for the remaining seeds is
//! reached.

use repute_index::FmIndex;

use crate::seed::{Seed, SeedSelection, SelectionStats};

/// The serial greedy selector.
///
/// # Example
///
/// ```
/// use repute_genome::synth::ReferenceBuilder;
/// use repute_index::FmIndex;
/// use repute_filter::greedy::GreedySelector;
///
/// let reference = ReferenceBuilder::new(20_000).seed(2).build();
/// let fm = FmIndex::build(&reference);
/// let read = reference.subseq(40..140).to_codes();
/// let (selection, _) = GreedySelector::new(5, 12).select(&read, &fm);
/// assert_eq!(selection.seeds.len(), 6);
/// assert!(selection.is_valid_partition(100, 12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GreedySelector {
    delta: u32,
    s_min: usize,
    threshold: u32,
}

impl GreedySelector {
    /// Default occurrence threshold at which a seed stops growing.
    pub const DEFAULT_THRESHOLD: u32 = 4;

    /// Creates a selector for `delta` errors with minimum seed length
    /// `s_min` and the default frequency threshold.
    ///
    /// # Panics
    ///
    /// Panics if `s_min == 0`.
    pub fn new(delta: u32, s_min: usize) -> GreedySelector {
        assert!(s_min > 0, "minimum seed length must be positive");
        GreedySelector {
            delta,
            s_min,
            threshold: Self::DEFAULT_THRESHOLD,
        }
    }

    /// Sets the occurrence threshold at which a seed stops growing.
    pub fn threshold(mut self, threshold: u32) -> GreedySelector {
        self.threshold = threshold;
        self
    }

    /// The error budget δ.
    pub fn delta(&self) -> u32 {
        self.delta
    }

    /// Greedily partitions `read` into δ+1 seeds.
    ///
    /// # Panics
    ///
    /// Panics if the read cannot host δ+1 seeds of `s_min` bases.
    pub fn select(&self, read: &[u8], fm: &FmIndex) -> (SeedSelection, SelectionStats) {
        let parts = self.delta as usize + 1;
        let n = read.len();
        assert!(
            n >= parts * self.s_min,
            "read of length {n} cannot host {parts} seeds of at least {}",
            self.s_min
        );
        let mut extend_ops = 0u64;
        let mut seeds_rev: Vec<Seed> = Vec::with_capacity(parts);
        let mut end = n;
        for remaining in (0..parts).rev() {
            // `remaining` seeds still to place to the left of this one.
            let reserve = remaining * self.s_min;
            let start_limit = reserve; // seed may grow down to here
            let (start, interval) = if remaining == 0 {
                // Last (leftmost) seed absorbs the rest of the read.
                let mut interval = fm.full_interval();
                let mut d = end;
                while d > 0 && !interval.is_empty() {
                    d -= 1;
                    interval = fm.extend_left(interval, read[d]);
                    extend_ops += 1;
                }
                (0, interval)
            } else {
                let mut interval = fm.full_interval();
                let mut d = end;
                // Mandatory growth to s_min.
                while d > end - self.s_min {
                    d -= 1;
                    interval = fm.extend_left(interval, read[d]);
                    extend_ops += 1;
                }
                // Greedy growth: keep extending while the k-mer is still
                // too frequent and space remains for the seeds to come.
                while interval.width() > self.threshold && d > start_limit {
                    d -= 1;
                    interval = fm.extend_left(interval, read[d]);
                    extend_ops += 1;
                }
                (d, interval)
            };
            let interval = (!interval.is_empty()).then_some(interval);
            seeds_rev.push(Seed {
                start,
                len: end - start,
                count: interval.map_or(0, |iv| iv.width()),
                interval,
                anchor: start,
            });
            end = start;
        }
        seeds_rev.reverse();
        (
            SeedSelection { seeds: seeds_rev },
            SelectionStats {
                extend_ops,
                dp_cells: 0,
                peak_bytes: parts * std::mem::size_of::<Seed>(),
            },
        )
    }
}

impl crate::SeedSelector for GreedySelector {
    fn strategy_name(&self) -> &str {
        "greedy"
    }

    fn select_seeds(
        &self,
        read: &[u8],
        fm: &FmIndex,
    ) -> (crate::SeedSelection, crate::SelectionStats) {
        self.select(read, fm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::FreqTable;
    use crate::oss::{OssParams, OssSolver};
    use repute_genome::synth::ReferenceBuilder;
    use repute_genome::DnaSeq;

    fn setup() -> (DnaSeq, FmIndex) {
        let reference = ReferenceBuilder::new(60_000).seed(19).build();
        let fm = FmIndex::build(&reference);
        (reference, fm)
    }

    #[test]
    fn produces_valid_partitions() {
        let (reference, fm) = setup();
        for (read_len, delta, s_min) in [(100usize, 5u32, 12usize), (150, 7, 15)] {
            let read = reference.subseq(2000..2000 + read_len).to_codes();
            let (selection, stats) = GreedySelector::new(delta, s_min).select(&read, &fm);
            assert_eq!(selection.seeds.len(), delta as usize + 1);
            assert!(selection.is_valid_partition(read_len, s_min));
            assert!(stats.extend_ops > 0);
        }
    }

    #[test]
    fn counts_match_fm() {
        let (reference, fm) = setup();
        let read = reference.subseq(100..250).to_codes();
        let (selection, _) = GreedySelector::new(6, 15).select(&read, &fm);
        for seed in &selection.seeds {
            assert_eq!(seed.count, fm.count(&read[seed.start..seed.end()]));
        }
    }

    #[test]
    fn dp_never_loses_to_greedy() {
        // The motivating claim of the paper: global DP selection yields at
        // most as many candidates as the serial heuristic.
        let (reference, fm) = setup();
        let params = OssParams::new(5, 12).unwrap();
        for off in (0..30_000).step_by(2503) {
            let read = reference.subseq(off..off + 100).to_codes();
            let table = FreqTable::build(&fm, &read, &params);
            let dp = OssSolver::new(params).select(&read, &table);
            let (greedy, _) = GreedySelector::new(5, 12).select(&read, &fm);
            assert!(
                dp.selection.total_candidates() <= greedy.total_candidates(),
                "offset {off}: dp {} > greedy {}",
                dp.selection.total_candidates(),
                greedy.total_candidates()
            );
        }
    }

    #[test]
    fn threshold_influences_growth() {
        let (reference, fm) = setup();
        let read = reference.subseq(4000..4100).to_codes();
        let (tight, _) = GreedySelector::new(5, 12).threshold(0).select(&read, &fm);
        let (loose, _) = GreedySelector::new(5, 12)
            .threshold(1000)
            .select(&read, &fm);
        // A loose threshold stops at s_min immediately: all but the last
        // seed have exactly s_min bases.
        assert!(loose.seeds[1..].iter().all(|s| s.len == 12));
        // A tight threshold grows seeds further.
        let grown = tight.seeds[1..].iter().filter(|s| s.len > 12).count();
        assert!(grown > 0, "threshold 0 should grow some seeds");
    }

    #[test]
    #[should_panic(expected = "cannot host")]
    fn infeasible_read_rejected() {
        let (reference, fm) = setup();
        let read = reference.subseq(0..30).to_codes();
        let _ = GreedySelector::new(5, 12).select(&read, &fm);
    }
}
