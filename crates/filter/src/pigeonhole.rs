//! The pigeonhole principle and uniform seed partitions.
//!
//! "δ errors cannot occur in more than δ sections of the read. Therefore,
//! dividing a read in δ+1 sections will leave a section error free" (§II-B,
//! citing RazerS3). Every filtration strategy in this crate rests on this
//! guarantee; the uniform partition here is the strategy-free baseline —
//! and the starting point of the paper's Fig. 1 demonstration.

use repute_index::FmIndex;

use crate::seed::{Seed, SeedSelection, SelectionStats};

/// Splits `read_len` into `parts` contiguous near-equal ranges.
///
/// The first `read_len % parts` ranges get one extra base, so lengths
/// differ by at most one.
///
/// # Panics
///
/// Panics if `parts == 0` or `parts > read_len`.
///
/// # Example
///
/// ```
/// use repute_filter::pigeonhole::uniform_partition;
///
/// assert_eq!(uniform_partition(10, 3), vec![(0, 4), (4, 3), (7, 3)]);
/// ```
pub fn uniform_partition(read_len: usize, parts: usize) -> Vec<(usize, usize)> {
    assert!(parts > 0, "parts must be positive");
    assert!(
        parts <= read_len,
        "cannot split {read_len} bases into {parts} parts"
    );
    let base = read_len / parts;
    let extra = read_len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push((start, len));
        start += len;
    }
    out
}

/// The uniform (equal-length) seed selector.
///
/// Counts each of the δ+1 equal k-mers with one FM backward search. This
/// is what a pigeonhole mapper does with no seed-selection smarts; the DP
/// and heuristic selectors are measured against it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformSelector {
    delta: u32,
}

impl UniformSelector {
    /// Creates a selector for `delta` errors (δ+1 seeds).
    pub fn new(delta: u32) -> UniformSelector {
        UniformSelector { delta }
    }

    /// The error budget δ.
    pub fn delta(&self) -> u32 {
        self.delta
    }

    /// Partitions `read` uniformly and counts every seed.
    ///
    /// Returns the selection and the FM work spent.
    ///
    /// # Panics
    ///
    /// Panics if the read has fewer bases than δ+1.
    pub fn select(&self, read: &[u8], fm: &FmIndex) -> (SeedSelection, SelectionStats) {
        let parts = self.delta as usize + 1;
        let ranges = uniform_partition(read.len(), parts);
        let mut extend_ops = 0u64;
        let seeds = ranges
            .into_iter()
            .map(|(start, len)| {
                let mut interval = fm.full_interval();
                for &c in read[start..start + len].iter().rev() {
                    interval = fm.extend_left(interval, c);
                    extend_ops += 1;
                    if interval.is_empty() {
                        break;
                    }
                }
                let interval = (!interval.is_empty()).then_some(interval);
                Seed {
                    start,
                    len,
                    count: interval.map_or(0, |iv| iv.width()),
                    interval,
                    anchor: start,
                }
            })
            .collect();
        (
            SeedSelection { seeds },
            SelectionStats {
                extend_ops,
                dp_cells: 0,
                peak_bytes: parts * std::mem::size_of::<Seed>(),
            },
        )
    }
}

impl crate::SeedSelector for UniformSelector {
    fn strategy_name(&self) -> &str {
        "uniform"
    }

    fn select_seeds(
        &self,
        read: &[u8],
        fm: &FmIndex,
    ) -> (crate::SeedSelection, crate::SelectionStats) {
        self.select(read, fm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repute_genome::synth::ReferenceBuilder;

    #[test]
    fn partition_lengths_differ_by_at_most_one() {
        for (n, parts) in [(100usize, 6usize), (150, 8), (10, 10), (7, 3)] {
            let ranges = uniform_partition(n, parts);
            assert_eq!(ranges.len(), parts);
            let min = ranges.iter().map(|&(_, l)| l).min().unwrap();
            let max = ranges.iter().map(|&(_, l)| l).max().unwrap();
            assert!(max - min <= 1, "n={n} parts={parts}");
            assert_eq!(ranges.iter().map(|&(_, l)| l).sum::<usize>(), n);
            // Contiguity.
            let mut cursor = 0;
            for &(start, len) in &ranges {
                assert_eq!(start, cursor);
                cursor += len;
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_parts_rejected() {
        let _ = uniform_partition(10, 0);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn too_many_parts_rejected() {
        let _ = uniform_partition(3, 4);
    }

    #[test]
    fn uniform_selector_counts_match_fm() {
        let reference = ReferenceBuilder::new(20_000).seed(17).build();
        let fm = repute_index::FmIndex::build(&reference);
        let read = reference.subseq(300..400).to_codes();
        let selector = UniformSelector::new(5);
        let (selection, stats) = selector.select(&read, &fm);
        assert_eq!(selection.seeds.len(), 6);
        assert!(selection.is_valid_partition(100, 16));
        for seed in &selection.seeds {
            assert_eq!(
                seed.count,
                fm.count(&read[seed.start..seed.end()]),
                "seed {seed:?}"
            );
            // The read came from the reference, so every seed occurs.
            assert!(seed.count >= 1);
        }
        assert!(stats.extend_ops > 0);
        assert_eq!(selector.delta(), 5);
    }
}
