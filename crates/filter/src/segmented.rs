//! Serial per-section seed selection (the CORAL strategy, faithfully).
//!
//! CORAL "examines k-mers serially" (§I): the read is cut into δ+1 fixed
//! sections and, one section at a time, a k-mer inside the section grows
//! until its occurrence count drops under a threshold or the section is
//! exhausted. Because a seed can never cross its section boundary, the
//! heuristic cannot concentrate a repeat-covered stretch of the read into
//! one long seed the way the DP filtration can — several sections end up
//! paying the repeat's full candidate count. The gap widens as δ grows
//! (sections shrink, growth room vanishes), which is exactly where the
//! paper's Tables I/II show REPUTE pulling away from CORAL.
//!
//! Sensitivity is unaffected: each seed lies inside its section, so the
//! pigeonhole guarantee (one section is error-free) still applies.

use repute_index::FmIndex;

use crate::pigeonhole::uniform_partition;
use crate::seed::{Seed, SeedSelection, SelectionStats};

/// The serial per-section selector.
///
/// # Example
///
/// ```
/// use repute_genome::synth::ReferenceBuilder;
/// use repute_index::FmIndex;
/// use repute_filter::segmented::SegmentedSelector;
///
/// let reference = ReferenceBuilder::new(20_000).seed(2).build();
/// let fm = FmIndex::build(&reference);
/// let read = reference.subseq(40..140).to_codes();
/// let (selection, _) = SegmentedSelector::new(5, 12).select(&read, &fm);
/// assert_eq!(selection.seeds.len(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentedSelector {
    delta: u32,
    s_min: usize,
    threshold: u32,
}

impl SegmentedSelector {
    /// Default occurrence threshold at which a seed stops growing.
    pub const DEFAULT_THRESHOLD: u32 = 32;

    /// Creates a selector for `delta` errors with minimum seed length
    /// `s_min`.
    ///
    /// # Panics
    ///
    /// Panics if `s_min == 0`.
    pub fn new(delta: u32, s_min: usize) -> SegmentedSelector {
        assert!(s_min > 0, "minimum seed length must be positive");
        SegmentedSelector {
            delta,
            s_min,
            threshold: Self::DEFAULT_THRESHOLD,
        }
    }

    /// Sets the occurrence threshold at which a seed stops growing.
    pub fn threshold(mut self, threshold: u32) -> SegmentedSelector {
        self.threshold = threshold;
        self
    }

    /// The error budget δ.
    pub fn delta(&self) -> u32 {
        self.delta
    }

    /// Selects one seed per section of `read`.
    ///
    /// Seeds are anchored at their section's right edge and grow leftward
    /// (each step a cheap FM left-extension), never beyond the section.
    ///
    /// # Panics
    ///
    /// Panics if the read cannot host δ+1 sections of `s_min` bases.
    pub fn select(&self, read: &[u8], fm: &FmIndex) -> (SeedSelection, SelectionStats) {
        let parts = self.delta as usize + 1;
        let n = read.len();
        assert!(
            n >= parts * self.s_min,
            "read of length {n} cannot host {parts} sections of at least {}",
            self.s_min
        );
        let mut extend_ops = 0u64;
        let seeds = uniform_partition(n, parts)
            .into_iter()
            .map(|(section_start, section_len)| {
                let section_end = section_start + section_len;
                let mut interval = fm.full_interval();
                let mut d = section_end;
                // Mandatory growth to s_min (section_len ≥ s_min holds by
                // the feasibility assertion).
                while d > section_end - self.s_min {
                    d -= 1;
                    interval = fm.extend_left(interval, read[d]);
                    extend_ops += 1;
                    if interval.is_empty() {
                        break;
                    }
                }
                // Serial growth, confined to the section.
                while interval.width() > self.threshold && d > section_start {
                    d -= 1;
                    interval = fm.extend_left(interval, read[d]);
                    extend_ops += 1;
                }
                let interval = (!interval.is_empty()).then_some(interval);
                Seed {
                    start: d,
                    len: section_end - d,
                    count: interval.map_or(0, |iv| iv.width()),
                    interval,
                    anchor: d,
                }
            })
            .collect();
        (
            SeedSelection { seeds },
            SelectionStats {
                extend_ops,
                dp_cells: 0,
                peak_bytes: parts * std::mem::size_of::<Seed>(),
            },
        )
    }
}

impl crate::SeedSelector for SegmentedSelector {
    fn strategy_name(&self) -> &str {
        "segmented"
    }

    fn select_seeds(
        &self,
        read: &[u8],
        fm: &FmIndex,
    ) -> (crate::SeedSelection, crate::SelectionStats) {
        self.select(read, fm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::FreqTable;
    use crate::oss::{OssParams, OssSolver};
    use repute_genome::synth::{ReferenceBuilder, RepeatFamily};
    use repute_genome::DnaSeq;

    fn repeat_rich() -> (DnaSeq, FmIndex) {
        let reference = ReferenceBuilder::new(200_000)
            .seed(77)
            .repeat_families(vec![RepeatFamily {
                unit_len: 300,
                copies: 120,
                divergence: 0.015,
            }])
            .build();
        let fm = FmIndex::build(&reference);
        (reference, fm)
    }

    #[test]
    fn seeds_stay_inside_their_sections() {
        let (reference, fm) = repeat_rich();
        let read = reference.subseq(5000..5100).to_codes();
        let (selection, _) = SegmentedSelector::new(5, 12).select(&read, &fm);
        let sections = crate::pigeonhole::uniform_partition(100, 6);
        for (seed, (start, len)) in selection.seeds.iter().zip(sections) {
            assert!(seed.start >= start, "seed {seed:?} escapes its section");
            assert_eq!(
                seed.end(),
                start + len,
                "seed must anchor at the section end"
            );
            assert!(seed.len >= 12 || seed.count == 0);
        }
    }

    #[test]
    fn counts_match_fm() {
        let (reference, fm) = repeat_rich();
        let read = reference.subseq(9000..9150).to_codes();
        let (selection, stats) = SegmentedSelector::new(6, 15).select(&read, &fm);
        for seed in &selection.seeds {
            assert_eq!(seed.count, fm.count(&read[seed.start..seed.end()]));
        }
        assert!(stats.extend_ops > 0);
    }

    #[test]
    fn dp_beats_sectioned_heuristic_on_repeat_boundary_reads() {
        // The paper's core claim, on the reads where it materialises: a
        // read half inside a young repeat. The DP may merge the repeat
        // half into one seed; the sectioned heuristic cannot.
        let (reference, fm) = repeat_rich();
        let codes = reference.to_codes();
        let delta = 5u32;
        let s_min = 12usize;
        let params = OssParams::new(delta, s_min).unwrap();
        let selector = SegmentedSelector::new(delta, s_min);
        let mut dp_total = 0u64;
        let mut seg_total = 0u64;
        for off in (0..150_000).step_by(997) {
            let read = &codes[off..off + 100];
            let table = FreqTable::build(&fm, read, &params);
            dp_total += OssSolver::new(params)
                .select(read, &table)
                .selection
                .total_candidates();
            seg_total += selector.select(read, &fm).0.total_candidates();
        }
        assert!(
            dp_total < seg_total,
            "DP should produce fewer candidates: {dp_total} vs {seg_total}"
        );
    }

    #[test]
    #[should_panic(expected = "cannot host")]
    fn infeasible_read_rejected() {
        let (reference, fm) = repeat_rich();
        let read = reference.subseq(0..40).to_codes();
        let _ = SegmentedSelector::new(5, 12).select(&read, &fm);
    }
}
