//! Seed-frequency tables with incremental backward-search reuse.
//!
//! The DP filtration needs the occurrence count of `read[d..p]` for many
//! `(d, p)` pairs. Backward search extends patterns to the *left*, so for
//! a fixed end `p` every start `d` is one [`repute_index::FmIndex::extend_left`]
//! away from `d + 1` — the "efficient way" of using backward search the
//! paper credits for reduced memory accesses (§II-B). Columns stop as soon
//! as the interval empties: every longer seed ending at `p` then has
//! exactly zero occurrences, no further index work needed.

use repute_index::{FmIndex, Interval};

use crate::oss::OssParams;

/// Extra extension depth beyond `s_min` before a column is capped.
///
/// The Optimal Seed Solver caps seed lengths: beyond `s_min + MAX_EXTRA`
/// bases a seed's count has almost always stabilised (unique regions hit
/// zero or one long before; repeat regions stay high however far one
/// extends). Lookups past the cap return the capped suffix's interval —
/// a superset of the true occurrences, which verification filters. This
/// bounds per-column work, the time half of the paper's memory/time
/// optimisation.
pub const MAX_EXTRA: usize = 16;

/// One column of the table: seeds ending at a fixed read position.
#[derive(Debug, Clone, Default)]
struct Column {
    /// `entries[i]` is the interval of the seed of length `s_min + i`;
    /// lengths beyond the stored entries have zero occurrences unless the
    /// column was capped (`capped == true`), in which case the deepest
    /// entry approximates them.
    entries: Vec<Interval>,
    capped: bool,
}

/// Precomputed seed frequencies for one read.
///
/// # Example
///
/// ```
/// use repute_genome::synth::ReferenceBuilder;
/// use repute_index::FmIndex;
/// use repute_filter::{freq::FreqTable, oss::OssParams};
///
/// let reference = ReferenceBuilder::new(10_000).seed(3).build();
/// let fm = FmIndex::build(&reference);
/// let read = reference.subseq(100..200).to_codes();
/// let params = OssParams::new(4, 15).expect("valid");
/// let table = FreqTable::build(&fm, &read, &params);
/// // The read itself occurs, so each of its seeds occurs at least once.
/// assert!(table.count(0, 15) >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct FreqTable {
    columns: Vec<Column>,
    read_len: usize,
    params: OssParams,
    extend_ops: u64,
}

impl FreqTable {
    /// Builds the frequency table for the seeds the DP of `params` can
    /// ask about.
    ///
    /// Under the paper's restricted exploration space only the live
    /// columns are computed, each to the depth its iterations need (see
    /// [`OssParams::max_seed_len_at`]) — the *time* half of the
    /// exploration-space optimisation; the DP-table shrinkage is the
    /// memory half.
    ///
    /// # Panics
    ///
    /// Panics if the read is shorter than `s_min` or contains codes
    /// above 3.
    pub fn build(fm: &FmIndex, read: &[u8], params: &OssParams) -> FreqTable {
        let s_min = params.s_min();
        let n = read.len();
        assert!(
            n >= s_min,
            "read length {n} shorter than minimum seed length {s_min}"
        );
        let mut extend_ops = 0u64;
        let mut columns = Vec::with_capacity(n - s_min + 1);
        for p in s_min..=n {
            let Some(depth_limit) = params.max_seed_len_at(p, n) else {
                columns.push(Column::default()); // dead column: never probed
                continue;
            };
            let depth = depth_limit.min(s_min + MAX_EXTRA);
            let mut entries = Vec::new();
            let mut interval = fm.full_interval();
            let mut d = p;
            // First s_min extensions establish the shortest seed.
            let mut alive = true;
            while d > p - s_min {
                d -= 1;
                interval = fm.extend_left(interval, read[d]);
                extend_ops += 1;
                if interval.is_empty() {
                    alive = false;
                    break;
                }
            }
            let mut capped = false;
            if alive {
                entries.push(interval);
                // Keep extending while occurrences remain, the seed can
                // still grow, and the depth bound is not reached.
                let floor = p - depth;
                while d > floor {
                    d -= 1;
                    interval = fm.extend_left(interval, read[d]);
                    extend_ops += 1;
                    if interval.is_empty() {
                        break;
                    }
                    entries.push(interval);
                }
                capped = d == floor && !interval.is_empty() && floor > 0;
            }
            columns.push(Column { entries, capped });
        }
        FreqTable {
            columns,
            read_len: n,
            params: *params,
            extend_ops,
        }
    }

    /// The minimum seed length this table was built for.
    pub fn s_min(&self) -> usize {
        self.params.s_min()
    }

    /// The DP parameters this table was built for; the solver must run
    /// with the same ones.
    pub fn params(&self) -> &OssParams {
        &self.params
    }

    /// Length of the read this table covers.
    pub fn read_len(&self) -> usize {
        self.read_len
    }

    /// FM-Index extension operations spent building the table.
    pub fn extend_ops(&self) -> u64 {
        self.extend_ops
    }

    /// Records the table's index work into a per-read metric record. The
    /// DP solver's `SelectionOutcome` records the DP-side counters; between
    /// the two every filtration operation is counted exactly once.
    pub fn record_metrics(&self, metrics: &mut repute_obs::MapMetrics) {
        metrics.fm_extend_ops += self.extend_ops;
    }

    /// Occurrence count of the seed `read[start..end]`.
    ///
    /// # Panics
    ///
    /// Panics if `end > read_len`, `start >= end`, or the seed is shorter
    /// than `s_min`.
    pub fn count(&self, start: usize, end: usize) -> u32 {
        self.interval(start, end).map_or(0, Interval::width)
    }

    /// FM interval of the seed `read[start..end]`, `None` when the seed
    /// does not occur.
    ///
    /// For seeds longer than `s_min + MAX_EXTRA` the interval of the
    /// capped suffix is returned — a superset of the true occurrence set
    /// (and its width an upper bound on the count); the verification
    /// stage filters the difference.
    ///
    /// # Panics
    ///
    /// Panics if `end > read_len`, `start >= end`, or the seed is shorter
    /// than `s_min`.
    pub fn interval(&self, start: usize, end: usize) -> Option<Interval> {
        assert!(
            end <= self.read_len && start < end,
            "seed {start}..{end} out of bounds for read of length {}",
            self.read_len
        );
        let len = end - start;
        let s_min = self.s_min();
        assert!(
            len >= s_min,
            "seed length {len} below the table's minimum {s_min}"
        );
        let column = &self.columns[end - s_min];
        match column.entries.get(len - s_min) {
            Some(&iv) => Some(iv),
            None if column.capped => column.entries.last().copied(),
            None => None,
        }
    }

    /// Approximate heap footprint of the table in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|c| c.entries.len() * std::mem::size_of::<Interval>())
            .sum::<usize>()
            + self.columns.len() * std::mem::size_of::<Column>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repute_genome::synth::ReferenceBuilder;
    use repute_genome::DnaSeq;

    fn setup() -> (DnaSeq, FmIndex) {
        let reference = ReferenceBuilder::new(20_000).seed(8).build();
        let fm = FmIndex::build(&reference);
        (reference, fm)
    }

    #[test]
    fn counts_match_direct_backward_search_below_cap() {
        let (reference, fm) = setup();
        let read = reference.subseq(1000..1100).to_codes();
        let params = OssParams::new(5, 12).unwrap();
        let table = FreqTable::build(&fm, &read, &params);
        for end in (12usize..=100).step_by(7) {
            let min_start = end.saturating_sub(12 + MAX_EXTRA);
            for start in (min_start..=end - 12).step_by(5) {
                assert_eq!(
                    table.count(start, end),
                    fm.count(&read[start..end]),
                    "seed {start}..{end}"
                );
            }
        }
    }

    #[test]
    fn capped_lookups_upper_bound_true_counts() {
        let (reference, fm) = setup();
        let read = reference.subseq(1000..1100).to_codes();
        let params = OssParams::new(5, 12).unwrap();
        let table = FreqTable::build(&fm, &read, &params);
        for end in (40usize..=100).step_by(13) {
            for start in (0..end.saturating_sub(12 + MAX_EXTRA)).step_by(9) {
                assert!(
                    table.count(start, end) >= fm.count(&read[start..end]),
                    "capped count must upper-bound the true count at {start}..{end}"
                );
            }
        }
    }

    #[test]
    fn zero_count_beyond_empty_extension() {
        let (_, fm) = setup();
        // A noise read likely has long seeds with zero occurrences.
        let read: Vec<u8> = (0..100).map(|i| ((i * 7 + i / 3) % 4) as u8).collect();
        let params = OssParams::new(5, 12).unwrap();
        let table = FreqTable::build(&fm, &read, &params);
        for end in (12usize..=100).step_by(11) {
            let min_start = end.saturating_sub(12 + MAX_EXTRA);
            for start in (min_start..=end - 12).step_by(7) {
                assert_eq!(table.count(start, end), fm.count(&read[start..end]));
            }
        }
    }

    #[test]
    fn column_work_is_bounded_by_the_cap() {
        let (reference, fm) = setup();
        let read = reference.subseq(3000..3150).to_codes();
        let params = OssParams::new(7, 12).unwrap();
        let table = FreqTable::build(&fm, &read, &params);
        // ≤ (s_min + MAX_EXTRA) extensions per column.
        let columns = (read.len() - 12 + 1) as u64;
        assert!(table.extend_ops() <= columns * (12 + MAX_EXTRA) as u64);
    }

    #[test]
    fn extension_ops_are_bounded_by_table_size() {
        let (reference, fm) = setup();
        let read = reference.subseq(2000..2150).to_codes();
        let params = OssParams::new(7, 15).unwrap();
        let table = FreqTable::build(&fm, &read, &params);
        // At most one extension per (start, end) pair.
        let n = read.len() as u64;
        assert!(table.extend_ops() <= n * (n + 1) / 2);
        assert!(table.extend_ops() >= n - params.s_min() as u64);
        assert!(table.heap_bytes() > 0);
    }

    #[test]
    fn interval_agrees_with_fm() {
        let (reference, fm) = setup();
        let read = reference.subseq(500..600).to_codes();
        let params = OssParams::new(3, 20).unwrap();
        let table = FreqTable::build(&fm, &read, &params);
        let interval = table.interval(10, 35).expect("seed occurs");
        assert_eq!(Some(interval), fm.interval(&read[10..35]));
    }

    #[test]
    #[should_panic(expected = "below the table's minimum")]
    fn short_seed_lookup_rejected() {
        let (reference, fm) = setup();
        let read = reference.subseq(0..100).to_codes();
        let params = OssParams::new(5, 12).unwrap();
        let table = FreqTable::build(&fm, &read, &params);
        let _ = table.count(0, 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_lookup_rejected() {
        let (reference, fm) = setup();
        let read = reference.subseq(0..50).to_codes();
        let params = OssParams::new(2, 12).unwrap();
        let table = FreqTable::build(&fm, &read, &params);
        let _ = table.count(40, 60);
    }
}
