//! Seeds, seed selections and the selector trait.

use repute_index::{FmIndex, Interval};

/// One seed: a contiguous k-mer of the read together with its occurrence
/// statistics in the reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seed {
    /// Start offset within the read.
    pub start: usize,
    /// Seed length (the `k` of the k-mer).
    pub len: usize,
    /// Number of candidate locations this seed contributes (an upper
    /// bound when the selector capped the seed's search depth).
    pub count: u32,
    /// FM-Index interval of the seed — or of its capped suffix — when the
    /// selector produced one (lets the verifier locate candidates without
    /// re-searching).
    pub interval: Option<Interval>,
    /// Read offset the interval's matches anchor at. Equals `start`
    /// unless the selector capped the seed, in which case the interval
    /// belongs to the suffix `read[anchor..end]`.
    pub anchor: usize,
}

impl Seed {
    /// End offset within the read (exclusive).
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// Cost accounting for a selection call, in substrate operations.
///
/// These are the quantities the heterogeneous platform simulator converts
/// into device time, and the quantities the paper's memory optimisation
/// argument is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SelectionStats {
    /// FM-Index left-extension operations performed.
    pub extend_ops: u64,
    /// Dynamic-programming cells evaluated.
    pub dp_cells: u64,
    /// Peak bytes of working memory (DP tables, divider tables,
    /// frequency columns).
    pub peak_bytes: usize,
}

impl SelectionStats {
    /// Sums two stats records (used when accumulating over reads).
    pub fn merged(self, other: SelectionStats) -> SelectionStats {
        SelectionStats {
            extend_ops: self.extend_ops + other.extend_ops,
            dp_cells: self.dp_cells + other.dp_cells,
            peak_bytes: self.peak_bytes.max(other.peak_bytes),
        }
    }
}

/// A complete seed selection for one read.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SeedSelection {
    /// The chosen seeds, in read order.
    pub seeds: Vec<Seed>,
}

impl SeedSelection {
    /// Total candidate locations across all seeds — the objective the
    /// filtration stage minimises (the sum the vertical dividers of the
    /// paper's Fig. 1 are chosen to minimise).
    pub fn total_candidates(&self) -> u64 {
        self.seeds.iter().map(|s| u64::from(s.count)).sum()
    }

    /// Checks that the seeds form a contiguous partition of a read of
    /// length `read_len` with every seed at least `min_len` long.
    pub fn is_valid_partition(&self, read_len: usize, min_len: usize) -> bool {
        if self.seeds.is_empty() {
            return false;
        }
        let mut cursor = 0usize;
        for seed in &self.seeds {
            if seed.start != cursor || seed.len < min_len {
                return false;
            }
            cursor = seed.end();
        }
        cursor == read_len
    }
}

/// A pluggable seed-selection strategy.
///
/// Unifies the crate's selectors behind one signature so mappers and
/// benches can swap strategies generically. Strategies that precompute a
/// frequency table (the DP solvers) build it internally here; callers on
/// the hot path that want to reuse a table should use the concrete types
/// directly.
///
/// # Example
///
/// ```
/// use repute_genome::synth::ReferenceBuilder;
/// use repute_index::FmIndex;
/// use repute_filter::{SeedSelector, greedy::GreedySelector, pigeonhole::UniformSelector};
///
/// let reference = ReferenceBuilder::new(20_000).seed(6).build();
/// let fm = FmIndex::build(&reference);
/// let read = reference.subseq(100..200).to_codes();
/// let strategies: Vec<Box<dyn SeedSelector>> = vec![
///     Box::new(UniformSelector::new(5)),
///     Box::new(GreedySelector::new(5, 12)),
/// ];
/// for strategy in &strategies {
///     let (selection, _) = strategy.select_seeds(&read, &fm);
///     assert_eq!(selection.seeds.len(), 6);
/// }
/// ```
pub trait SeedSelector {
    /// Human-readable strategy name.
    fn strategy_name(&self) -> &str;

    /// Selects δ+1 seeds for `read` against the indexed reference.
    ///
    /// # Panics
    ///
    /// Implementations panic when the read cannot host the configured
    /// seed count (see each concrete type's documentation).
    fn select_seeds(&self, read: &[u8], fm: &FmIndex) -> (SeedSelection, SelectionStats);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed(start: usize, len: usize, count: u32) -> Seed {
        Seed {
            start,
            len,
            count,
            interval: None,
            anchor: start,
        }
    }

    #[test]
    fn total_candidates_sums_counts() {
        let sel = SeedSelection {
            seeds: vec![seed(0, 10, 5), seed(10, 10, 7)],
        };
        assert_eq!(sel.total_candidates(), 12);
    }

    #[test]
    fn partition_validity() {
        let good = SeedSelection {
            seeds: vec![seed(0, 10, 0), seed(10, 15, 0)],
        };
        assert!(good.is_valid_partition(25, 10));
        assert!(!good.is_valid_partition(25, 11)); // first seed too short
        assert!(!good.is_valid_partition(26, 10)); // does not cover

        let gap = SeedSelection {
            seeds: vec![seed(0, 10, 0), seed(11, 14, 0)],
        };
        assert!(!gap.is_valid_partition(25, 5));

        assert!(!SeedSelection::default().is_valid_partition(0, 0));
    }

    #[test]
    fn stats_merge() {
        let a = SelectionStats {
            extend_ops: 3,
            dp_cells: 10,
            peak_bytes: 100,
        };
        let b = SelectionStats {
            extend_ops: 4,
            dp_cells: 5,
            peak_bytes: 200,
        };
        let m = a.merged(b);
        assert_eq!(m.extend_ops, 7);
        assert_eq!(m.dp_cells, 15);
        assert_eq!(m.peak_bytes, 200);
    }

    #[test]
    fn seed_end() {
        assert_eq!(seed(5, 7, 0).end(), 12);
    }
}
