//! The FM-Index: backward search, left extension and sampled locate.
//!
//! This is the data structure at the heart of the paper's preprocessing
//! stage (§II-A): seeds chosen by the filtration stage are counted with
//! backward search, and their candidate locations are recovered from the
//! sampled suffix array. Left extension ([`FmIndex::extend_left`]) is the
//! primitive the DP filtration reuses incrementally ("used FM-Index
//! backward search in an efficient way to reduce memory accesses", §II-B).

use repute_genome::DnaSeq;

use crate::bitvec::RankBitVec;
use crate::bwt::{self, SENTINEL};
use crate::suffix_array::SuffixArray;

/// A half-open range of rows in the Burrows–Wheeler matrix.
///
/// Every suffix of the reference that starts with the searched pattern
/// corresponds to exactly one row in `lo..hi`; the interval width is the
/// pattern's occurrence count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// First matching row.
    pub lo: u32,
    /// One past the last matching row.
    pub hi: u32,
}

impl Interval {
    /// Number of matching rows (pattern occurrences).
    #[inline]
    pub fn width(self) -> u32 {
        self.hi.saturating_sub(self.lo)
    }

    /// Returns `true` when no row matches.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.hi <= self.lo
    }
}

/// Configures FM-Index sampling rates; see [`FmIndex::builder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FmBuilder {
    occ_sample: usize,
    sa_sample: usize,
}

impl Default for FmBuilder {
    fn default() -> Self {
        FmBuilder {
            occ_sample: 128,
            sa_sample: 32,
        }
    }
}

impl FmBuilder {
    /// Sets the Occ checkpoint spacing (rows between rank checkpoints).
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0`.
    pub fn occ_sample(mut self, rows: usize) -> FmBuilder {
        assert!(rows > 0, "occ sample rate must be positive");
        self.occ_sample = rows;
        self
    }

    /// Sets the suffix-array sampling rate (text positions between samples).
    ///
    /// Larger rates shrink the index (the footprint reduction the paper's
    /// §IV points at, citing Bowtie 2) at the cost of slower locates.
    ///
    /// # Panics
    ///
    /// Panics if `positions == 0`.
    pub fn sa_sample(mut self, positions: usize) -> FmBuilder {
        assert!(positions > 0, "sa sample rate must be positive");
        self.sa_sample = positions;
        self
    }

    /// Builds the index over `reference`.
    pub fn build(self, reference: &DnaSeq) -> FmIndex {
        FmIndex::build_with(reference, self)
    }
}

/// Memory footprint of an [`FmIndex`], in bytes per component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FmFootprint {
    /// BWT symbol storage.
    pub bwt_bytes: usize,
    /// Occ rank checkpoints.
    pub occ_bytes: usize,
    /// Sampled suffix-array entries.
    pub sa_bytes: usize,
    /// Sample-marking bit vector.
    pub mark_bytes: usize,
}

impl FmFootprint {
    /// Total bytes across all components.
    pub fn total(&self) -> usize {
        self.bwt_bytes + self.occ_bytes + self.sa_bytes + self.mark_bytes
    }
}

/// An FM-Index over a DNA reference.
///
/// # Example
///
/// ```
/// use repute_genome::DnaSeq;
/// use repute_index::FmIndex;
///
/// # fn main() -> Result<(), repute_genome::GenomeError> {
/// let reference: DnaSeq = "ACGTACGTACGA".parse()?;
/// let fm = FmIndex::build(&reference);
///
/// let pattern: DnaSeq = "CGT".parse()?;
/// let interval = fm.interval(&pattern.to_codes()).expect("pattern occurs");
/// assert_eq!(interval.width(), 2);
///
/// let mut positions = fm.locate(interval, usize::MAX);
/// positions.sort_unstable();
/// assert_eq!(positions, vec![1, 5]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FmIndex {
    bwt: Vec<u8>,
    /// `first[s]` = number of symbols lexicographically smaller than `s`
    /// (internal alphabet: sentinel `0`, bases `1..=4`).
    first: [u32; 5],
    /// Rank checkpoints: counts of each *base* symbol before every
    /// `occ_sample`-th row.
    occ_checkpoints: Vec<[u32; 4]>,
    occ_sample: usize,
    /// Marks BWT rows whose suffix position is sampled.
    sampled_rows: RankBitVec,
    /// Suffix positions for marked rows, in row order.
    sa_samples: Vec<u32>,
    sa_sample: usize,
    text_len: usize,
}

impl FmIndex {
    /// Builds an index with default sampling (Occ every 128 rows, SA every
    /// 32 positions).
    pub fn build(reference: &DnaSeq) -> FmIndex {
        FmBuilder::default().build(reference)
    }

    /// Starts a builder to customise sampling rates.
    pub fn builder() -> FmBuilder {
        FmBuilder::default()
    }

    fn build_with(reference: &DnaSeq, config: FmBuilder) -> FmIndex {
        let codes = reference.to_codes();
        let sa = SuffixArray::from_codes(&codes);
        let bwt = bwt::transform_with_sa(&codes, &sa);
        let n_rows = bwt.symbols.len();

        // Symbol counts -> `first` array.
        let mut counts = [0u32; 5];
        for &s in &bwt.symbols {
            counts[s as usize] += 1;
        }
        let mut first = [0u32; 5];
        let mut sum = 0u32;
        for s in 0..5 {
            first[s] = sum;
            sum += counts[s];
        }

        // Occ checkpoints.
        let mut occ_checkpoints = Vec::with_capacity(n_rows / config.occ_sample + 1);
        let mut running = [0u32; 4];
        for (row, &s) in bwt.symbols.iter().enumerate() {
            if row % config.occ_sample == 0 {
                occ_checkpoints.push(running);
            }
            if s != SENTINEL {
                running[(s - 1) as usize] += 1;
            }
        }

        // Sampled SA: row 0 is the sentinel suffix (conceptual position
        // `text_len`), never sampled. A text position p is sampled iff
        // p % sa_sample == 0, which always includes p = 0 so every LF walk
        // terminates.
        let mut row_positions: Vec<Option<u32>> = vec![None; n_rows];
        for (i, &p) in sa.positions().iter().enumerate() {
            if (p as usize).is_multiple_of(config.sa_sample) {
                row_positions[i + 1] = Some(p);
            }
        }
        let sampled_rows = RankBitVec::from_bits(row_positions.iter().map(|p| p.is_some()));
        let sa_samples: Vec<u32> = row_positions.into_iter().flatten().collect();

        FmIndex {
            bwt: bwt.symbols,
            first,
            occ_checkpoints,
            occ_sample: config.occ_sample,
            sampled_rows,
            sa_samples,
            sa_sample: config.sa_sample,
            text_len: codes.len(),
        }
    }

    /// Length of the indexed reference in bases.
    pub fn text_len(&self) -> usize {
        self.text_len
    }

    /// The interval covering every suffix (the backward-search start state).
    pub fn full_interval(&self) -> Interval {
        Interval {
            lo: 0,
            hi: self.bwt.len() as u32,
        }
    }

    /// Rank of base `code` among BWT rows strictly before `row`.
    #[inline]
    fn occ(&self, code: u8, row: u32) -> u32 {
        let row = row as usize;
        // `row == bwt.len()` (interval upper bound) can land one past the
        // last checkpoint; clamp and scan the remainder.
        let checkpoint = (row / self.occ_sample).min(self.occ_checkpoints.len() - 1);
        let mut count = self.occ_checkpoints[checkpoint][code as usize];
        let symbol = code + 1;
        for &s in &self.bwt[checkpoint * self.occ_sample..row] {
            if s == symbol {
                count += 1;
            }
        }
        count
    }

    /// Extends a match interval one base to the left.
    ///
    /// If `interval` matches pattern `P`, the result matches `base·P`.
    /// Returns an empty interval when no occurrence survives.
    ///
    /// # Panics
    ///
    /// Panics if `code > 3` or the interval is out of range.
    #[inline]
    pub fn extend_left(&self, interval: Interval, code: u8) -> Interval {
        assert!(code <= 3, "base code {code} out of range");
        assert!(
            interval.hi as usize <= self.bwt.len() && interval.lo <= interval.hi,
            "interval {interval:?} out of range"
        );
        let base = self.first[(code + 1) as usize];
        Interval {
            lo: base + self.occ(code, interval.lo),
            hi: base + self.occ(code, interval.hi),
        }
    }

    /// Backward-searches a pattern of 2-bit base codes.
    ///
    /// Returns `None` when the pattern does not occur. The empty pattern
    /// yields the full interval.
    ///
    /// # Panics
    ///
    /// Panics if any code exceeds 3.
    pub fn interval(&self, pattern: &[u8]) -> Option<Interval> {
        let mut interval = self.full_interval();
        for &code in pattern.iter().rev() {
            interval = self.extend_left(interval, code);
            if interval.is_empty() {
                return None;
            }
        }
        Some(interval)
    }

    /// Number of occurrences of a pattern in the reference.
    ///
    /// # Panics
    ///
    /// Panics if any code exceeds 3.
    pub fn count(&self, pattern: &[u8]) -> u32 {
        self.interval(pattern).map_or(0, Interval::width)
    }

    /// One LF-mapping step: the row of the suffix one position to the left.
    #[inline]
    fn lf(&self, row: u32) -> u32 {
        let s = self.bwt[row as usize];
        if s == SENTINEL {
            0
        } else {
            self.first[s as usize] + self.occ(s - 1, row)
        }
    }

    /// Recovers the text position of a single BWT row via the sampled SA.
    ///
    /// # Panics
    ///
    /// Panics if `row` is the sentinel row 0 (which has no text position)
    /// or out of range.
    pub fn position_of_row(&self, row: u32) -> u32 {
        assert!(
            row > 0 && (row as usize) < self.bwt.len(),
            "row {row} has no text position"
        );
        let mut row = row;
        let mut steps = 0u32;
        loop {
            if self.sampled_rows.get(row as usize) {
                let idx = self.sampled_rows.rank1(row as usize);
                return self.sa_samples[idx] + steps;
            }
            row = self.lf(row);
            steps += 1;
            debug_assert!(steps as usize <= self.sa_sample + 1, "LF walk too long");
        }
    }

    /// Recovers up to `limit` text positions for an interval.
    ///
    /// Positions are returned in row order (not sorted). This mirrors the
    /// paper's *first-n* output restriction: OpenCL 1.2 forbids dynamic
    /// allocation, so REPUTE reports only the first `n` locations per read.
    pub fn locate(&self, interval: Interval, limit: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(interval.width().min(limit as u32) as usize);
        for row in interval.lo..interval.hi {
            if out.len() >= limit {
                break;
            }
            if row == 0 {
                continue; // sentinel row: matches nothing real
            }
            out.push(self.position_of_row(row));
        }
        out
    }

    /// Serialises the index to a binary stream (the `repute` CLI's
    /// prebuilt-index format). Only the BWT and the suffix-array samples —
    /// the expensive-to-rebuild parts — are stored; rank checkpoints are
    /// reconstructed on load.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out` (a `&mut` writer is accepted).
    pub fn write_to<W: std::io::Write>(&self, mut out: W) -> std::io::Result<()> {
        out.write_all(b"RPFM")?;
        out.write_all(&1u16.to_le_bytes())?;
        out.write_all(&(self.occ_sample as u32).to_le_bytes())?;
        out.write_all(&(self.sa_sample as u32).to_le_bytes())?;
        out.write_all(&(self.text_len as u64).to_le_bytes())?;
        out.write_all(&(self.bwt.len() as u64).to_le_bytes())?;
        out.write_all(&self.bwt)?;
        let marked: Vec<u32> = (0..self.bwt.len())
            .filter(|&row| self.sampled_rows.get(row))
            .map(|row| row as u32)
            .collect();
        out.write_all(&(marked.len() as u64).to_le_bytes())?;
        for row in &marked {
            out.write_all(&row.to_le_bytes())?;
        }
        for sample in &self.sa_samples {
            out.write_all(&sample.to_le_bytes())?;
        }
        Ok(())
    }

    /// Deserialises an index written by [`FmIndex::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`std::io::ErrorKind::InvalidData`] on a bad magic,
    /// version, or inconsistent payload, and propagates I/O errors from
    /// `input` (a `&mut` reader is accepted).
    pub fn read_from<R: std::io::Read>(mut input: R) -> std::io::Result<FmIndex> {
        fn bad(msg: impl Into<String>) -> std::io::Error {
            std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
        }
        let mut magic = [0u8; 4];
        input.read_exact(&mut magic)?;
        if &magic != b"RPFM" {
            return Err(bad("not an FM-Index stream (bad magic)"));
        }
        let mut b2 = [0u8; 2];
        input.read_exact(&mut b2)?;
        if u16::from_le_bytes(b2) != 1 {
            return Err(bad("unsupported FM-Index format version"));
        }
        let mut b4 = [0u8; 4];
        let mut b8 = [0u8; 8];
        input.read_exact(&mut b4)?;
        let occ_sample = u32::from_le_bytes(b4) as usize;
        input.read_exact(&mut b4)?;
        let sa_sample = u32::from_le_bytes(b4) as usize;
        if occ_sample == 0 || sa_sample == 0 {
            return Err(bad("zero sampling rate"));
        }
        input.read_exact(&mut b8)?;
        let text_len = u64::from_le_bytes(b8) as usize;
        input.read_exact(&mut b8)?;
        let bwt_len = u64::from_le_bytes(b8) as usize;
        if bwt_len != text_len + 1 {
            return Err(bad(format!(
                "BWT length {bwt_len} does not match text length {text_len}"
            )));
        }
        let mut bwt = vec![0u8; bwt_len];
        input.read_exact(&mut bwt)?;
        if bwt.iter().any(|&s| s > 4) {
            return Err(bad("BWT symbol out of range"));
        }
        if bwt.iter().filter(|&&s| s == SENTINEL).count() != 1 {
            return Err(bad("BWT must contain exactly one sentinel"));
        }
        input.read_exact(&mut b8)?;
        let marked_count = u64::from_le_bytes(b8) as usize;
        if marked_count > bwt_len {
            return Err(bad("more SA samples than BWT rows"));
        }
        let mut marked = vec![0u32; marked_count];
        for slot in &mut marked {
            input.read_exact(&mut b4)?;
            *slot = u32::from_le_bytes(b4);
        }
        if marked.windows(2).any(|w| w[0] >= w[1])
            || marked.last().is_some_and(|&r| r as usize >= bwt_len)
        {
            return Err(bad("sampled rows must be strictly increasing and in range"));
        }
        let mut sa_samples = vec![0u32; marked_count];
        for slot in &mut sa_samples {
            input.read_exact(&mut b4)?;
            *slot = u32::from_le_bytes(b4);
        }

        // Rebuild the derived structures (cheap linear passes).
        let mut counts = [0u32; 5];
        for &s in &bwt {
            counts[s as usize] += 1;
        }
        let mut first = [0u32; 5];
        let mut sum = 0u32;
        for s in 0..5 {
            first[s] = sum;
            sum += counts[s];
        }
        let mut occ_checkpoints = Vec::with_capacity(bwt_len / occ_sample + 1);
        let mut running = [0u32; 4];
        for (row, &s) in bwt.iter().enumerate() {
            if row % occ_sample == 0 {
                occ_checkpoints.push(running);
            }
            if s != SENTINEL {
                running[(s - 1) as usize] += 1;
            }
        }
        let mut marked_iter = marked.iter().peekable();
        let sampled_rows = RankBitVec::from_bits((0..bwt_len).map(|row| {
            if marked_iter.peek() == Some(&&(row as u32)) {
                marked_iter.next();
                true
            } else {
                false
            }
        }));
        Ok(FmIndex {
            bwt,
            first,
            occ_checkpoints,
            occ_sample,
            sampled_rows,
            sa_samples,
            sa_sample,
            text_len,
        })
    }

    /// Reports the index's memory footprint per component.
    pub fn footprint(&self) -> FmFootprint {
        FmFootprint {
            bwt_bytes: self.bwt.len(),
            occ_bytes: self.occ_checkpoints.len() * std::mem::size_of::<[u32; 4]>(),
            sa_bytes: self.sa_samples.len() * 4,
            mark_bytes: self.sampled_rows.heap_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repute_genome::rng::StdRng;
    use repute_genome::synth::ReferenceBuilder;

    fn naive_count(text: &[u8], pattern: &[u8]) -> u32 {
        if pattern.is_empty() || pattern.len() > text.len() {
            return if pattern.is_empty() {
                text.len() as u32 + 1
            } else {
                0
            };
        }
        text.windows(pattern.len())
            .filter(|w| *w == pattern)
            .count() as u32
    }

    fn naive_positions(text: &[u8], pattern: &[u8]) -> Vec<u32> {
        text.windows(pattern.len())
            .enumerate()
            .filter(|(_, w)| *w == pattern)
            .map(|(i, _)| i as u32)
            .collect()
    }

    #[test]
    fn counts_match_naive_on_random_text() {
        let mut rng = StdRng::seed_from_u64(17);
        let codes: Vec<u8> = (0..2000).map(|_| rng.gen_range(0..4)).collect();
        let seq = DnaSeq::from_codes(&codes).unwrap();
        let fm = FmIndex::build(&seq);
        for plen in [1usize, 2, 4, 8, 16] {
            for _ in 0..20 {
                let start = rng.gen_range(0..codes.len() - plen);
                let pattern = &codes[start..start + plen];
                assert_eq!(
                    fm.count(pattern),
                    naive_count(&codes, pattern),
                    "pattern at {start} len {plen}"
                );
            }
        }
    }

    #[test]
    fn absent_pattern_counts_zero() {
        let seq: DnaSeq = "AAAAAAAA".parse().unwrap();
        let fm = FmIndex::build(&seq);
        assert_eq!(fm.count(&[1]), 0); // no C
        assert!(fm.interval(&[1, 1]).is_none());
        assert_eq!(fm.count(&[0]), 8);
    }

    #[test]
    fn empty_pattern_yields_full_interval() {
        let seq: DnaSeq = "ACGT".parse().unwrap();
        let fm = FmIndex::build(&seq);
        assert_eq!(fm.interval(&[]), Some(fm.full_interval()));
    }

    #[test]
    fn locate_matches_naive() {
        let mut rng = StdRng::seed_from_u64(23);
        let codes: Vec<u8> = (0..1500).map(|_| rng.gen_range(0..4)).collect();
        let seq = DnaSeq::from_codes(&codes).unwrap();
        for sa_sample in [1usize, 4, 32, 64] {
            let fm = FmIndex::builder().sa_sample(sa_sample).build(&seq);
            for plen in [3usize, 6, 12] {
                for _ in 0..10 {
                    let start = rng.gen_range(0..codes.len() - plen);
                    let pattern = &codes[start..start + plen];
                    let interval = fm.interval(pattern).expect("pattern occurs");
                    let mut got = fm.locate(interval, usize::MAX);
                    got.sort_unstable();
                    assert_eq!(
                        got,
                        naive_positions(&codes, pattern),
                        "sa_sample {sa_sample}"
                    );
                }
            }
        }
    }

    #[test]
    fn locate_respects_limit() {
        let seq: DnaSeq = "ACACACACACACACAC".parse().unwrap();
        let fm = FmIndex::build(&seq);
        let interval = fm.interval(&[0, 1]).unwrap(); // "AC"
        assert_eq!(interval.width(), 8);
        assert_eq!(fm.locate(interval, 3).len(), 3);
        assert_eq!(fm.locate(interval, 0).len(), 0);
    }

    #[test]
    fn extend_left_composes_like_interval() {
        let reference = ReferenceBuilder::new(5000).seed(9).build();
        let codes = reference.to_codes();
        let fm = FmIndex::build(&reference);
        let pattern = &codes[100..116];
        // Manual right-to-left extension equals one-shot search.
        let mut interval = fm.full_interval();
        for &c in pattern.iter().rev() {
            interval = fm.extend_left(interval, c);
        }
        assert_eq!(Some(interval), fm.interval(pattern));
    }

    #[test]
    fn occ_sampling_rates_agree() {
        let reference = ReferenceBuilder::new(3000).seed(10).build();
        let codes = reference.to_codes();
        let coarse = FmIndex::builder().occ_sample(512).build(&reference);
        let fine = FmIndex::builder().occ_sample(1).build(&reference);
        for start in (0..2900).step_by(97) {
            let pattern = &codes[start..start + 14];
            assert_eq!(coarse.count(pattern), fine.count(pattern));
        }
    }

    #[test]
    fn footprint_shrinks_with_sparser_sa_sampling() {
        let reference = ReferenceBuilder::new(20_000).seed(11).build();
        let dense = FmIndex::builder().sa_sample(1).build(&reference);
        let sparse = FmIndex::builder().sa_sample(64).build(&reference);
        assert!(sparse.footprint().sa_bytes < dense.footprint().sa_bytes / 32);
        assert!(sparse.footprint().total() < dense.footprint().total());
        assert!(dense.footprint().total() > 0);
    }

    #[test]
    fn full_genome_scale_smoke() {
        let reference = ReferenceBuilder::new(100_000).seed(12).build();
        let codes = reference.to_codes();
        let fm = FmIndex::build(&reference);
        // Every sampled 20-mer of the reference must be found at its origin.
        for start in (0..codes.len() - 20).step_by(9973) {
            let pattern = &codes[start..start + 20];
            let interval = fm.interval(pattern).expect("present");
            let positions = fm.locate(interval, usize::MAX);
            assert!(
                positions.contains(&(start as u32)),
                "missing origin {start}"
            );
        }
    }

    #[test]
    fn serialisation_round_trips_and_answers_identically() {
        let reference = ReferenceBuilder::new(30_000).seed(88).build();
        let codes = reference.to_codes();
        let fm = FmIndex::builder()
            .sa_sample(8)
            .occ_sample(64)
            .build(&reference);
        let mut buf = Vec::new();
        fm.write_to(&mut buf).unwrap();
        let back = FmIndex::read_from(buf.as_slice()).unwrap();
        assert_eq!(back.text_len(), fm.text_len());
        for start in (0..29_900).step_by(977) {
            let pattern = &codes[start..start + 18];
            assert_eq!(back.count(pattern), fm.count(pattern));
            if let Some(iv) = fm.interval(pattern) {
                let mut a = fm.locate(iv, usize::MAX);
                let mut b = back.locate(back.interval(pattern).unwrap(), usize::MAX);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn serialisation_rejects_corruption() {
        let reference = ReferenceBuilder::new(2_000).seed(89).build();
        let fm = FmIndex::build(&reference);
        let mut buf = Vec::new();
        fm.write_to(&mut buf).unwrap();
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(FmIndex::read_from(bad.as_slice()).is_err());
        // Truncation.
        let short = &buf[..buf.len() - 4];
        assert!(FmIndex::read_from(short).is_err());
        // Corrupted BWT symbol.
        let mut bad = buf.clone();
        bad[30] = 9;
        assert!(FmIndex::read_from(bad.as_slice()).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_code_rejected() {
        let seq: DnaSeq = "ACGT".parse().unwrap();
        let fm = FmIndex::build(&seq);
        let _ = fm.count(&[4]);
    }

    #[test]
    #[should_panic(expected = "no text position")]
    fn sentinel_row_has_no_position() {
        let seq: DnaSeq = "ACGT".parse().unwrap();
        let fm = FmIndex::build(&seq);
        let _ = fm.position_of_row(0);
    }
}
