//! Reference-genome index substrate for the REPUTE reproduction.
//!
//! The paper's preprocessing stage (§II-A) stores the reference in an
//! FM-Index backed by a suffix array, the combination used by GEM, Yara,
//! CORAL and BWA-MEM. This crate builds that stack from scratch:
//!
//! * [`RankBitVec`] — a bit vector with O(1) rank support,
//! * [`SuffixArray`] — linear-time SA-IS construction,
//! * [`bwt`] — the Burrows–Wheeler transform and its inverse,
//! * [`FmIndex`] — backward search, left extension and sampled-SA locate,
//! * [`QGramIndex`] — the hash-based index used by the RazerS3- and
//!   Hobbes3-style baselines.
//!
//! # Example
//!
//! ```
//! use repute_genome::DnaSeq;
//! use repute_index::FmIndex;
//!
//! # fn main() -> Result<(), repute_genome::GenomeError> {
//! let reference: DnaSeq = "ACGTACGTTTACGT".parse()?;
//! let fm = FmIndex::build(&reference);
//! let pattern: DnaSeq = "ACGT".parse()?;
//! assert_eq!(fm.count(&pattern.to_codes()), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bifm;
mod bitvec;
pub mod bwt;
mod fm;
mod lcp;
mod qgram;
mod suffix_array;

pub use bifm::{BiFmIndex, BiInterval, Smem};
pub use bitvec::RankBitVec;
pub use fm::{FmFootprint, FmIndex, Interval};
pub use lcp::LcpArray;
pub use qgram::QGramIndex;
pub use suffix_array::SuffixArray;
