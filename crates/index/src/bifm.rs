//! Bidirectional FM-Index (2BWT) and super-maximal exact matches.
//!
//! A single FM-Index only extends patterns leftward. Pairing it with an
//! index of the *reversed* text (Lam et al. 2009) keeps two synchronised
//! intervals — one per direction — so a match can grow either way in
//! O(σ) rank queries. This is the machinery behind BWA-MEM's SMEM seeding
//! (Li 2012) and the seed extension of GEM/Yara; the BWA-MEM baseline of
//! this reproduction uses [`BiFmIndex::smems`] for its seeds.

use repute_genome::{Base, DnaSeq};

use crate::fm::{FmIndex, Interval};

/// A pair of synchronised intervals: `fwd` in the index of the text,
/// `rev` in the index of the reversed text. Both always have the same
/// width (the occurrence count of the current pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BiInterval {
    /// Interval of the pattern in the forward index.
    pub fwd: Interval,
    /// Interval of the reversed pattern in the reverse index.
    pub rev: Interval,
}

impl BiInterval {
    /// Occurrence count of the pattern.
    pub fn width(self) -> u32 {
        self.fwd.width()
    }

    /// Returns `true` when the pattern no longer occurs.
    pub fn is_empty(self) -> bool {
        self.fwd.is_empty()
    }
}

/// A maximal exact match of a read against the reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Smem {
    /// Start offset in the read (inclusive).
    pub start: usize,
    /// End offset in the read (exclusive).
    pub end: usize,
    /// Match interval (forward index), ready for locating.
    pub interval: Interval,
}

impl Smem {
    /// Match length in bases.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns `false` always (SMEMs are at least one base long).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// The bidirectional index.
///
/// # Example
///
/// ```
/// use repute_genome::DnaSeq;
/// use repute_index::BiFmIndex;
///
/// # fn main() -> Result<(), repute_genome::GenomeError> {
/// let reference: DnaSeq = "ACGTACGTTTACGT".parse()?;
/// let bi = BiFmIndex::build(&reference);
/// // Grow "CG" rightwards into "CGT": both directions stay in sync.
/// let mut iv = bi.init();
/// iv = bi.extend_left(iv, 2); // G
/// iv = bi.extend_left(iv, 1); // C → "CG"
/// let cgt = bi.extend_right(iv, 3); // → "CGT"
/// assert_eq!(cgt.width(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BiFmIndex {
    fwd: FmIndex,
    rev: FmIndex,
}

impl BiFmIndex {
    /// Builds both directions' indexes.
    pub fn build(reference: &DnaSeq) -> BiFmIndex {
        let reversed: DnaSeq = (0..reference.len())
            .rev()
            .map(|i| reference.base(i))
            .collect();
        BiFmIndex {
            fwd: FmIndex::build(reference),
            rev: FmIndex::build(&reversed),
        }
    }

    /// The forward index (for locating matches).
    pub fn forward(&self) -> &FmIndex {
        &self.fwd
    }

    /// Length of the indexed reference.
    pub fn text_len(&self) -> usize {
        self.fwd.text_len()
    }

    /// The interval pair of the empty pattern.
    pub fn init(&self) -> BiInterval {
        BiInterval {
            fwd: self.fwd.full_interval(),
            rev: self.rev.full_interval(),
        }
    }

    /// Widths of all four left extensions of the pattern plus the count
    /// of occurrences at the very start of the text (preceded by the
    /// conceptual sentinel).
    fn left_extension_widths(&self, iv: BiInterval) -> ([u32; 4], [Interval; 4], u32) {
        let mut widths = [0u32; 4];
        let mut intervals = [iv.fwd; 4];
        let mut covered = 0u32;
        for b in Base::ALL {
            let ext = self.fwd.extend_left(iv.fwd, b.code());
            widths[b.code() as usize] = ext.width();
            intervals[b.code() as usize] = ext;
            covered += ext.width();
        }
        (widths, intervals, iv.width() - covered)
    }

    /// Extends the pattern one base to the left (`code·P`).
    ///
    /// # Panics
    ///
    /// Panics if `code > 3`.
    pub fn extend_left(&self, iv: BiInterval, code: u8) -> BiInterval {
        assert!(code <= 3, "base code {code} out of range");
        let (widths, intervals, sentinel) = self.left_extension_widths(iv);
        // Occurrences of rev(P)·x sort by x inside the rev interval, with
        // the text-start occurrences (sentinel-followed) first.
        let mut lo = iv.rev.lo + sentinel;
        for b in 0..code {
            lo += widths[b as usize];
        }
        let w = widths[code as usize];
        BiInterval {
            fwd: intervals[code as usize],
            rev: Interval { lo, hi: lo + w },
        }
    }

    /// Extends the pattern one base to the right (`P·code`).
    ///
    /// # Panics
    ///
    /// Panics if `code > 3`.
    pub fn extend_right(&self, iv: BiInterval, code: u8) -> BiInterval {
        assert!(code <= 3, "base code {code} out of range");
        // Mirror image: extend the reversed pattern leftward in the
        // reverse index.
        let mirrored = BiInterval {
            fwd: iv.rev,
            rev: iv.fwd,
        };
        let mut widths = [0u32; 4];
        let mut intervals = [mirrored.fwd; 4];
        let mut covered = 0u32;
        for b in Base::ALL {
            let ext = self.rev.extend_left(mirrored.fwd, b.code());
            widths[b.code() as usize] = ext.width();
            intervals[b.code() as usize] = ext;
            covered += ext.width();
        }
        let sentinel = mirrored.width() - covered;
        let mut lo = mirrored.rev.lo + sentinel;
        for b in 0..code {
            lo += widths[b as usize];
        }
        let w = widths[code as usize];
        BiInterval {
            fwd: Interval { lo, hi: lo + w },
            rev: intervals[code as usize],
        }
    }

    /// Backward-searches a whole pattern (left extensions only).
    ///
    /// Returns `None` when the pattern does not occur.
    pub fn search(&self, pattern: &[u8]) -> Option<BiInterval> {
        let mut iv = self.init();
        for &c in pattern.iter().rev() {
            iv = self.extend_left(iv, c);
            if iv.is_empty() {
                return None;
            }
        }
        Some(iv)
    }

    /// Computes the super-maximal exact matches of `read` (Li 2012,
    /// Algorithm 2 shape): exact matches that cannot be extended in
    /// either direction and are not contained in any other maximal match.
    /// Matches shorter than `min_len` are dropped. Returns the SMEMs in
    /// read order, plus the number of bidirectional extension steps spent
    /// (each costs ~4 rank-query pairs).
    pub fn smems(&self, read: &[u8], min_len: usize) -> (Vec<Smem>, u64) {
        let n = read.len();
        let mut out = Vec::new();
        let mut steps = 0u64;
        let mut x = 0usize;
        while x < n {
            // Forward pass: grow [x, e) rightward, recording the interval
            // at every width change.
            let mut curr: Vec<(usize, BiInterval)> = Vec::new(); // (end, interval)
            let mut iv = self.init();
            let mut e = x;
            while e < n {
                let next = self.extend_right(iv, read[e]);
                steps += 1;
                if next.is_empty() {
                    break;
                }
                if curr
                    .last()
                    .is_none_or(|&(_, last)| next.width() != last.width())
                {
                    curr.push((e + 1, next));
                } else {
                    curr.last_mut().expect("non-empty").0 = e + 1;
                }
                iv = next;
                e += 1;
            }
            if curr.is_empty() {
                // read[x] does not occur at all.
                x += 1;
                continue;
            }
            // Backward pass: for matches ending at each recorded end,
            // grow leftward from x−1; the longest left-extension wins and
            // supermaximality drops dominated candidates.
            let next_x = curr.last().expect("non-empty").0;
            // Candidates in decreasing end order.
            let mut best_start_emitted = usize::MAX;
            for &(end, end_iv) in curr.iter().rev() {
                let mut iv = end_iv;
                let mut s = x;
                while s > 0 {
                    let ext = self.extend_left(iv, read[s - 1]);
                    steps += 1;
                    if ext.is_empty() {
                        break;
                    }
                    iv = ext;
                    s -= 1;
                }
                // A candidate is supermaximal only if its left end is
                // strictly left of every already-emitted match's start
                // (longer ends were processed first).
                if s < best_start_emitted {
                    best_start_emitted = s;
                    if end - s >= min_len {
                        out.push(Smem {
                            start: s,
                            end,
                            interval: iv.fwd,
                        });
                    }
                }
            }
            x = next_x.max(x + 1);
        }
        out.sort_by_key(|m| (m.start, m.end));
        out.dedup();
        (out, steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repute_genome::rng::StdRng;
    use repute_genome::synth::ReferenceBuilder;

    fn naive_count(text: &[u8], pattern: &[u8]) -> u32 {
        if pattern.is_empty() {
            return text.len() as u32 + 1;
        }
        if pattern.len() > text.len() {
            return 0;
        }
        text.windows(pattern.len())
            .filter(|w| *w == pattern)
            .count() as u32
    }

    #[test]
    fn left_and_right_extensions_agree_with_naive_counts() {
        let mut rng = StdRng::seed_from_u64(501);
        let codes: Vec<u8> = (0..1500).map(|_| rng.gen_range(0..4)).collect();
        let seq = DnaSeq::from_codes(&codes).unwrap();
        let bi = BiFmIndex::build(&seq);
        for _ in 0..60 {
            let len = rng.gen_range(1..12usize);
            let start = rng.gen_range(0..codes.len() - len);
            let pattern = &codes[start..start + len];
            // Build the pattern by a random mix of left/right extensions.
            let mut lo = rng.gen_range(0..len);
            let mut hi = lo;
            let mut iv = bi.init();
            while hi - lo < len {
                if (lo > 0 && rng.gen::<bool>()) || hi == len {
                    lo -= 1;
                    iv = bi.extend_left(iv, pattern[lo]);
                } else {
                    iv = bi.extend_right(iv, pattern[hi]);
                    hi += 1;
                }
            }
            assert_eq!(
                iv.width(),
                naive_count(&codes, pattern),
                "pattern {pattern:?}"
            );
            // Both directions stay in sync.
            assert_eq!(iv.fwd.width(), iv.rev.width());
            // And the forward interval matches a plain backward search.
            assert_eq!(Some(iv.fwd), bi.forward().interval(pattern));
        }
    }

    #[test]
    fn search_matches_fm_interval() {
        let reference = ReferenceBuilder::new(5_000).seed(502).build();
        let codes = reference.to_codes();
        let bi = BiFmIndex::build(&reference);
        for start in (0..4_900).step_by(173) {
            let pattern = &codes[start..start + 16];
            let via_bi = bi.search(pattern).map(|iv| iv.fwd);
            assert_eq!(via_bi, bi.forward().interval(pattern));
        }
    }

    fn naive_smems(text: &[u8], read: &[u8], min_len: usize) -> Vec<(usize, usize)> {
        // All maximal exact matches by brute force, then drop contained
        // ones.
        let n = read.len();
        let occurs = |s: usize, e: usize| naive_count(text, &read[s..e]) > 0;
        let mut mems = Vec::new();
        for s in 0..n {
            if !occurs(s, s + 1) {
                continue;
            }
            let mut e = s + 1;
            while e < n && occurs(s, e + 1) {
                e += 1;
            }
            // Maximal to the right from s; check left-maximality.
            let left_extendable = s > 0 && occurs(s - 1, e);
            if !left_extendable && e - s >= min_len {
                mems.push((s, e));
            }
        }
        // Supermaximal: not contained in another.
        mems.iter()
            .copied()
            .filter(|&(s, e)| {
                !mems
                    .iter()
                    .any(|&(s2, e2)| (s2, e2) != (s, e) && s2 <= s && e <= e2)
            })
            .collect()
    }

    #[test]
    fn smems_match_brute_force() {
        let mut rng = StdRng::seed_from_u64(503);
        for trial in 0..40 {
            let text_codes: Vec<u8> = (0..400).map(|_| rng.gen_range(0..4)).collect();
            let seq = DnaSeq::from_codes(&text_codes).unwrap();
            let bi = BiFmIndex::build(&seq);
            // Reads stitched from reference pieces + noise, so MEM
            // structure is non-trivial.
            let mut read = Vec::new();
            for _ in 0..3 {
                let s = rng.gen_range(0..text_codes.len() - 20);
                read.extend_from_slice(&text_codes[s..s + rng.gen_range(5..20)]);
                read.push(rng.gen_range(0..4));
            }
            let (got, steps) = bi.smems(&read, 1);
            let got_spans: Vec<(usize, usize)> = got.iter().map(|m| (m.start, m.end)).collect();
            let expected = naive_smems(&text_codes, &read, 1);
            assert_eq!(got_spans, expected, "trial {trial} read {read:?}");
            assert!(steps > 0);
            // Interval counts are correct.
            for m in &got {
                assert_eq!(
                    m.interval.width(),
                    naive_count(&text_codes, &read[m.start..m.end])
                );
            }
        }
    }

    #[test]
    fn smems_respect_min_len() {
        let reference = ReferenceBuilder::new(20_000).seed(504).build();
        let read = reference.subseq(500..600).to_codes();
        let bi = BiFmIndex::build(&reference);
        let (all, _) = bi.smems(&read, 1);
        let (long, _) = bi.smems(&read, 25);
        assert!(long.len() <= all.len());
        assert!(long.iter().all(|m| m.len() >= 25));
        // An exact read produces one SMEM covering everything.
        let whole = all.iter().find(|m| m.start == 0 && m.end == 100);
        assert!(whole.is_some(), "full-read SMEM missing: {all:?}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_code_rejected() {
        let seq: DnaSeq = "ACGT".parse().unwrap();
        let bi = BiFmIndex::build(&seq);
        let _ = bi.extend_left(bi.init(), 4);
    }
}
