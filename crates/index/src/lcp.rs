//! Longest-common-prefix arrays (Kasai) and repeat statistics.
//!
//! The LCP array is the suffix array's natural companion: `lcp[i]` is the
//! length of the common prefix of the suffixes at ranks `i−1` and `i`.
//! From it, repeat content — the property of chr21 that makes seed
//! selection matter (see DESIGN.md §2) — can be quantified directly: a
//! run of LCP values ≥ k marks a k-mer occurring multiple times. The
//! workload tests use this to verify the synthetic reference actually has
//! the chr21-like repeat mass the evaluation depends on.

use crate::suffix_array::SuffixArray;

/// The LCP array of a text (Kasai's algorithm, O(n)).
///
/// `lcp()[0]` is 0 by convention; `lcp()[i]` is the LCP of the suffixes
/// ranked `i−1` and `i` in the suffix array.
///
/// # Example
///
/// ```
/// use repute_genome::DnaSeq;
/// use repute_index::{LcpArray, SuffixArray};
///
/// # fn main() -> Result<(), repute_genome::GenomeError> {
/// let text: DnaSeq = "ACGTACG".parse()?;
/// let sa = SuffixArray::build(&text);
/// let lcp = LcpArray::build(&text.to_codes(), &sa);
/// // Suffixes "ACG" (pos 4) and "ACGTACG" (pos 0) share "ACG".
/// assert_eq!(lcp.lcp()[1], 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LcpArray {
    lcp: Vec<u32>,
}

impl LcpArray {
    /// Builds the LCP array for `codes` and its suffix array.
    ///
    /// # Panics
    ///
    /// Panics if `sa` was not built over `codes`.
    pub fn build(codes: &[u8], sa: &SuffixArray) -> LcpArray {
        assert_eq!(sa.len(), codes.len(), "suffix array does not match text");
        let n = codes.len();
        if n == 0 {
            return LcpArray { lcp: vec![] };
        }
        // rank[p] = position of suffix p in the suffix array.
        let mut rank = vec![0u32; n];
        for (i, &p) in sa.positions().iter().enumerate() {
            rank[p as usize] = i as u32;
        }
        let mut lcp = vec![0u32; n];
        let mut h = 0usize;
        for p in 0..n {
            let r = rank[p] as usize;
            if r == 0 {
                h = 0;
                continue;
            }
            let q = sa.positions()[r - 1] as usize;
            while p + h < n && q + h < n && codes[p + h] == codes[q + h] {
                h += 1;
            }
            lcp[r] = h as u32;
            h = h.saturating_sub(1);
        }
        LcpArray { lcp }
    }

    /// The LCP values, aligned with the suffix array's ranks.
    pub fn lcp(&self) -> &[u32] {
        &self.lcp
    }

    /// The longest repeated substring length in the text.
    pub fn longest_repeat(&self) -> u32 {
        self.lcp.iter().copied().max().unwrap_or(0)
    }

    /// Fraction of text positions that begin a k-mer occurring at least
    /// twice — the "repeat mass" at resolution `k`, in `[0, 1]`.
    ///
    /// A suffix's k-prefix is repeated iff its LCP with the rank
    /// neighbour above *or* below reaches `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn repeat_fraction(&self, k: u32) -> f64 {
        assert!(k > 0, "k must be positive");
        let n = self.lcp.len();
        if n == 0 {
            return 0.0;
        }
        let mut repeated = 0usize;
        for i in 0..n {
            let above = if i + 1 < n { self.lcp[i + 1] } else { 0 };
            if self.lcp[i] >= k || above >= k {
                repeated += 1;
            }
        }
        repeated as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repute_genome::rng::StdRng;
    use repute_genome::synth::{random_sequence, ReferenceBuilder};
    use repute_genome::DnaSeq;

    fn naive_lcp(a: &[u8], b: &[u8]) -> u32 {
        a.iter().zip(b).take_while(|(x, y)| x == y).count() as u32
    }

    #[test]
    fn matches_naive_on_random_texts() {
        let mut rng = StdRng::seed_from_u64(881);
        for len in [1usize, 2, 50, 400] {
            let codes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..4)).collect();
            let sa = SuffixArray::from_codes(&codes);
            let lcp = LcpArray::build(&codes, &sa);
            assert_eq!(lcp.lcp().len(), len);
            assert_eq!(lcp.lcp()[0], 0);
            for i in 1..len {
                let a = sa.positions()[i - 1] as usize;
                let b = sa.positions()[i] as usize;
                assert_eq!(
                    lcp.lcp()[i],
                    naive_lcp(&codes[a..], &codes[b..]),
                    "rank {i}"
                );
            }
        }
    }

    #[test]
    fn empty_text() {
        let sa = SuffixArray::from_codes(&[]);
        let lcp = LcpArray::build(&[], &sa);
        assert_eq!(lcp.longest_repeat(), 0);
        assert_eq!(lcp.repeat_fraction(10), 0.0);
    }

    #[test]
    fn longest_repeat_of_planted_duplicate() {
        // Plant an exact 60-mer twice in otherwise random sequence.
        let mut rng = StdRng::seed_from_u64(882);
        let mut codes: Vec<u8> = (0..2_000).map(|_| rng.gen_range(0..4)).collect();
        let unit: Vec<u8> = (0..60).map(|_| rng.gen_range(0..4)).collect();
        codes[100..160].copy_from_slice(&unit);
        codes[1_500..1_560].copy_from_slice(&unit);
        let sa = SuffixArray::from_codes(&codes);
        let lcp = LcpArray::build(&codes, &sa);
        assert!(lcp.longest_repeat() >= 60);
    }

    #[test]
    fn repeat_fraction_separates_repetitive_from_random() {
        let repetitive = ReferenceBuilder::new(60_000).seed(883).build();
        let random = random_sequence(60_000, 883);
        let frac = |seq: &DnaSeq| {
            let codes = seq.to_codes();
            let sa = SuffixArray::from_codes(&codes);
            LcpArray::build(&codes, &sa).repeat_fraction(20)
        };
        let rep = frac(&repetitive);
        let rnd = frac(&random);
        assert!(
            rep > 10.0 * rnd.max(1e-4),
            "repeat mass should dominate: {rep} vs {rnd}"
        );
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_sa_rejected() {
        let sa = SuffixArray::from_codes(&[0, 1]);
        let _ = LcpArray::build(&[0, 1, 2], &sa);
    }
}
