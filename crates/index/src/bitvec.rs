//! A plain bit vector with constant-time rank support.

/// Bits per storage word.
const WORD_BITS: usize = 64;
/// Words per rank superblock.
const WORDS_PER_BLOCK: usize = 8;

/// An immutable bit vector supporting O(1) `rank1` queries.
///
/// Used by [`crate::FmIndex`] to mark which Burrows–Wheeler rows carry a
/// suffix-array sample, the classic technique for trading locate speed
/// against memory footprint (the paper's §IV points at exactly this
/// trade-off, citing Bowtie 2).
///
/// # Example
///
/// ```
/// use repute_index::RankBitVec;
///
/// let bv = RankBitVec::from_bits((0..10).map(|i| i % 3 == 0));
/// assert!(bv.get(0));
/// assert!(!bv.get(1));
/// assert_eq!(bv.rank1(10), 4); // bits 0, 3, 6, 9
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankBitVec {
    words: Vec<u64>,
    /// Cumulative count of ones before each superblock.
    block_ranks: Vec<u32>,
    len: usize,
    ones: usize,
}

impl RankBitVec {
    /// Builds a bit vector from an iterator of bits.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> RankBitVec {
        let mut words: Vec<u64> = Vec::new();
        let mut len = 0usize;
        for bit in bits {
            if len.is_multiple_of(WORD_BITS) {
                words.push(0);
            }
            if bit {
                let w = len / WORD_BITS;
                words[w] |= 1u64 << (len % WORD_BITS);
            }
            len += 1;
        }
        let mut block_ranks = Vec::with_capacity(words.len() / WORDS_PER_BLOCK + 1);
        let mut running = 0u32;
        for (i, w) in words.iter().enumerate() {
            if i % WORDS_PER_BLOCK == 0 {
                block_ranks.push(running);
            }
            running += w.count_ones();
        }
        RankBitVec {
            words,
            block_ranks,
            len,
            ones: running as usize,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of set bits.
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Returns bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        (self.words[index / WORD_BITS] >> (index % WORD_BITS)) & 1 == 1
    }

    /// Number of set bits strictly before position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos > self.len()`.
    #[inline]
    pub fn rank1(&self, pos: usize) -> usize {
        assert!(
            pos <= self.len,
            "rank position {pos} out of range {}",
            self.len
        );
        let word = pos / WORD_BITS;
        // `pos == len` on a word boundary lands one past the last block;
        // clamp to the final checkpoint and scan the remaining words.
        let block = (word / WORDS_PER_BLOCK).min(self.block_ranks.len().saturating_sub(1));
        let mut rank = self.block_ranks.get(block).copied().unwrap_or(0) as usize;
        for w in (block * WORDS_PER_BLOCK)..word {
            rank += self.words[w].count_ones() as usize;
        }
        let rem = pos % WORD_BITS;
        if rem > 0 {
            let mask = (1u64 << rem) - 1;
            rank += (self.words[word] & mask).count_ones() as usize;
        }
        rank
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * 8 + self.block_ranks.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_rank(bits: &[bool], pos: usize) -> usize {
        bits[..pos].iter().filter(|&&b| b).count()
    }

    #[test]
    fn empty_vector() {
        let bv = RankBitVec::from_bits(std::iter::empty());
        assert!(bv.is_empty());
        assert_eq!(bv.rank1(0), 0);
        assert_eq!(bv.count_ones(), 0);
    }

    #[test]
    fn rank_matches_naive_on_patterned_input() {
        let bits: Vec<bool> = (0..1000).map(|i| (i * 7 + 3) % 5 == 0).collect();
        let bv = RankBitVec::from_bits(bits.iter().copied());
        assert_eq!(bv.len(), 1000);
        for pos in 0..=1000 {
            assert_eq!(bv.rank1(pos), naive_rank(&bits, pos), "pos {pos}");
        }
    }

    #[test]
    fn rank_across_superblock_boundaries() {
        // 8 words per block = 512 bits; test around multiples of 512.
        let bits: Vec<bool> = (0..2048).map(|i| i % 2 == 0).collect();
        let bv = RankBitVec::from_bits(bits.iter().copied());
        for pos in [511, 512, 513, 1023, 1024, 1536, 2048] {
            assert_eq!(bv.rank1(pos), naive_rank(&bits, pos), "pos {pos}");
        }
    }

    #[test]
    fn get_reads_bits_back() {
        let bits: Vec<bool> = (0..130).map(|i| i % 3 == 1).collect();
        let bv = RankBitVec::from_bits(bits.iter().copied());
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(bv.get(i), b);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let bv = RankBitVec::from_bits([true, false]);
        let _ = bv.get(2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_out_of_range_panics() {
        let bv = RankBitVec::from_bits([true]);
        let _ = bv.rank1(2);
    }

    #[test]
    fn all_ones_and_all_zeros() {
        let ones = RankBitVec::from_bits(std::iter::repeat_n(true, 300));
        assert_eq!(ones.rank1(300), 300);
        assert_eq!(ones.count_ones(), 300);
        let zeros = RankBitVec::from_bits(std::iter::repeat_n(false, 300));
        assert_eq!(zeros.rank1(300), 0);
    }
}
