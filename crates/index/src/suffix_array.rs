//! Suffix-array construction via SA-IS (suffix-array induced sorting).
//!
//! SA-IS (Nong, Zhang & Chan, 2009) builds the suffix array in O(n) time,
//! which keeps preprocessing practical even on the embedded profile — the
//! paper's HiKey970 has 6 GB of RAM, so index build cost matters there.

use repute_genome::DnaSeq;

/// A suffix array over a DNA reference.
///
/// Entry `i` is the start position of the `i`-th smallest suffix. The
/// implicit terminal sentinel (smaller than every base) is *not* included,
/// so the array is a permutation of `0..text_len`.
///
/// # Example
///
/// ```
/// use repute_genome::DnaSeq;
/// use repute_index::SuffixArray;
///
/// # fn main() -> Result<(), repute_genome::GenomeError> {
/// let text: DnaSeq = "ACGTACG".parse()?;
/// let sa = SuffixArray::build(&text);
/// // Suffix "ACG" (pos 4) sorts before "ACGTACG" (pos 0).
/// assert_eq!(sa.positions()[0], 4);
/// assert_eq!(sa.positions()[1], 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuffixArray {
    positions: Vec<u32>,
}

impl SuffixArray {
    /// Builds the suffix array of `text` with SA-IS.
    ///
    /// # Panics
    ///
    /// Panics if `text` is longer than `u32::MAX - 2` bases.
    pub fn build(text: &DnaSeq) -> SuffixArray {
        Self::from_codes(&text.to_codes())
    }

    /// Builds the suffix array from 2-bit base codes (`0..=3`).
    ///
    /// # Panics
    ///
    /// Panics if any code exceeds 3, or the text exceeds `u32::MAX - 2`.
    pub fn from_codes(codes: &[u8]) -> SuffixArray {
        assert!(
            codes.len() < (u32::MAX - 2) as usize,
            "text too long for 32-bit suffix array"
        );
        if codes.is_empty() {
            return SuffixArray { positions: vec![] };
        }
        // Shift codes to 1..=4 and append the unique sentinel 0.
        let mut s: Vec<u32> = Vec::with_capacity(codes.len() + 1);
        for &c in codes {
            assert!(c <= 3, "base code {c} out of range");
            s.push(u32::from(c) + 1);
        }
        s.push(0);
        let sa = sais(&s, 5);
        // Drop the sentinel suffix (always first).
        let positions = sa[1..].iter().map(|&p| p as u32).collect();
        SuffixArray { positions }
    }

    /// The sorted suffix start positions.
    pub fn positions(&self) -> &[u32] {
        &self.positions
    }

    /// Number of suffixes (= text length).
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` for the suffix array of the empty text.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }
}

/// Naive O(n² log n) construction, used as a cross-check in tests.
#[cfg(test)]
pub fn naive_suffix_array(codes: &[u8]) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..codes.len() as u32).collect();
    idx.sort_by(|&a, &b| codes[a as usize..].cmp(&codes[b as usize..]));
    idx
}

/// Core SA-IS over a text whose last element is the unique smallest symbol.
fn sais(s: &[u32], sigma: usize) -> Vec<usize> {
    let n = s.len();
    if n == 1 {
        return vec![0];
    }
    if n == 2 {
        return vec![1, 0]; // s[1] is the sentinel
    }

    // 1. L/S classification. is_s[i] == true means suffix i is S-type.
    let mut is_s = vec![false; n];
    is_s[n - 1] = true;
    for i in (0..n - 1).rev() {
        is_s[i] = s[i] < s[i + 1] || (s[i] == s[i + 1] && is_s[i + 1]);
    }
    let is_lms = |i: usize| i > 0 && is_s[i] && !is_s[i - 1];

    // Bucket sizes per symbol.
    let mut bucket = vec![0usize; sigma];
    for &c in s {
        bucket[c as usize] += 1;
    }
    let bucket_heads = |bucket: &[usize]| {
        let mut heads = vec![0usize; sigma];
        let mut sum = 0;
        for c in 0..sigma {
            heads[c] = sum;
            sum += bucket[c];
        }
        heads
    };
    let bucket_tails = |bucket: &[usize]| {
        let mut tails = vec![0usize; sigma];
        let mut sum = 0;
        for c in 0..sigma {
            sum += bucket[c];
            tails[c] = sum;
        }
        tails
    };

    const EMPTY: usize = usize::MAX;
    let induce = |lms: &[usize]| -> Vec<usize> {
        let mut sa = vec![EMPTY; n];
        // Place LMS suffixes at bucket tails in the given order (reversed so
        // the last-placed ends up first within the bucket).
        let mut tails = bucket_tails(&bucket);
        for &p in lms.iter().rev() {
            let c = s[p] as usize;
            tails[c] -= 1;
            sa[tails[c]] = p;
        }
        // Induce L-type from the left.
        let mut heads = bucket_heads(&bucket);
        for i in 0..n {
            let p = sa[i];
            if p != EMPTY && p > 0 && !is_s[p - 1] {
                let c = s[p - 1] as usize;
                sa[heads[c]] = p - 1;
                heads[c] += 1;
            }
        }
        // Induce S-type from the right.
        let mut tails = bucket_tails(&bucket);
        for i in (0..n).rev() {
            let p = sa[i];
            if p != EMPTY && p > 0 && is_s[p - 1] {
                let c = s[p - 1] as usize;
                tails[c] -= 1;
                sa[tails[c]] = p - 1;
            }
        }
        sa
    };

    // 2. First induced sort from unsorted LMS positions.
    let lms_positions: Vec<usize> = (1..n).filter(|&i| is_lms(i)).collect();
    let sa = induce(&lms_positions);

    // 3. Name LMS substrings in SA order.
    let lms_in_order: Vec<usize> = sa.iter().copied().filter(|&p| is_lms(p)).collect();
    let mut names = vec![EMPTY; n];
    let mut current = 0usize;
    let mut prev: Option<usize> = None;
    for &p in &lms_in_order {
        if let Some(q) = prev {
            if !lms_substring_eq(s, &is_s, q, p) {
                current += 1;
            }
        }
        names[p] = current;
        prev = Some(p);
    }
    let name_count = current + 1;

    // 4. Build the reduced problem in text order of LMS positions.
    let reduced: Vec<u32> = lms_positions.iter().map(|&p| names[p] as u32).collect();
    let lms_sorted: Vec<usize> = if name_count == reduced.len() {
        // All names unique: order directly.
        let mut order = vec![0usize; reduced.len()];
        for (i, &name) in reduced.iter().enumerate() {
            order[name as usize] = lms_positions[i];
        }
        order
    } else {
        let sub_sa = sais(&reduced, name_count);
        sub_sa.iter().map(|&i| lms_positions[i]).collect()
    };

    // 5. Final induced sort with correctly ordered LMS suffixes.
    induce(&lms_sorted)
}

/// Compares the LMS substrings starting at `a` and `b` for equality.
fn lms_substring_eq(s: &[u32], is_s: &[bool], a: usize, b: usize) -> bool {
    let n = s.len();
    let is_lms = |i: usize| i > 0 && is_s[i] && !is_s[i - 1];
    let mut i = 0usize;
    loop {
        let pa = a + i;
        let pb = b + i;
        if pa >= n || pb >= n {
            return false;
        }
        if s[pa] != s[pb] || is_s[pa] != is_s[pb] {
            return false;
        }
        if i > 0 && (is_lms(pa) || is_lms(pb)) {
            return is_lms(pa) && is_lms(pb);
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repute_genome::rng::StdRng;

    fn check(text: &str) {
        let seq: DnaSeq = text.parse().unwrap();
        let codes = seq.to_codes();
        let sa = SuffixArray::build(&seq);
        assert_eq!(
            sa.positions(),
            naive_suffix_array(&codes).as_slice(),
            "text {text:?}"
        );
    }

    #[test]
    fn empty_and_tiny_texts() {
        let sa = SuffixArray::from_codes(&[]);
        assert!(sa.is_empty());
        check("A");
        check("AC");
        check("CA");
        check("AA");
    }

    #[test]
    fn classic_examples() {
        check("ACGTACG");
        check("AAAAAAAAAA");
        check("ACACACACAC");
        check("GTGTGTGTGA");
        check("TGCATGCATGCA");
    }

    #[test]
    fn matches_naive_on_random_texts() {
        let mut rng = StdRng::seed_from_u64(99);
        for len in [3usize, 17, 64, 255, 1000] {
            for _ in 0..5 {
                let codes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..4)).collect();
                let sa = SuffixArray::from_codes(&codes);
                assert_eq!(
                    sa.positions(),
                    naive_suffix_array(&codes).as_slice(),
                    "len {len}"
                );
            }
        }
    }

    #[test]
    fn is_a_permutation_on_larger_text() {
        let reference = repute_genome::synth::ReferenceBuilder::new(50_000)
            .seed(4)
            .build();
        let sa = SuffixArray::build(&reference);
        let mut seen = vec![false; reference.len()];
        for &p in sa.positions() {
            assert!(!seen[p as usize], "duplicate {p}");
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn suffixes_are_sorted_on_larger_text() {
        let reference = repute_genome::synth::ReferenceBuilder::new(20_000)
            .seed(5)
            .build();
        let codes = reference.to_codes();
        let sa = SuffixArray::build(&reference);
        for w in sa.positions().windows(2) {
            let (a, b) = (w[0] as usize, w[1] as usize);
            assert!(codes[a..] < codes[b..], "order violated at {a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_codes_rejected() {
        let _ = SuffixArray::from_codes(&[0, 1, 7]);
    }
}
