//! The Burrows–Wheeler transform over DNA with an explicit sentinel.
//!
//! Symbols are stored as `u8` with `0` reserved for the terminal sentinel
//! and `1..=4` for `A, C, G, T` — the internal alphabet shared with
//! [`crate::FmIndex`].

use crate::suffix_array::SuffixArray;

/// Internal sentinel symbol (lexicographically smallest).
pub const SENTINEL: u8 = 0;

/// Converts a 2-bit base code (`0..=3`) to the internal BWT symbol.
#[inline]
pub fn to_symbol(code: u8) -> u8 {
    debug_assert!(code <= 3);
    code + 1
}

/// Converts an internal BWT symbol back to a 2-bit base code.
///
/// # Panics
///
/// Panics if `symbol` is the sentinel.
#[inline]
pub fn to_code(symbol: u8) -> u8 {
    assert!(symbol != SENTINEL, "sentinel has no base code");
    symbol - 1
}

/// Output of [`transform`]: the BWT string and the row holding the sentinel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bwt {
    /// BWT symbols (`0..=4`), length `text.len() + 1`.
    pub symbols: Vec<u8>,
    /// Row index at which the sentinel appears.
    pub sentinel_row: usize,
}

/// Computes the BWT of `codes` (2-bit base codes) using a suffix array.
///
/// Row `i` of the (conceptual) sorted rotation matrix ends with
/// `symbols[i]`. Row 0 always corresponds to the sentinel-terminated text.
///
/// # Example
///
/// ```
/// use repute_index::bwt::{transform, inverse};
///
/// let codes = vec![1, 0, 2, 0]; // "CAGA"
/// let bwt = transform(&codes);
/// assert_eq!(inverse(&bwt), codes);
/// ```
pub fn transform(codes: &[u8]) -> Bwt {
    let sa = SuffixArray::from_codes(codes);
    transform_with_sa(codes, &sa)
}

/// Computes the BWT reusing an already-built suffix array.
///
/// # Panics
///
/// Panics if `sa` was not built over `codes`.
pub fn transform_with_sa(codes: &[u8], sa: &SuffixArray) -> Bwt {
    assert_eq!(sa.len(), codes.len(), "suffix array does not match text");
    let n = codes.len();
    let mut symbols = Vec::with_capacity(n + 1);
    let mut sentinel_row = 0usize;
    // Row 0 is the sentinel suffix: its BWT symbol is the last text char.
    if n == 0 {
        symbols.push(SENTINEL);
        return Bwt {
            symbols,
            sentinel_row: 0,
        };
    }
    symbols.push(to_symbol(codes[n - 1]));
    for (row, &p) in sa.positions().iter().enumerate() {
        if p == 0 {
            symbols.push(SENTINEL);
            sentinel_row = row + 1;
        } else {
            symbols.push(to_symbol(codes[p as usize - 1]));
        }
    }
    Bwt {
        symbols,
        sentinel_row,
    }
}

/// Inverts a BWT back to the original 2-bit base codes.
///
/// Used to validate index construction; linear time via LF-mapping.
pub fn inverse(bwt: &Bwt) -> Vec<u8> {
    let n = bwt.symbols.len();
    if n <= 1 {
        return vec![];
    }
    // Occurrence rank of each symbol instance and cumulative counts.
    let mut counts = [0usize; 5];
    let mut ranks = Vec::with_capacity(n);
    for &s in &bwt.symbols {
        ranks.push(counts[s as usize]);
        counts[s as usize] += 1;
    }
    let mut first = [0usize; 5];
    let mut sum = 0;
    for c in 0..5 {
        first[c] = sum;
        sum += counts[c];
    }
    // Row 0 is the rotation starting with the sentinel; its last column is
    // the final text character. LF-stepping from there emits the text
    // right-to-left.
    let mut out = vec![0u8; n - 1];
    let mut row = 0usize;
    for i in (0..n - 1).rev() {
        let s = bwt.symbols[row];
        debug_assert_ne!(s, SENTINEL, "reached sentinel early");
        out[i] = to_code(s);
        row = first[s as usize] + ranks[row];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use repute_genome::rng::StdRng;

    #[test]
    fn empty_text() {
        let bwt = transform(&[]);
        assert_eq!(bwt.symbols, vec![SENTINEL]);
        assert_eq!(inverse(&bwt), Vec::<u8>::new());
    }

    #[test]
    fn single_base() {
        let bwt = transform(&[2]);
        assert_eq!(bwt.symbols.len(), 2);
        assert_eq!(inverse(&bwt), vec![2]);
    }

    #[test]
    fn known_small_example() {
        // "ACGT" codes 0,1,2,3; sentinel-terminated rotations sorted:
        // $ACGT -> T, ACGT$ -> $, CGT$A -> A, GT$AC -> C, T$ACG -> G
        let bwt = transform(&[0, 1, 2, 3]);
        assert_eq!(
            bwt.symbols,
            vec![
                to_symbol(3),
                SENTINEL,
                to_symbol(0),
                to_symbol(1),
                to_symbol(2)
            ]
        );
        assert_eq!(bwt.sentinel_row, 1);
    }

    #[test]
    fn round_trips_random_texts() {
        let mut rng = StdRng::seed_from_u64(21);
        for len in [2usize, 10, 100, 1000] {
            let codes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..4)).collect();
            let bwt = transform(&codes);
            assert_eq!(inverse(&bwt), codes, "len {len}");
            assert_eq!(bwt.symbols.len(), len + 1);
            assert_eq!(
                bwt.symbols.iter().filter(|&&s| s == SENTINEL).count(),
                1,
                "exactly one sentinel"
            );
        }
    }

    #[test]
    fn symbol_conversions() {
        assert_eq!(to_symbol(0), 1);
        assert_eq!(to_code(4), 3);
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn sentinel_has_no_code() {
        let _ = to_code(SENTINEL);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_sa_rejected() {
        let sa = SuffixArray::from_codes(&[0, 1]);
        let _ = transform_with_sa(&[0, 1, 2], &sa);
    }
}
