//! A direct-addressed q-gram (k-mer hash) index.
//!
//! RazerS3 and Hobbes3 — two of the paper's baselines — retrieve candidate
//! locations from hash-based indexes rather than an FM-Index (§II-B:
//! "RazerS3 and Hobbes3 use hashing based method to store and retrieve
//! reference genome"). This index gives those baseline re-implementations
//! the same machinery: all positions of every fixed-length q-gram, in a
//! flat two-level layout (offset table + position array).

use repute_genome::DnaSeq;

/// Maximum supported q (keeps the direct-address table ≤ 4 MiB of offsets).
pub const MAX_Q: usize = 11;

/// A direct-addressed index of all q-gram positions in a reference.
///
/// # Example
///
/// ```
/// use repute_genome::DnaSeq;
/// use repute_index::QGramIndex;
///
/// # fn main() -> Result<(), repute_genome::GenomeError> {
/// let reference: DnaSeq = "ACGTACGT".parse()?;
/// let index = QGramIndex::build(&reference, 4);
/// let gram: DnaSeq = "ACGT".parse()?;
/// assert_eq!(index.positions(&gram.to_codes()), &[0, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QGramIndex {
    q: usize,
    /// `offsets[h]..offsets[h+1]` indexes `positions` for gram hash `h`.
    offsets: Vec<u32>,
    positions: Vec<u32>,
}

impl QGramIndex {
    /// Builds the index of all `q`-grams of `reference`.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0` or `q > MAX_Q`.
    pub fn build(reference: &DnaSeq, q: usize) -> QGramIndex {
        assert!(q > 0 && q <= MAX_Q, "q {q} out of 1..={MAX_Q}");
        let codes = reference.to_codes();
        let buckets = 1usize << (2 * q);
        let mut counts = vec![0u32; buckets + 1];
        if codes.len() >= q {
            let mut hash = 0usize;
            let mask = buckets - 1;
            for (i, &c) in codes.iter().enumerate() {
                hash = ((hash << 2) | c as usize) & mask;
                if i + 1 >= q {
                    counts[hash + 1] += 1;
                }
            }
        }
        for h in 0..buckets {
            counts[h + 1] += counts[h];
        }
        let offsets = counts;
        let mut cursor = offsets.clone();
        let mut positions = vec![0u32; *offsets.last().unwrap() as usize];
        if codes.len() >= q {
            let mask = buckets - 1;
            let mut hash = 0usize;
            for (i, &c) in codes.iter().enumerate() {
                hash = ((hash << 2) | c as usize) & mask;
                if i + 1 >= q {
                    let start = i + 1 - q;
                    positions[cursor[hash] as usize] = start as u32;
                    cursor[hash] += 1;
                }
            }
        }
        QGramIndex {
            q,
            offsets,
            positions,
        }
    }

    /// The gram length this index was built with.
    pub fn q(&self) -> usize {
        self.q
    }

    fn hash(&self, gram: &[u8]) -> usize {
        assert_eq!(
            gram.len(),
            self.q,
            "gram length {} != q {}",
            gram.len(),
            self.q
        );
        let mut h = 0usize;
        for &c in gram {
            assert!(c <= 3, "base code {c} out of range");
            h = (h << 2) | c as usize;
        }
        h
    }

    /// All start positions of `gram` (2-bit codes, length exactly `q`),
    /// sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `gram.len() != q` or any code exceeds 3.
    pub fn positions(&self, gram: &[u8]) -> &[u32] {
        let h = self.hash(gram);
        &self.positions[self.offsets[h] as usize..self.offsets[h + 1] as usize]
    }

    /// Occurrence count of `gram`.
    ///
    /// # Panics
    ///
    /// Panics if `gram.len() != q` or any code exceeds 3.
    pub fn count(&self, gram: &[u8]) -> u32 {
        let h = self.hash(gram);
        self.offsets[h + 1] - self.offsets[h]
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        (self.offsets.len() + self.positions.len()) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repute_genome::rng::StdRng;

    #[test]
    fn finds_all_positions() {
        let seq: DnaSeq = "ACGTACGTAC".parse().unwrap();
        let index = QGramIndex::build(&seq, 2);
        assert_eq!(index.positions(&[0, 1]), &[0, 4, 8]); // AC
        assert_eq!(index.positions(&[3, 0]), &[3, 7]); // TA
        assert_eq!(index.count(&[2, 2]), 0); // GG absent
    }

    #[test]
    fn matches_naive_on_random_text() {
        let mut rng = StdRng::seed_from_u64(31);
        let codes: Vec<u8> = (0..3000).map(|_| rng.gen_range(0..4)).collect();
        let seq = DnaSeq::from_codes(&codes).unwrap();
        for q in [1usize, 3, 6, 10] {
            let index = QGramIndex::build(&seq, q);
            for _ in 0..25 {
                let start = rng.gen_range(0..codes.len() - q);
                let gram = &codes[start..start + q];
                let naive: Vec<u32> = codes
                    .windows(q)
                    .enumerate()
                    .filter(|(_, w)| *w == gram)
                    .map(|(i, _)| i as u32)
                    .collect();
                assert_eq!(index.positions(gram), naive.as_slice(), "q {q}");
            }
        }
    }

    #[test]
    fn text_shorter_than_q() {
        let seq: DnaSeq = "AC".parse().unwrap();
        let index = QGramIndex::build(&seq, 5);
        assert_eq!(index.count(&[0, 1, 0, 1, 0]), 0);
    }

    #[test]
    #[should_panic(expected = "out of 1..=")]
    fn q_zero_rejected() {
        let seq: DnaSeq = "ACGT".parse().unwrap();
        let _ = QGramIndex::build(&seq, 0);
    }

    #[test]
    #[should_panic(expected = "!= q")]
    fn wrong_gram_length_rejected() {
        let seq: DnaSeq = "ACGT".parse().unwrap();
        let index = QGramIndex::build(&seq, 3);
        let _ = index.positions(&[0, 1]);
    }

    #[test]
    fn footprint_is_positive() {
        let seq: DnaSeq = "ACGTACGT".parse().unwrap();
        let index = QGramIndex::build(&seq, 4);
        assert!(index.heap_bytes() > 0);
        assert_eq!(index.q(), 4);
    }
}
