//! Span-based tracing over simulated time.
//!
//! The simulated platform already records OpenCL-style event timestamps
//! (queued / submitted / start / end) per kernel launch; this module
//! turns those — plus scheduler-side batch lifecycle, retries, faults,
//! migrations, and checkpoint writes — into a Chrome-tracing
//! (`chrome://tracing` / Perfetto) JSON file. One trace process (`pid`)
//! per simulated device plus a scheduler process; durations are
//! simulated seconds scaled to microseconds.
//!
//! Design constraints, in order:
//!
//! 1. **Zero-alloc when disabled.** Producers hold an
//!    `Option<Vec<Span>>` (or a [`TraceSink`] whose `enabled()` is
//!    false) and skip span construction entirely on the hot path.
//! 2. **Deterministic bytes.** [`write_chrome_trace`] stably sorts
//!    events by `(pid, tid, begin, name)` using `f64::total_cmp`, so
//!    two identical runs produce byte-identical files regardless of
//!    host-thread interleaving.
//! 3. **Self-describing.** Every span carries a category (the span
//!    taxonomy in DESIGN.md §12) and an `args` object with batch
//!    index / read range / fault annotations, so the file is useful
//!    both in the Chrome UI and to `repute trace`.

use crate::json::{escape_into, format_f64, parse_json, JsonValue};

/// Trace process id reserved for scheduler/host-side spans (batch
/// lifecycle, checkpoint writes). Devices get [`device_pid`].
pub const SCHEDULER_PID: u32 = 0;

/// Trace process id for simulated device `index` (devices are numbered
/// from zero; pid zero is [`SCHEDULER_PID`]).
pub fn device_pid(device_index: usize) -> u32 {
    device_index as u32 + 1
}

/// One traced interval (or instant, when `end_seconds ==
/// begin_seconds`) in simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Event name shown in the trace viewer (e.g. the kernel label).
    pub name: String,
    /// Category from the span taxonomy: `kernel`, `batch`, `retry`,
    /// `fault`, `migration`, or `checkpoint`.
    pub cat: String,
    /// Trace process: [`SCHEDULER_PID`] or [`device_pid`].
    pub pid: u32,
    /// Trace thread within the process (lane in the viewer).
    pub tid: u32,
    /// Span start, simulated seconds.
    pub begin_seconds: f64,
    /// Span end, simulated seconds; equal to the start for instants.
    pub end_seconds: f64,
    /// Extra key/value annotations rendered in the viewer's detail
    /// pane (batch index, read range, fault notes, ...).
    pub args: Vec<(String, JsonValue)>,
}

impl Span {
    /// A span covering `[begin_seconds, end_seconds]`.
    pub fn new(
        name: impl Into<String>,
        cat: impl Into<String>,
        pid: u32,
        begin_seconds: f64,
        end_seconds: f64,
    ) -> Span {
        Span {
            name: name.into(),
            cat: cat.into(),
            pid,
            tid: 0,
            begin_seconds,
            end_seconds,
            args: Vec::new(),
        }
    }

    /// A zero-duration marker at `at_seconds`.
    pub fn instant(
        name: impl Into<String>,
        cat: impl Into<String>,
        pid: u32,
        at_seconds: f64,
    ) -> Span {
        Span::new(name, cat, pid, at_seconds, at_seconds)
    }

    /// Places the span on thread lane `tid`.
    pub fn on_tid(mut self, tid: u32) -> Span {
        self.tid = tid;
        self
    }

    /// Attaches an unsigned-integer annotation.
    pub fn arg_u64(mut self, key: impl Into<String>, value: u64) -> Span {
        self.args.push((key.into(), JsonValue::Num(value as f64)));
        self
    }

    /// Attaches a float annotation.
    pub fn arg_f64(mut self, key: impl Into<String>, value: f64) -> Span {
        self.args.push((key.into(), JsonValue::Num(value)));
        self
    }

    /// Attaches a string annotation.
    pub fn arg_str(mut self, key: impl Into<String>, value: impl Into<String>) -> Span {
        self.args.push((key.into(), JsonValue::Str(value.into())));
        self
    }

    /// Span duration in simulated seconds (never negative).
    pub fn duration_seconds(&self) -> f64 {
        (self.end_seconds - self.begin_seconds).max(0.0)
    }
}

/// Destination for spans produced while mapping. The default methods
/// make a disabled sink free: producers check [`TraceSink::enabled`]
/// once and skip span construction when it is false.
pub trait TraceSink {
    /// Whether spans should be built and emitted at all.
    fn enabled(&self) -> bool {
        false
    }
    /// Accepts one finished span.
    fn emit(&mut self, _span: Span) {}
}

/// Sink that drops everything; `enabled()` is false so producers do
/// not even build the spans.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopTraceSink;

impl TraceSink for NoopTraceSink {}

/// Sink that retains every span in order of emission.
#[derive(Debug, Default, Clone)]
pub struct VecTraceSink {
    /// Spans emitted so far.
    pub spans: Vec<Span>,
}

impl TraceSink for VecTraceSink {
    fn enabled(&self) -> bool {
        true
    }
    fn emit(&mut self, span: Span) {
        self.spans.push(span);
    }
}

const MICROS_PER_SECOND: f64 = 1e6;

fn write_args(out: &mut String, args: &[(String, JsonValue)]) {
    out.push('{');
    for (i, (key, value)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(out, key);
        out.push_str("\":");
        write_value(out, value);
    }
    out.push('}');
}

fn write_value(out: &mut String, value: &JsonValue) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Num(n) => out.push_str(&format_f64(*n)),
        JsonValue::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
        JsonValue::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        JsonValue::Obj(fields) => write_args(out, fields),
    }
}

/// Renders spans as a Chrome-tracing JSON array: one `"M"` process-name
/// metadata event per entry of `processes` (`(pid, display name)`),
/// then one `"X"` complete event per span with `ts`/`dur` in
/// microseconds of simulated time. Events are stably sorted by
/// `(pid, tid, begin, name)` so identical runs yield identical bytes.
pub fn write_chrome_trace(processes: &[(u32, String)], spans: &[Span]) -> String {
    let mut ordered: Vec<&Span> = spans.iter().collect();
    ordered.sort_by(|a, b| {
        a.pid
            .cmp(&b.pid)
            .then(a.tid.cmp(&b.tid))
            .then(a.begin_seconds.total_cmp(&b.begin_seconds))
            .then(a.name.cmp(&b.name))
    });

    let mut out = String::from("[\n");
    let mut first = true;
    for (pid, name) in processes {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":");
        out.push_str(&pid.to_string());
        out.push_str(",\"tid\":0,\"args\":{\"name\":\"");
        escape_into(&mut out, name);
        out.push_str("\"}}");
    }
    for span in ordered {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("{\"ph\":\"X\",\"name\":\"");
        escape_into(&mut out, &span.name);
        out.push_str("\",\"cat\":\"");
        escape_into(&mut out, &span.cat);
        out.push_str("\",\"pid\":");
        out.push_str(&span.pid.to_string());
        out.push_str(",\"tid\":");
        out.push_str(&span.tid.to_string());
        out.push_str(",\"ts\":");
        out.push_str(&format_f64(span.begin_seconds * MICROS_PER_SECOND));
        out.push_str(",\"dur\":");
        out.push_str(&format_f64(span.duration_seconds() * MICROS_PER_SECOND));
        out.push_str(",\"args\":");
        write_args(&mut out, &span.args);
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

/// Per-category roll-up produced by [`summarize_chrome_trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCategorySummary {
    /// Category name (`kernel`, `batch`, ...).
    pub cat: String,
    /// Number of `"X"` events in the category.
    pub count: u64,
    /// Total duration across events, simulated seconds.
    pub total_seconds: f64,
    /// p50 of event durations, simulated seconds.
    pub p50_seconds: f64,
    /// p90 of event durations, simulated seconds.
    pub p90_seconds: f64,
    /// p99 of event durations, simulated seconds.
    pub p99_seconds: f64,
}

/// Per-process roll-up produced by [`summarize_chrome_trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProcessSummary {
    /// Trace process id.
    pub pid: u32,
    /// Display name from the `"M"` metadata event, if present.
    pub name: String,
    /// Number of `"X"` events on the process.
    pub count: u64,
    /// Total duration across events, simulated seconds.
    pub total_seconds: f64,
}

/// Summary of a parsed Chrome-tracing file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceSummary {
    /// Total `"X"` events.
    pub events: u64,
    /// Latest event end, simulated seconds.
    pub span_seconds: f64,
    /// Per-process roll-ups, ascending pid.
    pub processes: Vec<TraceProcessSummary>,
    /// Per-category roll-ups, sorted by name.
    pub categories: Vec<TraceCategorySummary>,
}

fn obj_field<'a>(fields: &'a [(String, JsonValue)], key: &str) -> Option<&'a JsonValue> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Parses a Chrome-tracing JSON array (as written by
/// [`write_chrome_trace`]) and rolls it up per process and per
/// category. Returns `None` when the text is not a JSON array of
/// objects.
pub fn summarize_chrome_trace(text: &str) -> Option<TraceSummary> {
    let events = match parse_json(text)? {
        JsonValue::Arr(items) => items,
        _ => return None,
    };

    let mut summary = TraceSummary::default();
    let mut names: Vec<(u32, String)> = Vec::new();
    let mut per_pid: Vec<(u32, u64, f64)> = Vec::new();
    let mut per_cat: Vec<(String, Vec<f64>)> = Vec::new();

    for event in &events {
        let fields = event.as_obj()?;
        let ph = obj_field(fields, "ph")
            .and_then(JsonValue::as_str)
            .unwrap_or("");
        let pid = obj_field(fields, "pid")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0) as u32;
        match ph {
            "M" => {
                let name = obj_field(fields, "args")
                    .and_then(JsonValue::as_obj)
                    .and_then(|args| obj_field(args, "name"))
                    .and_then(JsonValue::as_str)
                    .unwrap_or("")
                    .to_string();
                names.push((pid, name));
            }
            "X" => {
                let ts = obj_field(fields, "ts")
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(0.0);
                let dur = obj_field(fields, "dur")
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(0.0);
                let cat = obj_field(fields, "cat")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("");
                let seconds = dur / MICROS_PER_SECOND;
                summary.events += 1;
                summary.span_seconds = summary.span_seconds.max((ts + dur) / MICROS_PER_SECOND);
                match per_pid.iter_mut().find(|(p, _, _)| *p == pid) {
                    Some(entry) => {
                        entry.1 += 1;
                        entry.2 += seconds;
                    }
                    None => per_pid.push((pid, 1, seconds)),
                }
                match per_cat.iter_mut().find(|(c, _)| c == cat) {
                    Some(entry) => entry.1.push(seconds),
                    None => per_cat.push((cat.to_string(), vec![seconds])),
                }
            }
            _ => {}
        }
    }

    per_pid.sort_by_key(|(pid, _, _)| *pid);
    summary.processes = per_pid
        .into_iter()
        .map(|(pid, count, total)| TraceProcessSummary {
            pid,
            name: names
                .iter()
                .find(|(p, _)| *p == pid)
                .map(|(_, n)| n.clone())
                .unwrap_or_default(),
            count,
            total_seconds: total,
        })
        .collect();

    per_cat.sort_by(|a, b| a.0.cmp(&b.0));
    summary.categories = per_cat
        .into_iter()
        .map(|(cat, durations)| {
            let samples = crate::Samples::from_values(&durations);
            TraceCategorySummary {
                cat,
                count: durations.len() as u64,
                total_seconds: durations.iter().sum(),
                p50_seconds: samples.percentile(0.50),
                p90_seconds: samples.percentile(0.90),
                p99_seconds: samples.percentile(0.99),
            }
        })
        .collect();

    Some(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spans() -> Vec<Span> {
        vec![
            Span::new("d0-batch-0", "kernel", device_pid(0), 0.0, 1.0)
                .arg_u64("batch", 0)
                .arg_u64("lo", 0)
                .arg_u64("hi", 8),
            Span::new("d1-batch-1", "kernel", device_pid(1), 0.5, 2.0).arg_u64("batch", 1),
            Span::new("batch-0", "batch", SCHEDULER_PID, 0.0, 1.0).arg_str("device", "d0"),
            Span::instant("checkpoint", "checkpoint", SCHEDULER_PID, 1.0).arg_u64("batch", 0),
        ]
    }

    fn processes() -> Vec<(u32, String)> {
        vec![
            (SCHEDULER_PID, "scheduler".to_string()),
            (device_pid(0), "cpu [Cpu]".to_string()),
            (device_pid(1), "gpu [Gpu]".to_string()),
        ]
    }

    #[test]
    fn trace_is_valid_json_array_of_events() {
        let text = write_chrome_trace(&processes(), &sample_spans());
        let parsed = parse_json(&text).expect("trace parses");
        let items = parsed.as_arr().expect("array");
        // 3 metadata + 4 X events.
        assert_eq!(items.len(), 7);
        for item in items {
            let fields = item.as_obj().expect("object");
            let ph = obj_field(fields, "ph")
                .and_then(JsonValue::as_str)
                .expect("ph");
            assert!(ph == "M" || ph == "X");
        }
    }

    #[test]
    fn writer_is_deterministic_under_span_reordering() {
        let spans = sample_spans();
        let mut reversed = spans.clone();
        reversed.reverse();
        assert_eq!(
            write_chrome_trace(&processes(), &spans),
            write_chrome_trace(&processes(), &reversed)
        );
    }

    #[test]
    fn args_round_trip_through_the_file() {
        let text = write_chrome_trace(&processes(), &sample_spans());
        let parsed = parse_json(&text).expect("trace parses");
        let items = parsed.as_arr().expect("array");
        let kernel = items
            .iter()
            .filter_map(|i| i.as_obj())
            .find(|f| obj_field(f, "name").and_then(JsonValue::as_str) == Some("d0-batch-0"))
            .expect("kernel event present");
        let args = obj_field(kernel, "args")
            .and_then(JsonValue::as_obj)
            .expect("args");
        assert_eq!(
            obj_field(args, "batch").and_then(JsonValue::as_u64),
            Some(0)
        );
        assert_eq!(obj_field(args, "hi").and_then(JsonValue::as_u64), Some(8));
    }

    #[test]
    fn summary_rolls_up_processes_and_categories() {
        let text = write_chrome_trace(&processes(), &sample_spans());
        let summary = summarize_chrome_trace(&text).expect("summary");
        assert_eq!(summary.events, 4);
        assert!((summary.span_seconds - 2.0).abs() < 1e-9);
        assert_eq!(summary.processes.len(), 3);
        let sched = &summary.processes[0];
        assert_eq!(sched.pid, SCHEDULER_PID);
        assert_eq!(sched.name, "scheduler");
        assert_eq!(sched.count, 2);
        let cats: Vec<&str> = summary.categories.iter().map(|c| c.cat.as_str()).collect();
        assert_eq!(cats, ["batch", "checkpoint", "kernel"]);
        let kernel = summary
            .categories
            .iter()
            .find(|c| c.cat == "kernel")
            .expect("kernel cat");
        assert_eq!(kernel.count, 2);
        assert!((kernel.total_seconds - 2.5).abs() < 1e-9);
        assert!(kernel.p50_seconds <= kernel.p90_seconds);
        assert!(kernel.p90_seconds <= kernel.p99_seconds);
    }

    #[test]
    fn summarize_rejects_non_array_input() {
        assert!(summarize_chrome_trace("{\"ph\":\"X\"}").is_none());
        assert!(summarize_chrome_trace("not json").is_none());
    }

    #[test]
    fn disabled_sink_reports_disabled() {
        let sink = NoopTraceSink;
        assert!(!sink.enabled());
        let mut vec_sink = VecTraceSink::default();
        assert!(vec_sink.enabled());
        vec_sink.emit(Span::instant("x", "fault", SCHEDULER_PID, 0.0));
        assert_eq!(vec_sink.spans.len(), 1);
    }
}
