//! Per-tenant deadline SLO accounting over a sliding simulated-time
//! window.
//!
//! The serve daemon promises deadline-carrying jobs an answer by their
//! absolute simulated-time deadline. [`SloTracker`] folds every
//! deadline outcome — met (the batch committed in time), missed (the
//! batch committed late), or shed (the job was dropped while queued) —
//! into a per-tenant hit rate over a trailing window, the same sliding
//! window the tenant quota gate uses. Everything runs on the simulated
//! clock, so reports are deterministic and replayable.

/// One tenant's deadline outcomes over the current window.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Tenant name.
    pub tenant: String,
    /// Deadline-carrying jobs answered by their deadline.
    pub met: u64,
    /// Deadline-carrying jobs answered late or shed.
    pub missed: u64,
}

impl SloReport {
    /// Fraction of deadline-carrying jobs that met their deadline
    /// (`1.0` when the window holds no outcomes).
    pub fn hit_rate(&self) -> f64 {
        let total = self.met + self.missed;
        if total == 0 {
            1.0
        } else {
            self.met as f64 / total as f64
        }
    }
}

/// Sliding-window deadline hit-rate tracker (see the module docs).
///
/// Only deadline-carrying jobs are recorded; best-effort jobs have no
/// SLO. Outcomes outside the trailing `window_s` simulated seconds are
/// pruned on [`SloTracker::snapshot`].
#[derive(Debug, Clone)]
pub struct SloTracker {
    window_s: f64,
    // (tenant, outcome time, met) — pruned as the window slides.
    outcomes: Vec<(String, f64, bool)>,
}

impl SloTracker {
    /// A tracker with a trailing window of `window_s` simulated seconds
    /// (non-positive windows never expire outcomes).
    pub fn new(window_s: f64) -> SloTracker {
        SloTracker {
            window_s: if window_s > 0.0 { window_s } else { f64::MAX },
            outcomes: Vec::new(),
        }
    }

    /// The configured window length, in simulated seconds.
    pub fn window_s(&self) -> f64 {
        self.window_s
    }

    /// Records one deadline outcome at simulated time `at_s`: `met` is
    /// whether the job was answered by its deadline (a shed job records
    /// `false`).
    pub fn record(&mut self, tenant: &str, at_s: f64, met: bool) {
        self.outcomes.push((tenant.to_string(), at_s, met));
    }

    /// True when no outcomes have ever been recorded.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Per-tenant reports over the window trailing `now`, tenant
    /// name-sorted (deterministic). Prunes expired outcomes.
    pub fn snapshot(&mut self, now: f64) -> Vec<SloReport> {
        let horizon = now - self.window_s;
        self.outcomes.retain(|(_, at, _)| *at > horizon);
        let mut reports: Vec<SloReport> = Vec::new();
        for (tenant, _, met) in &self.outcomes {
            let at = reports.partition_point(|r| r.tenant.as_str() < tenant.as_str());
            if reports.get(at).is_none_or(|r| &r.tenant != tenant) {
                reports.insert(
                    at,
                    SloReport {
                        tenant: tenant.clone(),
                        met: 0,
                        missed: 0,
                    },
                );
            }
            if *met {
                reports[at].met += 1;
            } else {
                reports[at].missed += 1;
            }
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_counts_met_and_missed() {
        let mut slo = SloTracker::new(60.0);
        slo.record("acme", 1.0, true);
        slo.record("acme", 2.0, true);
        slo.record("acme", 3.0, false);
        slo.record("lab", 4.0, false);
        let reports = slo.snapshot(10.0);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].tenant, "acme");
        assert_eq!((reports[0].met, reports[0].missed), (2, 1));
        assert!((reports[0].hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(reports[1].tenant, "lab");
        assert_eq!(reports[1].hit_rate(), 0.0);
    }

    #[test]
    fn window_slides_on_the_simulated_clock() {
        let mut slo = SloTracker::new(10.0);
        slo.record("acme", 0.0, false);
        slo.record("acme", 8.0, true);
        // At t=9 both outcomes are live.
        assert_eq!(slo.snapshot(9.0)[0].missed, 1);
        // At t=10.5 the t=0 miss has expired; only the hit remains.
        let reports = slo.snapshot(10.5);
        assert_eq!((reports[0].met, reports[0].missed), (1, 0));
        assert_eq!(reports[0].hit_rate(), 1.0);
    }

    #[test]
    fn reports_are_tenant_sorted_and_empty_window_is_empty() {
        let mut slo = SloTracker::new(5.0);
        assert!(slo.snapshot(0.0).is_empty());
        slo.record("zeta", 1.0, true);
        slo.record("alpha", 1.0, true);
        slo.record("mid", 1.0, false);
        let names: Vec<String> = slo.snapshot(2.0).into_iter().map(|r| r.tenant).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
    }

    #[test]
    fn non_positive_window_never_expires() {
        let mut slo = SloTracker::new(0.0);
        slo.record("acme", 0.0, true);
        assert_eq!(slo.snapshot(1e12)[0].met, 1);
    }
}
