//! Run-level telemetry roll-up and its export formats.

use std::fmt::Write as _;
use std::io::{self, Write};

use crate::json::{field, parse_flat_object, JsonObject, JsonValue};
use crate::map_metrics::MapMetrics;

/// One simulated kernel launch with OpenCL-style event timestamps.
///
/// The four timestamps mirror `clGetEventProfilingInfo`:
/// `CL_PROFILING_COMMAND_QUEUED` (host enqueued the command), `SUBMIT`
/// (driver handed it to the device), `START` and `END` (device
/// execution). Invariant: `queued ≤ submitted ≤ start ≤ end`.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelEvent {
    /// Human-readable launch label (e.g. `"batch-0"`).
    pub label: String,
    /// Work-items in the launch.
    pub items: u64,
    /// Abstract work units the launch performed.
    pub work: u64,
    /// Simulated seconds when the host enqueued the command.
    pub queued_seconds: f64,
    /// Simulated seconds when the command reached the device queue.
    pub submitted_seconds: f64,
    /// Simulated seconds when the device began executing.
    pub start_seconds: f64,
    /// Simulated seconds when the device finished.
    pub end_seconds: f64,
}

impl KernelEvent {
    /// Device execution time (`end − start`).
    pub fn duration_seconds(&self) -> f64 {
        self.end_seconds - self.start_seconds
    }

    /// Time spent waiting between enqueue and execution start.
    pub fn queue_wait_seconds(&self) -> f64 {
        self.start_seconds - self.queued_seconds
    }
}

/// Kernel timeline of one device over a run.
///
/// Event labels carry per-batch device attribution: the multi-device
/// executor names each launch `d{device}-batch-{index}`, where the index
/// is per-share under a static schedule and the *global* batch index
/// under a dynamic one — so a dynamically scheduled run shows exactly
/// which device pulled which slice of the read set.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeviceTimeline {
    /// Device name (e.g. `"intel-hd-620"`).
    pub device: String,
    /// Launches in execution order.
    pub events: Vec<KernelEvent>,
    /// Launch retries performed after transient faults (0 on a
    /// fault-free run).
    pub retries: u64,
    /// Fault injections that struck this device: transients consumed,
    /// plus one if the device was permanently lost.
    pub faults: u64,
    /// Batches this device absorbed from dead devices (failover).
    pub migrated_batches: u64,
}

impl DeviceTimeline {
    /// Seconds the device spent executing kernels.
    pub fn busy_seconds(&self) -> f64 {
        // + 0.0 normalizes the empty sum, which is -0.0 (std's f64 Sum
        // folds from the additive identity -0.0) — a lost device with no
        // launches would otherwise report "busy -0.000000 s".
        self.events
            .iter()
            .map(KernelEvent::duration_seconds)
            .sum::<f64>()
            + 0.0
    }

    /// End of the last event (0.0 with no events).
    pub fn span_seconds(&self) -> f64 {
        self.events
            .iter()
            .map(|e| e.end_seconds)
            .fold(0.0, f64::max)
    }

    /// Busy fraction of this device relative to `run_seconds` (the
    /// run-level makespan); 0.0 for an idle device or empty run.
    pub fn utilization(&self, run_seconds: f64) -> f64 {
        if run_seconds <= 0.0 {
            0.0
        } else {
            self.busy_seconds() / run_seconds
        }
    }
}

/// Energy summary mirroring `repute-hetsim`'s `EnergyReport` (§III-D):
/// `energy_j = (average_power_w − idle_power_w) × mapping_seconds`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergySummary {
    /// Simulated makespan of the mapping run.
    pub mapping_seconds: f64,
    /// Mean platform draw over the run, idle floor included.
    pub average_power_w: f64,
    /// The platform's idle floor.
    pub idle_power_w: f64,
    /// Active (above-idle) energy in joules.
    pub energy_j: f64,
}

/// Exact latency percentiles for one population of durations — a
/// pipeline stage's per-read seconds, or the per-batch kernel
/// durations (row `"batch"`). Computed with [`crate::Samples`]
/// (nearest-rank), so each percentile is an observed value and
/// `p50 ≤ p90 ≤ p99` always holds.
#[derive(Debug, Clone, PartialEq)]
pub struct StageLatency {
    /// Population name: a stage path (`"map/filtration"`) or `"batch"`.
    pub stage: String,
    /// Samples in the population.
    pub count: u64,
    /// 50th percentile, simulated seconds.
    pub p50_seconds: f64,
    /// 90th percentile, simulated seconds.
    pub p90_seconds: f64,
    /// 99th percentile, simulated seconds.
    pub p99_seconds: f64,
}

/// Everything measured over one mapping run.
///
/// Derives `PartialEq` so the crash/resume harness can assert a resumed
/// run's report bit-identical to an uninterrupted one (after zeroing the
/// host-clock `wall_seconds` and the provenance `resumed_batches`
/// fields — see DESIGN.md §11).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Reads mapped.
    pub reads: u64,
    /// Sum of per-read [`MapMetrics`].
    pub totals: MapMetrics,
    /// `(path, seconds, activations)` from a [`crate::StageTimer`].
    pub stages: Vec<(String, f64, u64)>,
    /// Exact per-stage and per-batch latency percentiles.
    pub latencies: Vec<StageLatency>,
    /// Per-device kernel timelines.
    pub devices: Vec<DeviceTimeline>,
    /// Run makespan in simulated seconds (max over devices).
    pub simulated_seconds: f64,
    /// Host wall-clock seconds actually spent.
    pub wall_seconds: f64,
    /// Batches replayed from a checkpoint journal instead of recomputed
    /// (0 for an uninterrupted run). Provenance only: replayed batches
    /// are never double-counted in `totals` or the timelines.
    pub resumed_batches: u64,
    /// Energy summary, when the run was simulated on a platform.
    pub energy: Option<EnergySummary>,
}

impl RunReport {
    /// Renders the human-readable report table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "run report: {} reads", self.reads);
        let _ = writeln!(
            out,
            "  simulated {:.6} s | wall {:.3} s",
            self.simulated_seconds, self.wall_seconds
        );
        if self.resumed_batches > 0 {
            let _ = writeln!(
                out,
                "  resumed from checkpoint: {} batch(es) replayed from the journal",
                self.resumed_batches
            );
        }
        let _ = writeln!(out, "  pipeline counters (totals across reads):");
        for (name, value) in self.totals.fields() {
            let per_read = if self.reads > 0 {
                value as f64 / self.reads as f64
            } else {
                0.0
            };
            let _ = writeln!(out, "    {name:<18} {value:>12}  ({per_read:.1}/read)");
        }
        if !self.stages.is_empty() {
            let _ = writeln!(out, "  stages:");
            for (path, secs, count) in &self.stages {
                let _ = writeln!(out, "    {path:<24} {secs:>10.6} s  x{count}");
            }
        }
        if !self.latencies.is_empty() {
            let _ = writeln!(out, "  latency percentiles (simulated seconds):");
            let _ = writeln!(
                out,
                "    {:<24} {:>8} {:>12} {:>12} {:>12}",
                "population", "n", "p50", "p90", "p99"
            );
            for lat in &self.latencies {
                let _ = writeln!(
                    out,
                    "    {:<24} {:>8} {:>12.9} {:>12.9} {:>12.9}",
                    lat.stage, lat.count, lat.p50_seconds, lat.p90_seconds, lat.p99_seconds
                );
            }
        }
        if !self.devices.is_empty() {
            let _ = writeln!(out, "  devices:");
            for dev in &self.devices {
                let _ = writeln!(
                    out,
                    "    {:<16} {:>3} launches | busy {:.6} s | util {:>5.1}%",
                    dev.device,
                    dev.events.len(),
                    dev.busy_seconds(),
                    dev.utilization(self.simulated_seconds) * 100.0
                );
                if dev.faults > 0 || dev.retries > 0 || dev.migrated_batches > 0 {
                    let _ = writeln!(
                        out,
                        "      faults {} | retries {} | migrated batches {}",
                        dev.faults, dev.retries, dev.migrated_batches
                    );
                }
                for ev in &dev.events {
                    let _ = writeln!(
                        out,
                        "      {:<12} {:>8} items | queued {:.6} start {:.6} end {:.6}",
                        ev.label, ev.items, ev.queued_seconds, ev.start_seconds, ev.end_seconds
                    );
                }
            }
        }
        if let Some(e) = &self.energy {
            let _ = writeln!(
                out,
                "  energy: {:.3} J above idle | avg {:.1} W (idle {:.1} W) over {:.6} s",
                e.energy_j, e.average_power_w, e.idle_power_w, e.mapping_seconds
            );
        }
        out
    }

    /// Writes the report as JSON-lines: one `run` record, then `stage`,
    /// `latency`, `device`, `event`, and `energy` records.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`.
    pub fn write_json_lines<W: Write>(&self, out: &mut W) -> io::Result<()> {
        let mut run = JsonObject::new();
        run.str_field("type", "run");
        run.u64_field("reads", self.reads);
        run.f64_field("simulated_seconds", self.simulated_seconds);
        run.f64_field("wall_seconds", self.wall_seconds);
        run.u64_field("resumed_batches", self.resumed_batches);
        self.totals.write_fields(&mut run);
        writeln!(out, "{}", run.finish())?;

        for (path, secs, count) in &self.stages {
            let mut obj = JsonObject::new();
            obj.str_field("type", "stage");
            obj.str_field("path", path);
            obj.f64_field("seconds", *secs);
            obj.u64_field("count", *count);
            writeln!(out, "{}", obj.finish())?;
        }
        for lat in &self.latencies {
            let mut obj = JsonObject::new();
            obj.str_field("type", "latency");
            obj.str_field("stage", &lat.stage);
            obj.u64_field("count", lat.count);
            obj.f64_field("p50_s", lat.p50_seconds);
            obj.f64_field("p90_s", lat.p90_seconds);
            obj.f64_field("p99_s", lat.p99_seconds);
            writeln!(out, "{}", obj.finish())?;
        }
        for dev in &self.devices {
            let mut obj = JsonObject::new();
            obj.str_field("type", "device");
            obj.str_field("device", &dev.device);
            obj.u64_field("launches", dev.events.len() as u64);
            obj.f64_field("busy_seconds", dev.busy_seconds());
            obj.f64_field("utilization", dev.utilization(self.simulated_seconds));
            obj.u64_field("retries", dev.retries);
            obj.u64_field("faults", dev.faults);
            obj.u64_field("migrated_batches", dev.migrated_batches);
            writeln!(out, "{}", obj.finish())?;
            for ev in &dev.events {
                let mut obj = JsonObject::new();
                obj.str_field("type", "event");
                obj.str_field("device", &dev.device);
                obj.str_field("label", &ev.label);
                obj.u64_field("items", ev.items);
                obj.u64_field("work", ev.work);
                obj.f64_field("queued_s", ev.queued_seconds);
                obj.f64_field("submitted_s", ev.submitted_seconds);
                obj.f64_field("start_s", ev.start_seconds);
                obj.f64_field("end_s", ev.end_seconds);
                writeln!(out, "{}", obj.finish())?;
            }
        }
        if let Some(e) = &self.energy {
            let mut obj = JsonObject::new();
            obj.str_field("type", "energy");
            obj.f64_field("mapping_seconds", e.mapping_seconds);
            obj.f64_field("average_power_w", e.average_power_w);
            obj.f64_field("idle_power_w", e.idle_power_w);
            obj.f64_field("energy_j", e.energy_j);
            writeln!(out, "{}", obj.finish())?;
        }
        Ok(())
    }

    /// Reconstructs a report from its own JSON-lines form (the inverse
    /// of [`RunReport::write_json_lines`]). Record types this writer
    /// does not produce (`read`, `cell`, unknown) are skipped, so the
    /// scanner accepts full telemetry files too. Derived device fields
    /// (`launches`, `busy_seconds`, `utilization`) are recomputed from
    /// the events rather than read back. Returns `None` when a line is
    /// malformed or no `run` record is present.
    pub fn from_json_lines(text: &str) -> Option<RunReport> {
        fn u64_of(fields: &[(String, JsonValue)], key: &str) -> Option<u64> {
            field(fields, key)?.as_u64()
        }
        fn f64_of(fields: &[(String, JsonValue)], key: &str) -> Option<f64> {
            field(fields, key)?.as_f64()
        }
        fn str_of<'a>(fields: &'a [(String, JsonValue)], key: &str) -> Option<&'a str> {
            field(fields, key)?.as_str()
        }

        let mut report = RunReport::default();
        let mut saw_run = false;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let fields = parse_flat_object(line)?;
            match str_of(&fields, "type")? {
                "run" => {
                    saw_run = true;
                    report.reads = u64_of(&fields, "reads")?;
                    report.simulated_seconds = f64_of(&fields, "simulated_seconds")?;
                    report.wall_seconds = f64_of(&fields, "wall_seconds")?;
                    report.resumed_batches = u64_of(&fields, "resumed_batches").unwrap_or(0);
                    for (name, value) in &fields {
                        if let Some(v) = value.as_u64() {
                            report.totals.set_field(name, v);
                        }
                    }
                }
                "stage" => report.stages.push((
                    str_of(&fields, "path")?.to_string(),
                    f64_of(&fields, "seconds")?,
                    u64_of(&fields, "count")?,
                )),
                "latency" => report.latencies.push(StageLatency {
                    stage: str_of(&fields, "stage")?.to_string(),
                    count: u64_of(&fields, "count")?,
                    p50_seconds: f64_of(&fields, "p50_s")?,
                    p90_seconds: f64_of(&fields, "p90_s")?,
                    p99_seconds: f64_of(&fields, "p99_s")?,
                }),
                "device" => report.devices.push(DeviceTimeline {
                    device: str_of(&fields, "device")?.to_string(),
                    events: Vec::new(),
                    retries: u64_of(&fields, "retries").unwrap_or(0),
                    faults: u64_of(&fields, "faults").unwrap_or(0),
                    migrated_batches: u64_of(&fields, "migrated_batches").unwrap_or(0),
                }),
                "event" => {
                    let event = KernelEvent {
                        label: str_of(&fields, "label")?.to_string(),
                        items: u64_of(&fields, "items")?,
                        work: u64_of(&fields, "work")?,
                        queued_seconds: f64_of(&fields, "queued_s")?,
                        submitted_seconds: f64_of(&fields, "submitted_s")?,
                        start_seconds: f64_of(&fields, "start_s")?,
                        end_seconds: f64_of(&fields, "end_s")?,
                    };
                    report.devices.last_mut()?.events.push(event);
                }
                "energy" => {
                    report.energy = Some(EnergySummary {
                        mapping_seconds: f64_of(&fields, "mapping_seconds")?,
                        average_power_w: f64_of(&fields, "average_power_w")?,
                        idle_power_w: f64_of(&fields, "idle_power_w")?,
                        energy_j: f64_of(&fields, "energy_j")?,
                    });
                }
                _ => {}
            }
        }
        if saw_run {
            Some(report)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{field, parse_flat_object};

    fn sample() -> RunReport {
        RunReport {
            reads: 2,
            totals: MapMetrics {
                seeds_selected: 6,
                hits: 2,
                ..MapMetrics::new()
            },
            stages: vec![("map".into(), 0.5, 2)],
            latencies: vec![
                StageLatency {
                    stage: "map/filtration".into(),
                    count: 2,
                    p50_seconds: 0.125,
                    p90_seconds: 0.25,
                    p99_seconds: 0.25,
                },
                StageLatency {
                    stage: "batch".into(),
                    count: 2,
                    p50_seconds: 1.0,
                    p90_seconds: 1.0,
                    p99_seconds: 1.0,
                },
            ],
            devices: vec![DeviceTimeline {
                device: "cpu".into(),
                events: vec![
                    KernelEvent {
                        label: "batch-0".into(),
                        items: 10,
                        work: 100,
                        queued_seconds: 0.0,
                        submitted_seconds: 0.0,
                        start_seconds: 0.0,
                        end_seconds: 1.0,
                    },
                    KernelEvent {
                        label: "batch-1".into(),
                        items: 10,
                        work: 100,
                        queued_seconds: 0.0,
                        submitted_seconds: 0.0,
                        start_seconds: 1.0,
                        end_seconds: 2.0,
                    },
                ],
                retries: 1,
                faults: 2,
                migrated_batches: 3,
            }],
            simulated_seconds: 2.5,
            wall_seconds: 0.01,
            resumed_batches: 4,
            energy: Some(EnergySummary {
                mapping_seconds: 2.5,
                average_power_w: 4.0,
                idle_power_w: 2.0,
                energy_j: 5.0,
            }),
        }
    }

    #[test]
    fn empty_timeline_busy_is_positive_zero() {
        // Dead devices produce empty timelines; their busy time must
        // serialize as 0.0, not the empty f64 sum's -0.0.
        let dev = DeviceTimeline::default();
        assert_eq!(dev.busy_seconds().to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn timeline_accounting() {
        let report = sample();
        let dev = &report.devices[0];
        assert_eq!(dev.busy_seconds(), 2.0);
        assert_eq!(dev.span_seconds(), 2.0);
        assert_eq!(dev.utilization(report.simulated_seconds), 0.8);
        assert_eq!(dev.events[1].queue_wait_seconds(), 1.0);
    }

    #[test]
    fn render_mentions_everything() {
        let text = sample().render();
        for needle in [
            "2 reads",
            "seeds_selected",
            "batch-1",
            "util",
            "J above idle",
            "faults 2 | retries 1 | migrated batches 3",
            "resumed from checkpoint: 4 batch(es)",
            "latency percentiles",
            "map/filtration",
            "p99",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // Fault counters stay silent on a fault-free device, and the
        // resume line stays silent on an uninterrupted run.
        let mut clean = sample();
        clean.resumed_batches = 0;
        let dev = &mut clean.devices[0];
        (dev.retries, dev.faults, dev.migrated_batches) = (0, 0, 0);
        assert!(!clean.render().contains("faults"));
        assert!(!clean.render().contains("resumed from checkpoint"));
    }

    #[test]
    fn json_lines_parse_back() {
        let mut buf = Vec::new();
        sample().write_json_lines(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut types = Vec::new();
        for line in text.lines() {
            let fields = parse_flat_object(line).expect("every line parses");
            types.push(
                field(&fields, "type")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_string(),
            );
            if types.last().map(String::as_str) == Some("event") {
                let start = field(&fields, "start_s").unwrap().as_f64().unwrap();
                let end = field(&fields, "end_s").unwrap().as_f64().unwrap();
                assert!(end >= start);
            }
        }
        assert_eq!(
            types,
            vec!["run", "stage", "latency", "latency", "device", "event", "event", "energy"]
        );
    }

    #[test]
    fn json_round_trip_reconstructs_the_report() {
        // Regression for the full serialize → parse → compare cycle,
        // including the retries/faults/migrated_batches fault fields
        // and the resumed_batches provenance counter.
        let original = sample();
        let mut buf = Vec::new();
        original.write_json_lines(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = RunReport::from_json_lines(&text).expect("round trip parses");
        assert_eq!(parsed, original);
        assert_eq!(parsed.devices[0].retries, 1);
        assert_eq!(parsed.devices[0].faults, 2);
        assert_eq!(parsed.devices[0].migrated_batches, 3);
        assert_eq!(parsed.resumed_batches, 4);
    }

    #[test]
    fn round_trip_tolerates_read_records_and_requires_a_run_record() {
        let original = sample();
        let mut buf = Vec::new();
        original.write_json_lines(&mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        // Telemetry files interleave per-read records before the report.
        text.insert_str(0, &format!("{}\n", MapMetrics::new().to_json_line(0)));
        assert_eq!(RunReport::from_json_lines(&text).expect("parses"), original);
        assert!(RunReport::from_json_lines("").is_none());
        assert!(RunReport::from_json_lines("{\"type\":\"stage\"}").is_none());
    }
}
