//! The per-read metric record threaded through the mapping pipeline.

use crate::json::JsonObject;

/// Work performed while mapping one read, broken down by pipeline stage.
///
/// Field names follow the paper's stages: FM-index backward extension
/// builds the frequency table (§III-A), the DP filtration selects seeds
/// and their candidate locations (§III-B), and Myers bit-vector
/// verification confirms hits (§III-C). All fields are plain `u64`s so
/// the record lives on the stack and costs nothing to merge — the
/// instrumented hot path never allocates.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MapMetrics {
    /// Seeds chosen by the filtration stage (both strands).
    pub seeds_selected: u64,
    /// FM-index occ operations: one per backward-extension step while
    /// building the seed frequency table.
    pub fm_extend_ops: u64,
    /// FM-index locate operations: suffix-array positions materialised
    /// for selected seeds (after the per-seed cap).
    pub fm_locate_ops: u64,
    /// Candidate locations entering diagonal merging (pre-cap total of
    /// located positions).
    pub candidates_raw: u64,
    /// Candidate windows surviving diagonal merging — what verification
    /// actually inspects.
    pub candidates_merged: u64,
    /// Dynamic-programming cells filled by the optimal seed solver.
    pub dp_cells: u64,
    /// Candidate windows examined by the pre-alignment filter stage
    /// (0 when no prefilter is configured).
    pub prefilter_tested: u64,
    /// Candidate windows the prefilter rejected. Filters are sound
    /// (zero false negatives), so every rejection is a true reject —
    /// a verification that would have found nothing.
    pub prefilter_rejected: u64,
    /// Prefilter-accepted windows that verification then rejected:
    /// the filter's false accepts (its only failure mode).
    pub prefilter_false_accepts: u64,
    /// Word operations spent inside prefilters, in the same currency
    /// as `word_updates`; charged to `MapOutput.work` at unit cost.
    pub prefilter_words: u64,
    /// Myers bit-vector verification calls (one per candidate window
    /// scanned).
    pub verifications: u64,
    /// Bit-vector word updates performed across all verifications; this
    /// is the unit the verification stage charges to `MapOutput.work`.
    pub word_updates: u64,
    /// Mappings that passed verification within the distance threshold.
    pub hits: u64,
}

impl MapMetrics {
    /// A zeroed record.
    pub fn new() -> MapMetrics {
        MapMetrics::default()
    }

    /// Adds every field of `other` into `self` (e.g. folding per-read
    /// records into run totals, or mate records into a pair record).
    pub fn merge(&mut self, other: &MapMetrics) {
        self.seeds_selected += other.seeds_selected;
        self.fm_extend_ops += other.fm_extend_ops;
        self.fm_locate_ops += other.fm_locate_ops;
        self.candidates_raw += other.candidates_raw;
        self.candidates_merged += other.candidates_merged;
        self.dp_cells += other.dp_cells;
        self.prefilter_tested += other.prefilter_tested;
        self.prefilter_rejected += other.prefilter_rejected;
        self.prefilter_false_accepts += other.prefilter_false_accepts;
        self.prefilter_words += other.prefilter_words;
        self.verifications += other.verifications;
        self.word_updates += other.word_updates;
        self.hits += other.hits;
    }

    /// Field names and values in declaration order, for generic export.
    pub fn fields(&self) -> [(&'static str, u64); 13] {
        [
            ("seeds_selected", self.seeds_selected),
            ("fm_extend_ops", self.fm_extend_ops),
            ("fm_locate_ops", self.fm_locate_ops),
            ("candidates_raw", self.candidates_raw),
            ("candidates_merged", self.candidates_merged),
            ("dp_cells", self.dp_cells),
            ("prefilter_tested", self.prefilter_tested),
            ("prefilter_rejected", self.prefilter_rejected),
            ("prefilter_false_accepts", self.prefilter_false_accepts),
            ("prefilter_words", self.prefilter_words),
            ("verifications", self.verifications),
            ("word_updates", self.word_updates),
            ("hits", self.hits),
        ]
    }

    /// Sets the field called `name` to `value`, returning `false` when
    /// no such field exists. The inverse of [`MapMetrics::fields`] for
    /// JSON round-tripping.
    pub fn set_field(&mut self, name: &str, value: u64) -> bool {
        let slot = match name {
            "seeds_selected" => &mut self.seeds_selected,
            "fm_extend_ops" => &mut self.fm_extend_ops,
            "fm_locate_ops" => &mut self.fm_locate_ops,
            "candidates_raw" => &mut self.candidates_raw,
            "candidates_merged" => &mut self.candidates_merged,
            "dp_cells" => &mut self.dp_cells,
            "prefilter_tested" => &mut self.prefilter_tested,
            "prefilter_rejected" => &mut self.prefilter_rejected,
            "prefilter_false_accepts" => &mut self.prefilter_false_accepts,
            "prefilter_words" => &mut self.prefilter_words,
            "verifications" => &mut self.verifications,
            "word_updates" => &mut self.word_updates,
            "hits" => &mut self.hits,
            _ => return false,
        };
        *slot = value;
        true
    }

    /// Reconstructs the `MapOutput.work` scalar from this record given the
    /// stage costs used by the mapper (`extend_cost`, `dp_cell_cost`,
    /// `locate_cost`; word updates and prefilter words are charged at
    /// unit cost — they share the bit-parallel word-op currency).
    pub fn work_units(&self, extend_cost: u64, dp_cell_cost: u64, locate_cost: u64) -> u64 {
        self.fm_extend_ops * extend_cost
            + self.dp_cells * dp_cell_cost
            + self.fm_locate_ops * locate_cost
            + self.word_updates
            + self.prefilter_words
    }

    /// Serialises the record into `obj` as flat numeric fields.
    pub fn write_fields(&self, obj: &mut JsonObject) {
        for (name, value) in self.fields() {
            obj.u64_field(name, value);
        }
    }

    /// One JSON-lines record for this read (`{"type":"read","id":...}`).
    pub fn to_json_line(&self, read_id: u64) -> String {
        let mut obj = JsonObject::new();
        obj.str_field("type", "read");
        obj.u64_field("id", read_id);
        self.write_fields(&mut obj);
        obj.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_every_field() {
        let mut a = MapMetrics::new();
        a.seeds_selected = 1;
        a.word_updates = 10;
        let mut b = MapMetrics::new();
        b.seeds_selected = 2;
        b.hits = 3;
        b.word_updates = 5;
        a.merge(&b);
        assert_eq!(a.seeds_selected, 3);
        assert_eq!(a.hits, 3);
        assert_eq!(a.word_updates, 15);
        // fields() must cover every struct field: sum through both paths.
        let sum: u64 = a.fields().iter().map(|(_, v)| v).sum();
        assert_eq!(sum, 3 + 3 + 15);
    }

    #[test]
    fn work_units_weighs_stages() {
        let m = MapMetrics {
            fm_extend_ops: 2,
            dp_cells: 3,
            fm_locate_ops: 4,
            word_updates: 5,
            prefilter_words: 6,
            ..MapMetrics::new()
        };
        assert_eq!(m.work_units(24, 2, 96), 2 * 24 + 3 * 2 + 4 * 96 + 5 + 6);
    }

    #[test]
    fn prefilter_counters_merge_and_export() {
        let mut a = MapMetrics::new();
        let b = MapMetrics {
            prefilter_tested: 10,
            prefilter_rejected: 7,
            prefilter_false_accepts: 2,
            prefilter_words: 40,
            ..MapMetrics::new()
        };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.prefilter_tested, 20);
        assert_eq!(a.prefilter_rejected, 14);
        let fields = a.fields();
        assert!(fields.contains(&("prefilter_false_accepts", 4)));
        assert!(fields.contains(&("prefilter_words", 80)));
        assert!(a.to_json_line(1).contains("\"prefilter_rejected\":14"));
    }

    #[test]
    fn set_field_inverts_fields() {
        let src = MapMetrics {
            seeds_selected: 1,
            fm_extend_ops: 2,
            fm_locate_ops: 3,
            candidates_raw: 4,
            candidates_merged: 5,
            dp_cells: 6,
            prefilter_tested: 7,
            prefilter_rejected: 8,
            prefilter_false_accepts: 9,
            prefilter_words: 10,
            verifications: 11,
            word_updates: 12,
            hits: 13,
        };
        let mut dst = MapMetrics::new();
        for (name, value) in src.fields() {
            assert!(dst.set_field(name, value), "unknown field {name}");
        }
        assert_eq!(dst, src);
        assert!(!dst.set_field("no_such_field", 1));
    }

    #[test]
    fn json_line_shape() {
        let m = MapMetrics {
            hits: 2,
            ..MapMetrics::new()
        };
        let line = m.to_json_line(7);
        assert!(line.starts_with("{\"type\":\"read\",\"id\":7,"));
        assert!(line.contains("\"hits\":2"));
        assert!(line.ends_with('}'));
    }
}
