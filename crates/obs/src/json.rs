//! A hand-rolled JSON subset: enough to write telemetry as JSON-lines
//! and to read those lines back for pretty-printing.
//!
//! The build environment has no registry access, so serde is off the
//! table. Telemetry needs *flat* objects of strings and numbers — one
//! object per line — which keeps the writer small and auditable. The
//! scanner additionally understands nested objects and arrays, because
//! Chrome-tracing files (see [`crate::trace`]) carry an `args` object
//! inside every event.

/// Appends `s` to `out` with JSON string escaping (quotes, backslash,
/// control characters as `\u00XX` or their short forms).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Formats an `f64` as a JSON number (non-finite values become `null`,
/// which JSON cannot represent as numbers).
pub fn format_f64(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        // `{}` prints integral floats without a point; keep the type
        // obvious to downstream readers.
        if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

/// An incremental writer for one flat JSON object.
///
/// # Example
///
/// ```
/// use repute_obs::json::JsonObject;
///
/// let mut obj = JsonObject::new();
/// obj.str_field("type", "event");
/// obj.u64_field("items", 42);
/// obj.f64_field("seconds", 0.5);
/// assert_eq!(obj.finish(), r#"{"type":"event","items":42,"seconds":0.5}"#);
/// ```
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl Default for JsonObject {
    fn default() -> JsonObject {
        JsonObject::new()
    }
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> JsonObject {
        JsonObject {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, name: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(&mut self.buf, name);
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn str_field(&mut self, name: &str, value: &str) -> &mut JsonObject {
        self.key(name);
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64_field(&mut self, name: &str, value: u64) -> &mut JsonObject {
        self.key(name);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Adds a float field (`null` if non-finite).
    pub fn f64_field(&mut self, name: &str, value: f64) -> &mut JsonObject {
        self.key(name);
        self.buf.push_str(&format_f64(value));
        self
    }

    /// Adds a boolean field.
    pub fn bool_field(&mut self, name: &str, value: bool) -> &mut JsonObject {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a pre-serialized JSON value verbatim — the hook nested
    /// objects and arrays are written through (the caller is responsible
    /// for `raw` being valid JSON).
    pub fn raw_field(&mut self, name: &str, raw: &str) -> &mut JsonObject {
        self.key(name);
        self.buf.push_str(raw);
        self
    }

    /// Closes the object and returns it.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// A value scanned back out of a telemetry line or a trace file.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (also produced for non-finite floats on the write side).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array of values.
    Arr(Vec<JsonValue>),
    /// An object, keys in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's fields, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// `true` for the scalar shapes the flat telemetry writer produces.
    fn is_scalar(&self) -> bool {
        !matches!(self, JsonValue::Arr(_) | JsonValue::Obj(_))
    }
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars>) {
    while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'b' => out.push('\u{08}'),
                'f' => out.push('\u{0C}'),
                'u' => {
                    let hex: String = (0..4).map(|_| chars.next()).collect::<Option<_>>()?;
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

fn parse_value(chars: &mut std::iter::Peekable<std::str::Chars>) -> Option<JsonValue> {
    skip_ws(chars);
    match chars.peek()? {
        '"' => Some(JsonValue::Str(parse_string(chars)?)),
        '{' => {
            chars.next();
            let mut fields = Vec::new();
            skip_ws(chars);
            if chars.peek() == Some(&'}') {
                chars.next();
                return Some(JsonValue::Obj(fields));
            }
            loop {
                skip_ws(chars);
                let key = parse_string(chars)?;
                skip_ws(chars);
                if chars.next()? != ':' {
                    return None;
                }
                let value = parse_value(chars)?;
                fields.push((key, value));
                skip_ws(chars);
                match chars.next()? {
                    ',' => continue,
                    '}' => return Some(JsonValue::Obj(fields)),
                    _ => return None,
                }
            }
        }
        '[' => {
            chars.next();
            let mut items = Vec::new();
            skip_ws(chars);
            if chars.peek() == Some(&']') {
                chars.next();
                return Some(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(chars)?);
                skip_ws(chars);
                match chars.next()? {
                    ',' => continue,
                    ']' => return Some(JsonValue::Arr(items)),
                    _ => return None,
                }
            }
        }
        't' | 'f' | 'n' => {
            let word: String =
                std::iter::from_fn(|| chars.next_if(|c| c.is_ascii_alphabetic())).collect();
            match word.as_str() {
                "true" => Some(JsonValue::Bool(true)),
                "false" => Some(JsonValue::Bool(false)),
                "null" => Some(JsonValue::Null),
                _ => None,
            }
        }
        _ => {
            let num: String = std::iter::from_fn(|| {
                chars.next_if(|c| c.is_ascii_digit() || "+-.eE".contains(*c))
            })
            .collect();
            Some(JsonValue::Num(num.parse().ok()?))
        }
    }
}

/// Parses one complete JSON document (object, array, or scalar) with no
/// trailing content. Returns `None` on any syntax error.
pub fn parse_json(text: &str) -> Option<JsonValue> {
    let mut chars = text.trim().chars().peekable();
    let value = parse_value(&mut chars)?;
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return None;
    }
    Some(value)
}

/// Parses one flat JSON object (scalar values only — no nesting, no
/// arrays) into key/value pairs in source order. Returns `None` on any
/// syntax the telemetry writer cannot produce.
pub fn parse_flat_object(line: &str) -> Option<Vec<(String, JsonValue)>> {
    match parse_json(line)? {
        JsonValue::Obj(fields) if fields.iter().all(|(_, v)| v.is_scalar()) => Some(fields),
        _ => None,
    }
}

/// Looks up `key` in parsed fields.
pub fn field<'a>(fields: &'a [(String, JsonValue)], key: &str) -> Option<&'a JsonValue> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips() {
        let nasty = "quote \" slash \\ newline \n tab \t bell \u{07} unicode ∆";
        let mut obj = JsonObject::new();
        obj.str_field("s", nasty);
        let line = obj.finish();
        assert!(line.contains("\\\""));
        assert!(line.contains("\\\\"));
        assert!(line.contains("\\n"));
        assert!(line.contains("\\u0007"));
        let parsed = parse_flat_object(&line).expect("round trip parses");
        assert_eq!(field(&parsed, "s").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn writes_all_scalar_shapes() {
        let mut obj = JsonObject::new();
        obj.str_field("a", "x")
            .u64_field("b", 3)
            .f64_field("c", 1.5)
            .f64_field("d", f64::NAN)
            .bool_field("e", true)
            .f64_field("f", 2.0);
        let line = obj.finish();
        assert_eq!(line, r#"{"a":"x","b":3,"c":1.5,"d":null,"e":true,"f":2.0}"#);
        let parsed = parse_flat_object(&line).unwrap();
        assert_eq!(field(&parsed, "b").unwrap().as_u64(), Some(3));
        assert_eq!(field(&parsed, "c").unwrap().as_f64(), Some(1.5));
        assert_eq!(field(&parsed, "d"), Some(&JsonValue::Null));
        assert_eq!(field(&parsed, "e"), Some(&JsonValue::Bool(true)));
        assert_eq!(field(&parsed, "f").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "nonsense",
            r#"{"a" 1}"#,
            r#"{"a":1} trailing"#,
            r#"{"a":}"#,
            r#"{"a":"unterminated}"#,
        ] {
            assert!(parse_flat_object(bad).is_none(), "accepted {bad:?}");
        }
        assert_eq!(parse_flat_object("{}"), Some(vec![]));
        assert_eq!(parse_flat_object("  { }  "), Some(vec![]));
    }

    #[test]
    fn scientific_notation_numbers_parse() {
        let parsed = parse_flat_object(r#"{"x":1e-3,"y":-2.5E2}"#).unwrap();
        assert_eq!(field(&parsed, "x").unwrap().as_f64(), Some(0.001));
        assert_eq!(field(&parsed, "y").unwrap().as_f64(), Some(-250.0));
    }
}
