//! Observability substrate for the REPUTE reproduction.
//!
//! The paper's evaluation is built from per-stage measurements: candidate
//! location counts out of the DP filtration (§III-B), verification work
//! (§III-C), per-device kernel times, and power-meter energy readings
//! (§III-D). OpenCL exposes the device side of this through event
//! profiling (`clGetEventProfilingInfo` with `CL_PROFILING_COMMAND_QUEUED`
//! / `SUBMIT` / `START` / `END`); this crate is the software analogue for
//! the whole pipeline:
//!
//! * [`Counter`], [`Histogram`] (log2-bucketed), and [`StageTimer`] —
//!   cheap primitives behind the [`MetricsSink`] trait, whose no-op
//!   implementation ([`NoopSink`]) keeps the hot path allocation-free
//!   when telemetry is disabled,
//! * [`MapMetrics`] — the per-read record (seeds, FM occ/locate ops,
//!   candidates pre/post merge, DP cells, verifications, hits) threaded
//!   through filtration, verification, and the mapper core,
//! * [`RunReport`] — a run-level roll-up folding in per-device kernel
//!   timelines and the energy summary, exportable as a human-readable
//!   table or hand-rolled JSON-lines (no serde),
//! * [`json`] — the minimal JSON writer/scanner the exports are built on,
//! * [`trace`] — span tracing over simulated time, exported as
//!   Chrome-tracing (`chrome://tracing`) JSON with byte-identical
//!   output for identical runs,
//! * [`Samples`] — retained-sample exact percentiles (p50/p90/p99)
//!   complementing the lossy log2 [`Histogram`].
//!
//! Everything here is std-only by design: the build environment has no
//! registry access, and the hot-path cost model (one branch on
//! [`MetricsSink::enabled`]) must stay trivially auditable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
mod map_metrics;
mod metrics;
mod report;
mod slo;
pub mod trace;

pub use map_metrics::MapMetrics;
pub use metrics::{
    Collected, CollectingSink, Counter, Gauge, Histogram, MetricsSink, NoopSink, Samples,
    StageTimer,
};
pub use report::{DeviceTimeline, EnergySummary, KernelEvent, RunReport, StageLatency};
pub use slo::{SloReport, SloTracker};
pub use trace::{NoopTraceSink, Span, TraceSink, VecTraceSink};
