//! Counters, histograms, stage timers, and the sink trait they hide
//! behind.

use std::sync::Mutex;
use std::time::Instant;

use crate::map_metrics::MapMetrics;

/// A monotonically increasing event count.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n` events.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Adds one event.
    pub fn increment(&mut self) {
        self.add(1);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Folds another counter in.
    pub fn merge(&mut self, other: &Counter) {
        self.value += other.value;
    }
}

/// A level that moves both ways — queue depths, in-flight batches —
/// tracked together with its high-water mark.
///
/// Counters only grow; a gauge additionally answers "how deep did it
/// ever get", which is the number an admission-control layer reports.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Gauge {
    value: u64,
    max: u64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the current level, updating the high-water mark.
    pub fn set(&mut self, value: u64) {
        self.value = value;
        self.max = self.max.max(value);
    }

    /// Raises the level by `n`.
    pub fn add(&mut self, n: u64) {
        self.set(self.value + n);
    }

    /// Lowers the level by `n` (saturating at zero).
    pub fn sub(&mut self, n: u64) {
        self.value = self.value.saturating_sub(n);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Highest level ever set.
    pub fn high_water(&self) -> u64 {
        self.max
    }
}

/// Number of buckets in a [`Histogram`]: one for zero plus one per power
/// of two up to 2⁶³.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` observations.
///
/// Bucket 0 holds exact zeros; bucket `i > 0` holds values in
/// `[2^(i-1), 2^i)`. Recording is two instructions (a `leading_zeros`
/// and an increment) and never allocates, so it is safe on hot paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The bucket index `value` falls into.
    pub fn bucket_for(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive `(low, high)` bounds of bucket `i`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < HISTOGRAM_BUCKETS, "bucket {i} out of range");
        if i == 0 {
            (0, 0)
        } else if i == 64 {
            (1 << 63, u64::MAX)
        } else {
            (1 << (i - 1), (1 << i) - 1)
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Histogram::bucket_for(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation, 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Folds another histogram in.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Upper bound of the smallest bucket whose cumulative count reaches
    /// quantile `q` (in `[0, 1]`); 0 if the histogram is empty.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if b > 0 && seen >= target.max(1) {
                return Histogram::bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }
}

/// Retained samples for exact percentile extraction.
///
/// [`Histogram`] stays lossy (log2 buckets) for unbounded hot-path
/// counts; `Samples` is the complement for bounded populations — one
/// value per stage per read, one per batch — where exact p50/p90/p99
/// are wanted. Percentiles use the nearest-rank definition: for `n`
/// samples and quantile `q`, the answer is the `ceil(q·n)`-th smallest
/// (clamped to `[1, n]`), so every reported percentile is an actual
/// observed value.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Samples {
    sorted: Vec<f64>,
}

impl Samples {
    /// An empty sample set.
    pub fn new() -> Samples {
        Samples::default()
    }

    /// Builds a sample set from a slice of values in one sort
    /// (non-finite values are dropped so ordering stays total).
    pub fn from_values(values: &[f64]) -> Samples {
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        sorted.sort_by(f64::total_cmp);
        Samples { sorted }
    }

    /// Records one observation; non-finite values are ignored.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let at = self.sorted.partition_point(|&x| x < value);
        self.sorted.insert(at, value);
    }

    /// Number of retained observations.
    pub fn count(&self) -> u64 {
        self.sorted.len() as u64
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Exact nearest-rank percentile for quantile `q` in `[0, 1]`;
    /// `0.0` when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.len();
        let rank = (q.clamp(0.0, 1.0) * n as f64).ceil() as usize;
        self.sorted[rank.clamp(1, n) - 1]
    }

    /// Shorthand for the (p50, p90, p99) triple.
    pub fn p50_p90_p99(&self) -> (f64, f64, f64) {
        (
            self.percentile(0.50),
            self.percentile(0.90),
            self.percentile(0.99),
        )
    }
}

/// A wall-clock timer for named, nestable pipeline stages.
///
/// Stages are identified by slash-joined paths: starting `"map"` and then
/// `"filter"` inside it accumulates time under both `"map"` and
/// `"map/filter"`. Totals are kept in first-start order.
#[derive(Debug, Default)]
pub struct StageTimer {
    stack: Vec<(&'static str, Instant)>,
    totals: Vec<(String, f64, u64)>,
}

impl StageTimer {
    /// A timer with no open stages.
    pub fn new() -> StageTimer {
        StageTimer::default()
    }

    /// Opens a stage nested inside the currently open one (if any).
    pub fn start(&mut self, name: &'static str) {
        self.stack.push((name, Instant::now()));
    }

    /// Closes the innermost open stage, accumulating its wall time under
    /// its full path. Returns the elapsed seconds of this activation.
    ///
    /// # Panics
    ///
    /// Panics if no stage is open.
    pub fn stop(&mut self) -> f64 {
        let Some((_, started)) = self.stack.last().copied() else {
            panic!("no stage open");
        };
        let elapsed = started.elapsed().as_secs_f64();
        let path = self
            .stack
            .iter()
            .map(|(n, _)| *n)
            .collect::<Vec<_>>()
            .join("/");
        self.stack.pop();
        match self.totals.iter_mut().find(|(p, _, _)| *p == path) {
            Some((_, secs, n)) => {
                *secs += elapsed;
                *n += 1;
            }
            None => self.totals.push((path, elapsed, 1)),
        }
        elapsed
    }

    /// Runs `f` inside a stage named `name`.
    pub fn time<R>(&mut self, name: &'static str, f: impl FnOnce(&mut StageTimer) -> R) -> R {
        self.start(name);
        let out = f(self);
        self.stop();
        out
    }

    /// Depth of currently open stages.
    pub fn open_depth(&self) -> usize {
        self.stack.len()
    }

    /// `(path, total_seconds, activations)` per stage, in first-start
    /// order.
    pub fn stages(&self) -> &[(String, f64, u64)] {
        &self.totals
    }
}

/// Where instrumented code reports its measurements.
///
/// Every method has a no-op default, so a sink only overrides what it
/// cares about and the disabled path compiles down to nothing. Hot loops
/// may additionally branch on [`MetricsSink::enabled`] to skip building
/// arguments.
pub trait MetricsSink {
    /// Whether this sink records anything; `false` lets callers skip work.
    fn enabled(&self) -> bool {
        false
    }

    /// Reports the finished per-read record.
    fn record_read(&self, read_id: u64, metrics: &MapMetrics) {
        let _ = (read_id, metrics);
    }

    /// Bumps the named counter.
    fn add(&self, name: &'static str, value: u64) {
        let _ = (name, value);
    }

    /// Records one observation into the named histogram.
    fn observe(&self, name: &'static str, value: u64) {
        let _ = (name, value);
    }
}

/// The disabled sink: every call is a no-op and nothing allocates.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl MetricsSink for NoopSink {}

/// Aggregated state of a [`CollectingSink`].
#[derive(Debug, Default)]
pub struct Collected {
    /// Reads reported via `record_read`.
    pub reads: u64,
    /// Sum of every reported [`MapMetrics`] record.
    pub totals: MapMetrics,
    /// Named counters, in first-use order.
    pub counters: Vec<(String, Counter)>,
    /// Named histograms, in first-use order.
    pub histograms: Vec<(String, Histogram)>,
}

impl Collected {
    fn counter(&mut self, name: &str) -> &mut Counter {
        let at = match self.counters.iter().position(|(n, _)| n == name) {
            Some(i) => i,
            None => {
                self.counters.push((name.to_string(), Counter::new()));
                self.counters.len() - 1
            }
        };
        &mut self.counters[at].1
    }

    fn histogram(&mut self, name: &str) -> &mut Histogram {
        let at = match self.histograms.iter().position(|(n, _)| n == name) {
            Some(i) => i,
            None => {
                self.histograms.push((name.to_string(), Histogram::new()));
                self.histograms.len() - 1
            }
        };
        &mut self.histograms[at].1
    }
}

/// A thread-safe sink that aggregates everything it is given.
///
/// Per-read records are summed into `totals` and fanned into built-in
/// `*_per_read` histograms so the run report can show distributions, not
/// just totals.
#[derive(Debug, Default)]
pub struct CollectingSink {
    inner: Mutex<Collected>,
}

impl CollectingSink {
    /// An empty sink.
    pub fn new() -> CollectingSink {
        CollectingSink::default()
    }

    /// Consumes the sink, returning everything collected. Poisoned
    /// locks are tolerated — the collected counts are plain data and
    /// stay coherent even if a reporting thread panicked.
    pub fn into_collected(self) -> Collected {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Runs `f` with the collected state (for inspection mid-run).
    pub fn with<R>(&self, f: impl FnOnce(&Collected) -> R) -> R {
        f(&self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner))
    }
}

impl MetricsSink for CollectingSink {
    fn enabled(&self) -> bool {
        true
    }

    fn record_read(&self, _read_id: u64, metrics: &MapMetrics) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.reads += 1;
        inner.totals.merge(metrics);
        inner
            .histogram("candidates_merged_per_read")
            .record(metrics.candidates_merged);
        inner
            .histogram("dp_cells_per_read")
            .record(metrics.dp_cells);
        inner
            .histogram("word_updates_per_read")
            .record(metrics.word_updates);
        inner.histogram("hits_per_read").record(metrics.hits);
    }

    fn add(&self, name: &'static str, value: u64) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.counter(name).add(value);
    }

    fn observe(&self, name: &'static str, value: u64) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.histogram(name).record(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_tracks_level_and_high_water() {
        let mut g = Gauge::new();
        assert_eq!((g.get(), g.high_water()), (0, 0));
        g.add(3);
        g.add(2);
        assert_eq!((g.get(), g.high_water()), (5, 5));
        g.sub(4);
        assert_eq!((g.get(), g.high_water()), (1, 5));
        g.sub(9); // saturates
        assert_eq!(g.get(), 0);
        g.set(2);
        assert_eq!((g.get(), g.high_water()), (2, 5));
    }

    #[test]
    fn counter_add_and_merge() {
        let mut a = Counter::new();
        a.increment();
        a.add(4);
        let mut b = Counter::new();
        b.add(10);
        a.merge(&b);
        assert_eq!(a.get(), 15);
    }

    #[test]
    fn histogram_bucket_edges() {
        // Zero is its own bucket; powers of two open a new bucket.
        assert_eq!(Histogram::bucket_for(0), 0);
        assert_eq!(Histogram::bucket_for(1), 1);
        assert_eq!(Histogram::bucket_for(2), 2);
        assert_eq!(Histogram::bucket_for(3), 2);
        assert_eq!(Histogram::bucket_for(4), 3);
        assert_eq!(Histogram::bucket_for(7), 3);
        assert_eq!(Histogram::bucket_for(8), 4);
        assert_eq!(Histogram::bucket_for(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_for(lo), i, "low edge of bucket {i}");
            assert_eq!(Histogram::bucket_for(hi), i, "high edge of bucket {i}");
        }
    }

    #[test]
    fn histogram_record_and_merge() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[2], 2); // 2 and 3

        let mut other = Histogram::new();
        other.record(3);
        other.record(1 << 20);
        h.merge(&other);
        assert_eq!(h.count(), 7);
        assert_eq!(h.buckets()[2], 3);
        assert_eq!(h.buckets()[21], 1);
        assert_eq!(h.max(), 1 << 20);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile_upper_bound(0.5), 0);
        for v in 1..=100u64 {
            h.record(v);
        }
        // Median of 1..=100 lands in bucket [64, 127] → capped at max 100.
        let med = h.quantile_upper_bound(0.5);
        assert!((63..=100).contains(&med), "median bound {med}");
        assert_eq!(h.quantile_upper_bound(1.0), 100);
    }

    #[test]
    fn samples_empty_yields_zero_percentiles() {
        let s = Samples::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50_p90_p99(), (0.0, 0.0, 0.0));
        assert_eq!(s.percentile(1.0), 0.0);
    }

    #[test]
    fn samples_single_value_is_every_percentile() {
        let s = Samples::from_values(&[7.25]);
        assert_eq!(s.percentile(0.0), 7.25);
        assert_eq!(s.percentile(0.5), 7.25);
        assert_eq!(s.percentile(0.99), 7.25);
        assert_eq!(s.percentile(1.0), 7.25);
    }

    #[test]
    fn samples_all_equal_yields_that_value() {
        let s = Samples::from_values(&[3.0; 17]);
        assert_eq!(s.p50_p90_p99(), (3.0, 3.0, 3.0));
    }

    #[test]
    fn samples_nearest_rank_on_known_population() {
        // 1..=100: nearest-rank p50 = 50th smallest = 50, p90 = 90, p99 = 99.
        let values: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let s = Samples::from_values(&values);
        assert_eq!(s.percentile(0.50), 50.0);
        assert_eq!(s.percentile(0.90), 90.0);
        assert_eq!(s.percentile(0.99), 99.0);
        assert_eq!(s.percentile(1.0), 100.0);
        // Quantiles are clamped, not extrapolated.
        assert_eq!(s.percentile(-0.5), 1.0);
        assert_eq!(s.percentile(2.0), 100.0);
    }

    #[test]
    fn samples_ignore_non_finite_and_accept_unsorted_input() {
        let s = Samples::from_values(&[5.0, f64::NAN, 1.0, f64::INFINITY, 3.0]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.percentile(1.0), 5.0);
        assert_eq!(s.percentile(0.0), 1.0);
    }

    #[test]
    fn samples_percentiles_are_monotone_under_seeded_inputs() {
        // Always-on seeded variant of the proptest property in
        // tests/props.rs: p50 ≤ p90 ≤ p99 and each percentile is an
        // observed value, for a spread of pseudo-random populations.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..64 {
            let n = (next() % 200 + 1) as usize;
            let values: Vec<f64> = (0..n).map(|_| (next() % 10_000) as f64 / 8.0).collect();
            let s = Samples::from_values(&values);
            let (p50, p90, p99) = s.p50_p90_p99();
            assert!(p50 <= p90 && p90 <= p99, "round {round}: {p50} {p90} {p99}");
            for p in [p50, p90, p99] {
                assert!(values.contains(&p), "round {round}: {p} not observed");
            }
        }
    }

    #[test]
    fn stage_timer_nesting_builds_paths() {
        let mut t = StageTimer::new();
        t.start("map");
        t.start("filter");
        assert_eq!(t.open_depth(), 2);
        t.stop();
        t.time("verify", |t| {
            t.start("myers");
            t.stop();
        });
        t.stop();
        assert_eq!(t.open_depth(), 0);
        let paths: Vec<&str> = t.stages().iter().map(|(p, _, _)| p.as_str()).collect();
        assert_eq!(
            paths,
            vec!["map/filter", "map/verify/myers", "map/verify", "map"]
        );
        // Re-entering a stage accumulates rather than duplicating.
        t.start("map");
        t.stop();
        let map = t.stages().iter().find(|(p, _, _)| p == "map").unwrap();
        assert_eq!(map.2, 2);
        assert_eq!(t.stages().len(), 4);
    }

    #[test]
    #[should_panic(expected = "no stage open")]
    fn stage_timer_stop_without_start_panics() {
        StageTimer::new().stop();
    }

    #[test]
    fn collecting_sink_aggregates() {
        let sink = CollectingSink::new();
        assert!(sink.enabled());
        let m = MapMetrics {
            candidates_merged: 3,
            hits: 1,
            ..MapMetrics::new()
        };
        sink.record_read(0, &m);
        sink.record_read(1, &m);
        sink.add("batches", 2);
        sink.observe("batch_items", 64);
        let got = sink.into_collected();
        assert_eq!(got.reads, 2);
        assert_eq!(got.totals.candidates_merged, 6);
        assert_eq!(got.counters[0].0, "batches");
        assert_eq!(got.counters[0].1.get(), 2);
        let hist = got
            .histograms
            .iter()
            .find(|(n, _)| n == "candidates_merged_per_read")
            .expect("built-in histogram");
        assert_eq!(hist.1.count(), 2);
    }

    #[test]
    fn noop_sink_is_disabled() {
        let sink = NoopSink;
        assert!(!sink.enabled());
        sink.record_read(0, &MapMetrics::new());
        sink.add("x", 1);
        sink.observe("y", 2);
    }
}
