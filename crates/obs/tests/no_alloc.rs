//! Proves the disabled-telemetry path is allocation-free.
//!
//! The per-read hot path with metrics off consists of stack-only
//! `MapMetrics` arithmetic plus virtual calls into [`NoopSink`]. A
//! counting global allocator asserts that none of it touches the heap —
//! the acceptance bar for threading instrumentation through the mapper.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

use repute_obs::{Counter, Histogram, MapMetrics, MetricsSink, NoopSink};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

#[test]
fn disabled_per_read_instrumentation_never_allocates() {
    let sink: &dyn MetricsSink = &NoopSink;
    let allocs = allocations_during(|| {
        for read_id in 0..10_000u64 {
            // The exact operations the mapper core performs per read when
            // telemetry is threaded through but disabled.
            let mut m = MapMetrics::new();
            m.seeds_selected += 3;
            m.fm_extend_ops += 120;
            m.fm_locate_ops += 40;
            m.candidates_raw += 55;
            m.candidates_merged += 12;
            m.dp_cells += 900;
            m.verifications += 12;
            m.word_updates += 1_400;
            m.hits += 1;
            let mut pair_total = MapMetrics::new();
            pair_total.merge(black_box(&m));
            if sink.enabled() {
                sink.record_read(read_id, &pair_total);
            }
            sink.add("reads", 1);
            sink.observe("hits_per_read", pair_total.hits);
            black_box(&pair_total);
        }
    });
    assert_eq!(allocs, 0, "disabled metrics path allocated");
}

#[test]
fn counter_and_histogram_recording_never_allocates() {
    let mut counter = Counter::new();
    let mut hist = Histogram::new();
    let allocs = allocations_during(|| {
        for v in 0..10_000u64 {
            counter.increment();
            hist.record(black_box(v * 37));
        }
    });
    assert_eq!(allocs, 0, "counter/histogram recording allocated");
    assert_eq!(counter.get(), 10_000);
    assert_eq!(hist.count(), 10_000);
}
