//! CIGAR alignment descriptions.
//!
//! The paper's REPUTE "currently does not produce the CIGAR string" and
//! lists it as future work (§IV). This reproduction implements it as an
//! extension: the DP traceback in [`crate::dp::semi_global_with_cigar`]
//! emits a [`Cigar`], and the SAM writer in the evaluation crate consumes
//! it.

use std::fmt;

/// One alignment operation, SAM-style with distinct `=`/`X`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CigarOp {
    /// Bases identical (`=`).
    Match,
    /// Bases aligned but different (`X`).
    Mismatch,
    /// Pattern base not present in the text (`I`).
    Insertion,
    /// Text base not present in the pattern (`D`).
    Deletion,
}

impl CigarOp {
    /// The SAM character for this operation.
    pub const fn symbol(self) -> char {
        match self {
            CigarOp::Match => '=',
            CigarOp::Mismatch => 'X',
            CigarOp::Insertion => 'I',
            CigarOp::Deletion => 'D',
        }
    }

    /// Whether this operation consumes a pattern (read) base.
    pub const fn consumes_pattern(self) -> bool {
        !matches!(self, CigarOp::Deletion)
    }

    /// Whether this operation consumes a text (reference) base.
    pub const fn consumes_text(self) -> bool {
        !matches!(self, CigarOp::Insertion)
    }

    /// Whether this operation contributes to the edit distance.
    pub const fn is_edit(self) -> bool {
        !matches!(self, CigarOp::Match)
    }
}

/// A run-length encoded edit script.
///
/// # Example
///
/// ```
/// use repute_align::{Cigar, CigarOp};
///
/// let cigar = Cigar::from_ops([
///     CigarOp::Match,
///     CigarOp::Match,
///     CigarOp::Mismatch,
///     CigarOp::Match,
/// ]);
/// assert_eq!(cigar.to_string(), "2=1X1=");
/// assert_eq!(cigar.edit_distance(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Cigar {
    runs: Vec<(u32, CigarOp)>,
}

impl Cigar {
    /// Builds a CIGAR from a sequence of single operations, run-length
    /// encoding adjacent repeats.
    pub fn from_ops<I: IntoIterator<Item = CigarOp>>(ops: I) -> Cigar {
        let mut runs: Vec<(u32, CigarOp)> = Vec::new();
        for op in ops {
            match runs.last_mut() {
                Some((count, last)) if *last == op => *count += 1,
                _ => runs.push((1, op)),
            }
        }
        Cigar { runs }
    }

    /// The run-length encoded operations.
    pub fn runs(&self) -> &[(u32, CigarOp)] {
        &self.runs
    }

    /// Iterates over individual operations (runs expanded).
    pub fn iter(&self) -> impl Iterator<Item = CigarOp> + '_ {
        self.runs
            .iter()
            .flat_map(|&(count, op)| std::iter::repeat_n(op, count as usize))
    }

    /// Total edits (mismatches + insertions + deletions).
    pub fn edit_distance(&self) -> u32 {
        self.runs
            .iter()
            .filter(|(_, op)| op.is_edit())
            .map(|(count, _)| count)
            .sum()
    }

    /// Number of pattern (read) bases consumed.
    pub fn pattern_len(&self) -> usize {
        self.runs
            .iter()
            .filter(|(_, op)| op.consumes_pattern())
            .map(|&(count, _)| count as usize)
            .sum()
    }

    /// Number of text (reference) bases consumed.
    pub fn text_len(&self) -> usize {
        self.runs
            .iter()
            .filter(|(_, op)| op.consumes_text())
            .map(|&(count, _)| count as usize)
            .sum()
    }

    /// Returns `true` for an empty script.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }
}

impl fmt::Display for Cigar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.runs.is_empty() {
            return write!(f, "*");
        }
        for &(count, op) in &self.runs {
            write!(f, "{count}{}", op.symbol())?;
        }
        Ok(())
    }
}

impl FromIterator<CigarOp> for Cigar {
    fn from_iter<I: IntoIterator<Item = CigarOp>>(iter: I) -> Cigar {
        Cigar::from_ops(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_length_encoding_merges_adjacent() {
        let cigar = Cigar::from_ops([
            CigarOp::Match,
            CigarOp::Match,
            CigarOp::Insertion,
            CigarOp::Insertion,
            CigarOp::Match,
        ]);
        assert_eq!(cigar.runs().len(), 3);
        assert_eq!(cigar.to_string(), "2=2I1=");
    }

    #[test]
    fn empty_cigar_displays_star() {
        assert_eq!(Cigar::default().to_string(), "*");
        assert!(Cigar::default().is_empty());
    }

    #[test]
    fn lengths_and_distance() {
        let cigar = Cigar::from_ops([
            CigarOp::Match,
            CigarOp::Mismatch,
            CigarOp::Deletion,
            CigarOp::Insertion,
        ]);
        assert_eq!(cigar.edit_distance(), 3);
        assert_eq!(cigar.pattern_len(), 3); // =, X, I
        assert_eq!(cigar.text_len(), 3); // =, X, D
    }

    #[test]
    fn iter_expands_runs() {
        let cigar = Cigar::from_ops([CigarOp::Match, CigarOp::Match, CigarOp::Deletion]);
        let ops: Vec<CigarOp> = cigar.iter().collect();
        assert_eq!(ops, vec![CigarOp::Match, CigarOp::Match, CigarOp::Deletion]);
    }

    #[test]
    fn collect_from_iterator() {
        let cigar: Cigar = [CigarOp::Match; 5].into_iter().collect();
        assert_eq!(cigar.to_string(), "5=");
    }

    #[test]
    fn op_properties() {
        assert!(CigarOp::Insertion.consumes_pattern());
        assert!(!CigarOp::Insertion.consumes_text());
        assert!(CigarOp::Deletion.consumes_text());
        assert!(!CigarOp::Deletion.consumes_pattern());
        assert!(!CigarOp::Match.is_edit());
        assert_eq!(CigarOp::Mismatch.symbol(), 'X');
    }
}
