//! Reference dynamic-programming alignments.
//!
//! These are the slow-but-obviously-correct implementations: the Myers
//! kernels are property-tested against them, and the traceback here is
//! what produces [`Cigar`] strings (CIGAR output is a §IV future-work item
//! of the paper, implemented as an extension in this reproduction).

use crate::cigar::{Cigar, CigarOp};

/// Global (Levenshtein) edit distance between two code sequences.
///
/// # Example
///
/// ```
/// use repute_align::dp::edit_distance;
///
/// assert_eq!(edit_distance(&[0, 1, 2], &[0, 2, 2]), 1);
/// assert_eq!(edit_distance(&[0, 1], &[0, 1]), 0);
/// assert_eq!(edit_distance(&[], &[1, 1]), 2);
/// ```
pub fn edit_distance(a: &[u8], b: &[u8]) -> u32 {
    let (m, n) = (a.len(), b.len());
    let mut prev: Vec<u32> = (0..=n as u32).collect();
    let mut cur = vec![0u32; n + 1];
    for i in 1..=m {
        cur[0] = i as u32;
        for j in 1..=n {
            let sub = prev[j - 1] + u32::from(a[i - 1] != b[j - 1]);
            cur[j] = sub.min(prev[j] + 1).min(cur[j - 1] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

/// Result of a semi-global alignment of a pattern against a text window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SemiGlobalHit {
    /// Best edit distance over all end positions.
    pub distance: u32,
    /// End position in the text (exclusive): the match covers
    /// `start..end` for some start.
    pub end: usize,
}

/// Semi-global alignment: the whole `pattern` against any substring of
/// `text` (free start and end in the text).
///
/// Returns the leftmost end position achieving the minimum distance, or
/// `None` for an empty pattern (which trivially matches everywhere).
pub fn semi_global(pattern: &[u8], text: &[u8]) -> Option<SemiGlobalHit> {
    if pattern.is_empty() {
        return None;
    }
    let (m, n) = (pattern.len(), text.len());
    // Column-by-column; row 0 is free (all zeros).
    let mut prev: Vec<u32> = (0..=m as u32).collect();
    let mut cur = vec![0u32; m + 1];
    let mut best = SemiGlobalHit {
        distance: m as u32, // empty-text column
        end: 0,
    };
    for j in 1..=n {
        cur[0] = 0;
        for i in 1..=m {
            let sub = prev[i - 1] + u32::from(pattern[i - 1] != text[j - 1]);
            cur[i] = sub.min(prev[i] + 1).min(cur[i - 1] + 1);
        }
        if cur[m] < best.distance {
            best = SemiGlobalHit {
                distance: cur[m],
                end: j,
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    Some(best)
}

/// Full semi-global alignment with traceback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Edit distance of the alignment.
    pub distance: u32,
    /// Start position of the match in the text (inclusive).
    pub start: usize,
    /// End position of the match in the text (exclusive).
    pub end: usize,
    /// Edit script from pattern to the matched text substring.
    pub cigar: Cigar,
}

/// Semi-global alignment with full traceback, producing a [`Cigar`].
///
/// O(m·n) time and memory; intended for reporting, not the hot path.
/// Returns `None` for an empty pattern.
pub fn semi_global_with_cigar(pattern: &[u8], text: &[u8]) -> Option<Alignment> {
    if pattern.is_empty() {
        return None;
    }
    let (m, n) = (pattern.len(), text.len());
    let width = n + 1;
    let mut dp = vec![0u32; (m + 1) * width];
    for i in 0..=m {
        dp[i * width] = i as u32;
    }
    // Row 0 stays zero: free start in text.
    for i in 1..=m {
        for j in 1..=n {
            let sub = dp[(i - 1) * width + (j - 1)] + u32::from(pattern[i - 1] != text[j - 1]);
            let del = dp[(i - 1) * width + j] + 1; // consume pattern base (deletion from text view)
            let ins = dp[i * width + (j - 1)] + 1; // consume text base
            dp[i * width + j] = sub.min(del).min(ins);
        }
    }
    // Best end in the last row.
    let mut end = 0usize;
    let mut distance = dp[m * width];
    for j in 1..=n {
        if dp[m * width + j] < distance {
            distance = dp[m * width + j];
            end = j;
        }
    }
    // Traceback.
    let mut ops: Vec<CigarOp> = Vec::with_capacity(m + distance as usize);
    let (mut i, mut j) = (m, end);
    while i > 0 {
        let here = dp[i * width + j];
        let diag = if j > 0 {
            Some(dp[(i - 1) * width + (j - 1)])
        } else {
            None
        };
        let up = dp[(i - 1) * width + j];
        let left = if j > 0 {
            Some(dp[i * width + (j - 1)])
        } else {
            None
        };
        if let Some(d) = diag {
            let matched = pattern[i - 1] == text[j - 1];
            if here == d + u32::from(!matched) {
                ops.push(if matched {
                    CigarOp::Match
                } else {
                    CigarOp::Mismatch
                });
                i -= 1;
                j -= 1;
                continue;
            }
        }
        if here == up + 1 {
            ops.push(CigarOp::Insertion); // pattern base absent from text
            i -= 1;
            continue;
        }
        if let Some(l) = left {
            if here == l + 1 {
                ops.push(CigarOp::Deletion); // text base absent from pattern
                j -= 1;
                continue;
            }
        }
        unreachable!("traceback stuck at ({i}, {j})");
    }
    ops.reverse();
    Some(Alignment {
        distance,
        start: j,
        end,
        cigar: Cigar::from_ops(ops),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance(&[], &[]), 0);
        assert_eq!(edit_distance(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(edit_distance(&[1, 2, 3], &[1, 3]), 1);
        assert_eq!(edit_distance(&[0, 0, 0], &[3, 3, 3]), 3);
    }

    #[test]
    fn edit_distance_symmetry() {
        let a = [0u8, 1, 2, 3, 0, 1];
        let b = [0u8, 2, 2, 3, 1];
        assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
    }

    #[test]
    fn semi_global_finds_embedded_pattern() {
        // pattern ACG in text TTACGTT
        let hit = semi_global(&[0, 1, 2], &[3, 3, 0, 1, 2, 3, 3]).unwrap();
        assert_eq!(hit.distance, 0);
        assert_eq!(hit.end, 5);
    }

    #[test]
    fn semi_global_with_one_error() {
        // pattern ACGT vs text with C->G substitution
        let hit = semi_global(&[0, 1, 2, 3], &[0, 2, 2, 3]).unwrap();
        assert_eq!(hit.distance, 1);
    }

    #[test]
    fn semi_global_empty_cases() {
        assert!(semi_global(&[], &[0, 1]).is_none());
        let hit = semi_global(&[0, 1], &[]).unwrap();
        assert_eq!(hit.distance, 2); // all deletions
    }

    #[test]
    fn semi_global_leftmost_end_preferred() {
        // pattern AC occurs at ends 2 and 4; leftmost (2) wins.
        let hit = semi_global(&[0, 1], &[0, 1, 0, 1]).unwrap();
        assert_eq!(hit.end, 2);
    }

    #[test]
    fn cigar_traceback_round_trip() {
        // pattern ACGT vs window TTACGTT: perfect match 2..6
        let aln = semi_global_with_cigar(&[0, 1, 2, 3], &[3, 3, 0, 1, 2, 3, 3]).unwrap();
        assert_eq!(aln.distance, 0);
        assert_eq!((aln.start, aln.end), (2, 6));
        assert_eq!(aln.cigar.to_string(), "4=");
    }

    #[test]
    fn cigar_with_mismatch_and_indel() {
        // pattern ACGT vs AGT (one deletion in text view)
        let aln = semi_global_with_cigar(&[0, 1, 2, 3], &[0, 2, 3]).unwrap();
        assert_eq!(aln.distance, 1);
        assert_eq!(aln.cigar.edit_distance(), 1);
        // pattern consumed fully
        assert_eq!(aln.cigar.pattern_len(), 4);
    }

    #[test]
    fn cigar_distance_matches_dp_distance() {
        let pattern = [0u8, 1, 2, 3, 3, 2, 1, 0, 1, 2];
        let text = [3u8, 0, 1, 2, 3, 2, 2, 1, 0, 1, 2, 3];
        let aln = semi_global_with_cigar(&pattern, &text).unwrap();
        let hit = semi_global(&pattern, &text).unwrap();
        assert_eq!(aln.distance, hit.distance);
        assert_eq!(aln.cigar.edit_distance(), aln.distance);
        assert_eq!(aln.cigar.pattern_len(), pattern.len());
        assert_eq!(aln.cigar.text_len(), aln.end - aln.start);
    }
}
