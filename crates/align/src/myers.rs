//! Myers' bit-vector algorithm for patterns up to 64 bases.
//!
//! This is "Myer's bit vector algorithm" from the paper's §II-A: a
//! semi-global edit-distance scan that processes one text character per
//! iteration using word-parallel bit operations — the reason verification
//! is cheap enough to run on every candidate location.

/// Maximum pattern length for the single-word kernel.
pub const MAX_PATTERN: usize = 64;

/// Per-base pattern match masks (`Peq`).
///
/// Precomputing the masks once per read amortises setup across the many
/// candidate windows a read is verified against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternMasks {
    peq: [u64; 4],
    len: usize,
}

impl PatternMasks {
    /// Builds match masks for a pattern of 2-bit base codes.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is empty, longer than [`MAX_PATTERN`], or
    /// contains a code above 3.
    pub fn new(pattern: &[u8]) -> PatternMasks {
        assert!(
            !pattern.is_empty() && pattern.len() <= MAX_PATTERN,
            "pattern length {} outside 1..={MAX_PATTERN}",
            pattern.len()
        );
        let mut peq = [0u64; 4];
        for (i, &c) in pattern.iter().enumerate() {
            assert!(c <= 3, "base code {c} out of range");
            peq[c as usize] |= 1u64 << i;
        }
        PatternMasks {
            peq,
            len: pattern.len(),
        }
    }

    /// Pattern length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `false` always (patterns cannot be empty), provided for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The per-base match masks, for the batch kernel's lane gather.
    pub(crate) fn peq(&self) -> &[u64; 4] {
        &self.peq
    }
}

/// Result of a semi-global Myers scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MyersHit {
    /// Best edit distance over all text end positions.
    pub distance: u32,
    /// Leftmost end position (exclusive) achieving that distance.
    pub end: usize,
}

/// Scans `text` for the best semi-global occurrence of the pattern.
///
/// Equivalent to [`crate::dp::semi_global`] but word-parallel. Returns the
/// minimum edit distance over all end positions and the leftmost position
/// achieving it; `max_distance` allows early rejection — if no end position
/// achieves a distance ≤ `max_distance`, `None` is returned.
///
/// # Example
///
/// ```
/// use repute_align::myers::{PatternMasks, search};
///
/// let masks = PatternMasks::new(&[0, 1, 2, 3]); // ACGT
/// let hit = search(&masks, &[3, 3, 0, 1, 2, 3, 3], 1).expect("found");
/// assert_eq!(hit.distance, 0);
/// assert_eq!(hit.end, 6);
/// ```
pub fn search(masks: &PatternMasks, text: &[u8], max_distance: u32) -> Option<MyersHit> {
    let m = masks.len;
    let high = 1u64 << (m - 1);
    let mut pv = !0u64;
    let mut mv = 0u64;
    let mut score = m as u32;
    let mut best: Option<MyersHit> = if score <= max_distance {
        Some(MyersHit {
            distance: score,
            end: 0,
        })
    } else {
        None
    };
    for (j, &c) in text.iter().enumerate() {
        debug_assert!(c <= 3, "base code out of range");
        let eq = masks.peq[(c & 3) as usize];
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let ph = mv | !(xh | pv);
        let mh = pv & xh;
        if ph & high != 0 {
            score += 1;
        } else if mh & high != 0 {
            score -= 1;
        }
        // Free start in the text: the top row stays zero, so no carry is
        // injected into the shifted horizontal deltas.
        let ph = ph << 1;
        let mh = mh << 1;
        pv = mh | !(xv | ph);
        mv = ph & xv;
        if score <= max_distance && best.is_none_or(|b| score < b.distance) {
            best = Some(MyersHit {
                distance: score,
                end: j + 1,
            });
        }
    }
    best
}

/// Convenience wrapper: best semi-global distance of `pattern` in `text`,
/// or `None` if it exceeds `max_distance`.
///
/// # Panics
///
/// Panics under the same conditions as [`PatternMasks::new`].
pub fn distance(pattern: &[u8], text: &[u8], max_distance: u32) -> Option<u32> {
    let masks = PatternMasks::new(pattern);
    search(&masks, text, max_distance).map(|h| h.distance)
}

/// Like [`search`], recording the scan into a [`repute_obs::MapMetrics`]
/// record: one verification, one bit-vector word update per text column
/// (the single-word kernel advances exactly one word per character), and a
/// hit when an occurrence within `max_distance` exists.
pub fn search_metered(
    masks: &PatternMasks,
    text: &[u8],
    max_distance: u32,
    metrics: &mut repute_obs::MapMetrics,
) -> Option<MyersHit> {
    metrics.verifications += 1;
    metrics.word_updates += text.len() as u64;
    let hit = search(masks, text, max_distance);
    metrics.hits += u64::from(hit.is_some());
    hit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp;
    use repute_genome::rng::StdRng;

    #[test]
    fn exact_match_inside_text() {
        let masks = PatternMasks::new(&[0, 1, 2]);
        let hit = search(&masks, &[3, 0, 1, 2, 3], 0).unwrap();
        assert_eq!(hit.distance, 0);
        assert_eq!(hit.end, 4);
    }

    #[test]
    fn rejects_beyond_max_distance() {
        let masks = PatternMasks::new(&[0, 0, 0, 0]);
        assert!(search(&masks, &[3, 3, 3, 3], 2).is_none());
        assert!(search(&masks, &[3, 3, 3, 3], 4).is_some());
    }

    #[test]
    fn empty_text_costs_full_pattern() {
        let masks = PatternMasks::new(&[0, 1]);
        let hit = search(&masks, &[], 2).unwrap();
        assert_eq!(hit.distance, 2);
        assert!(search(&masks, &[], 1).is_none());
    }

    #[test]
    fn agrees_with_dp_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..300 {
            let m = rng.gen_range(1..=64usize);
            let n = rng.gen_range(0..=120usize);
            let pattern: Vec<u8> = (0..m).map(|_| rng.gen_range(0..4)).collect();
            let text: Vec<u8> = (0..n).map(|_| rng.gen_range(0..4)).collect();
            let expected = dp::semi_global(&pattern, &text).unwrap();
            let masks = PatternMasks::new(&pattern);
            let got = search(&masks, &text, m as u32).expect("within m errors always");
            assert_eq!(got.distance, expected.distance, "m={m} n={n}");
            assert_eq!(got.end, expected.end, "m={m} n={n} leftmost end");
        }
    }

    #[test]
    fn distance_convenience() {
        assert_eq!(distance(&[0, 1, 2, 3], &[0, 1, 2, 3], 0), Some(0));
        assert_eq!(distance(&[0, 1, 2, 3], &[0, 1, 3, 3], 1), Some(1));
        assert_eq!(distance(&[0, 1, 2, 3], &[2; 4], 1), None);
    }

    #[test]
    fn boundary_pattern_length_64() {
        let pattern: Vec<u8> = (0..64).map(|i| (i % 4) as u8).collect();
        let mut text = vec![3u8, 3];
        text.extend_from_slice(&pattern);
        text.push(0);
        let masks = PatternMasks::new(&pattern);
        let hit = search(&masks, &text, 0).unwrap();
        assert_eq!(hit.distance, 0);
        assert_eq!(hit.end, 66);
    }

    #[test]
    #[should_panic(expected = "outside 1..=")]
    fn oversized_pattern_rejected() {
        let _ = PatternMasks::new(&[0u8; 65]);
    }

    #[test]
    #[should_panic(expected = "outside 1..=")]
    fn empty_pattern_rejected() {
        let _ = PatternMasks::new(&[]);
    }
}
