//! Ukkonen banded edit-distance verification.
//!
//! When a candidate location pins the read to a diagonal, cells further
//! than the error budget from that diagonal can never participate in an
//! alignment within budget. Restricting the DP to a band of `2k+1`
//! diagonals (Ukkonen 1985) turns verification into O(k·n) — the classic
//! alternative to the bit-vector kernel, and the cheaper choice for very
//! small budgets. Provided alongside [`crate::myers`] so the benches can
//! compare the two (the paper's §II-A picks Myers as "one of the
//! fastest"; the microbenches let the claim be checked).

/// Sentinel for cells outside the band.
const INF: u32 = u32::MAX / 2;

/// Banded global edit distance between `pattern` and `text`, or `None`
/// if it exceeds `k`.
///
/// # Example
///
/// ```
/// use repute_align::banded::banded_distance;
///
/// assert_eq!(banded_distance(&[0, 1, 2, 3], &[0, 1, 3, 3], 2), Some(1));
/// assert_eq!(banded_distance(&[0, 0, 0], &[3, 3, 3], 2), None);
/// assert_eq!(banded_distance(&[], &[1, 1], 2), Some(2));
/// ```
#[allow(clippy::needless_range_loop)] // band-slot arithmetic reads clearer indexed
pub fn banded_distance(pattern: &[u8], text: &[u8], k: u32) -> Option<u32> {
    let (m, n) = (pattern.len(), text.len());
    let k = k as usize;
    if m.abs_diff(n) > k {
        return None; // length difference alone exceeds the budget
    }
    let width = 2 * k + 1;
    // row[b] = dp[i][j] with j = i − k + b; cells off the band are INF.
    let mut prev = vec![INF; width];
    let mut cur = vec![INF; width];
    // Row 0: dp[0][j] = j for j ∈ [0, k].
    for b in 0..width {
        let j = b as isize - k as isize;
        if (0..=n as isize).contains(&j) {
            prev[b] = j as u32;
        }
    }
    for i in 1..=m {
        for b in 0..width {
            let j = i as isize - k as isize + b as isize;
            cur[b] = INF;
            if j < 0 || j > n as isize {
                continue;
            }
            let j = j as usize;
            if j == 0 {
                cur[b] = i as u32;
                continue;
            }
            // dp[i-1][j-1] is the same band slot in the previous row;
            // dp[i-1][j] one slot right; dp[i][j-1] one slot left.
            let diag = prev[b];
            let up = prev.get(b + 1).copied().unwrap_or(INF);
            let left = if b > 0 { cur[b - 1] } else { INF };
            let cost = u32::from(pattern[i - 1] != text[j - 1]);
            cur[b] = diag
                .saturating_add(cost)
                .min(up.saturating_add(1))
                .min(left.saturating_add(1));
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    // dp[m][n] sits at band slot n − m + k.
    let b = (n as isize - m as isize + k as isize) as usize;
    let d = prev[b];
    (d <= k as u32).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::edit_distance;
    use repute_genome::rng::StdRng;

    #[test]
    fn basics() {
        assert_eq!(banded_distance(&[], &[], 0), Some(0));
        assert_eq!(banded_distance(&[1], &[1], 0), Some(0));
        assert_eq!(banded_distance(&[1], &[2], 0), None);
        assert_eq!(banded_distance(&[1], &[2], 1), Some(1));
        assert_eq!(banded_distance(&[1, 2, 3], &[1, 3], 1), Some(1));
    }

    #[test]
    fn agrees_with_full_dp_within_budget() {
        let mut rng = StdRng::seed_from_u64(71);
        for _ in 0..300 {
            let m = rng.gen_range(0..60usize);
            let n = rng.gen_range(0..60usize);
            let a: Vec<u8> = (0..m).map(|_| rng.gen_range(0..4)).collect();
            let b: Vec<u8> = (0..n).map(|_| rng.gen_range(0..4)).collect();
            let exact = edit_distance(&a, &b);
            for k in [0u32, 1, 3, 7, 60] {
                let banded = banded_distance(&a, &b, k);
                if exact <= k {
                    assert_eq!(banded, Some(exact), "k={k} a={a:?} b={b:?}");
                } else {
                    assert_eq!(banded, None, "k={k} should reject distance {exact}");
                }
            }
        }
    }

    #[test]
    fn length_gap_short_circuits() {
        let a = vec![0u8; 50];
        let b = vec![0u8; 10];
        assert_eq!(banded_distance(&a, &b, 5), None);
        assert_eq!(banded_distance(&a, &b, 40), Some(40));
    }
}
