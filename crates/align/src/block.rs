//! Blocked Myers bit-vector algorithm for patterns of any length.
//!
//! Reads in the paper are 100–150 bases, which does not fit the single
//! 64-bit word of [`crate::myers`]; the blocked extension (Hyyrö 2003)
//! chains the carry between ⌈m/64⌉ words per text column. The paper's
//! hardware/software co-design keeps exactly this kernel small enough for
//! GPU private memory; here the same structure keeps the inner loop
//! allocation-free.

const WORD: usize = 64;

/// Per-base match masks for a pattern of arbitrary length, split into
/// 64-base blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMasks {
    /// `peq[base][block]`.
    peq: [Vec<u64>; 4],
    len: usize,
    blocks: usize,
    /// Bit position of the last pattern row within the final block.
    last_bit: u32,
}

impl BlockMasks {
    /// Builds blocked match masks.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is empty or contains a code above 3.
    pub fn new(pattern: &[u8]) -> BlockMasks {
        assert!(!pattern.is_empty(), "pattern must not be empty");
        let blocks = pattern.len().div_ceil(WORD);
        let mut peq = [
            vec![0u64; blocks],
            vec![0u64; blocks],
            vec![0u64; blocks],
            vec![0u64; blocks],
        ];
        for (i, &c) in pattern.iter().enumerate() {
            assert!(c <= 3, "base code {c} out of range");
            peq[c as usize][i / WORD] |= 1u64 << (i % WORD);
        }
        // Rows past the pattern end in the final block never match; the
        // Myers recurrence only propagates information toward higher bits
        // (carries and shifts move upward), so those junk rows cannot
        // contaminate the tracked pattern rows below them.
        BlockMasks {
            peq,
            len: pattern.len(),
            blocks,
            last_bit: ((pattern.len() - 1) % WORD) as u32,
        }
    }

    /// Pattern length in bases.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `false` always (patterns cannot be empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of 64-base blocks.
    pub fn blocks(&self) -> usize {
        self.blocks
    }
}

/// Result of a blocked semi-global scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockHit {
    /// Best edit distance over all end positions.
    pub distance: u32,
    /// Leftmost end position (exclusive) achieving that distance.
    pub end: usize,
}

/// Reusable working memory for [`search_with`]; one instance per thread
/// avoids reallocation across the millions of verifications a mapping run
/// performs (the "low memory footprint kernel" concern of the paper).
#[derive(Debug, Clone, Default)]
pub struct BlockWork {
    pv: Vec<u64>,
    mv: Vec<u64>,
}

/// One column step for a single block (Hyyrö's `advance_block`).
///
/// `hin` is the horizontal delta entering the block top (−1, 0, +1).
/// Returns `(hout, ph, mh)` where `hout` is the delta leaving the block
/// bottom and `ph`/`mh` are the *pre-shift* horizontal delta vectors (bit
/// `i` is the delta entering column-cell of pattern row `i`).
#[inline]
fn advance_block(pv: &mut u64, mv: &mut u64, eq: u64, hin: i32) -> (i32, u64, u64) {
    let mut eq = eq;
    if hin < 0 {
        eq |= 1;
    }
    let xv = eq | *mv;
    let xh = (((eq & *pv).wrapping_add(*pv)) ^ *pv) | eq;
    let ph = *mv | !(xh | *pv);
    let mh = *pv & xh;
    let mut hout = 0i32;
    if ph & (1 << (WORD - 1)) != 0 {
        hout += 1;
    }
    if mh & (1 << (WORD - 1)) != 0 {
        hout -= 1;
    }
    let mut ph_shift = ph << 1;
    let mut mh_shift = mh << 1;
    if hin < 0 {
        mh_shift |= 1;
    } else if hin > 0 {
        ph_shift |= 1;
    }
    *pv = mh_shift | !(xv | ph_shift);
    *mv = ph_shift & xv;
    (hout, ph, mh)
}

/// Semi-global scan with caller-provided working memory.
///
/// Returns the minimum distance ≤ `max_distance` over all text end
/// positions, with the leftmost end achieving it, or `None`.
#[allow(clippy::needless_range_loop)] // per-block state is indexed in lockstep
pub fn search_with(
    masks: &BlockMasks,
    text: &[u8],
    max_distance: u32,
    work: &mut BlockWork,
) -> Option<BlockHit> {
    let blocks = masks.blocks;
    work.pv.clear();
    work.pv.resize(blocks, !0u64);
    work.mv.clear();
    work.mv.resize(blocks, 0u64);
    // Score of the bottom *pattern* row (bit `last_bit` of the last block).
    let mut score = masks.len as u32;
    let last_mask = 1u64 << masks.last_bit;
    let mut best: Option<BlockHit> = if score <= max_distance {
        Some(BlockHit {
            distance: score,
            end: 0,
        })
    } else {
        None
    };
    for (j, &c) in text.iter().enumerate() {
        debug_assert!(c <= 3, "base code out of range");
        let peq = &masks.peq[(c & 3) as usize];
        let mut hin = 0i32; // free start: top row is all zeros
        let mut last_ph = 0u64;
        let mut last_mh = 0u64;
        for b in 0..blocks {
            let (hout, ph, mh) = advance_block(&mut work.pv[b], &mut work.mv[b], peq[b], hin);
            hin = hout;
            if b == blocks - 1 {
                last_ph = ph;
                last_mh = mh;
            }
        }
        if last_ph & last_mask != 0 {
            score += 1;
        } else if last_mh & last_mask != 0 {
            score -= 1;
        }
        if score <= max_distance && best.is_none_or(|b| score < b.distance) {
            best = Some(BlockHit {
                distance: score,
                end: j + 1,
            });
        }
    }
    best
}

/// Semi-global scan allocating its own working memory.
///
/// See [`search_with`] for reuse across calls.
pub fn search(masks: &BlockMasks, text: &[u8], max_distance: u32) -> Option<BlockHit> {
    let mut work = BlockWork::default();
    search_with(masks, text, max_distance, &mut work)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp;
    use repute_genome::rng::StdRng;

    #[test]
    fn matches_single_word_behaviour_for_short_patterns() {
        let pattern = [0u8, 1, 2, 3];
        let text = [3u8, 3, 0, 1, 2, 3, 3];
        let masks = BlockMasks::new(&pattern);
        let hit = search(&masks, &text, 1).unwrap();
        assert_eq!(hit.distance, 0);
        assert_eq!(hit.end, 6);
    }

    #[test]
    fn agrees_with_dp_across_block_boundaries() {
        let mut rng = StdRng::seed_from_u64(53);
        for m in [1usize, 63, 64, 65, 100, 127, 128, 129, 150, 200] {
            for _ in 0..8 {
                let n = rng.gen_range(0..=(m * 2 + 20));
                let pattern: Vec<u8> = (0..m).map(|_| rng.gen_range(0..4)).collect();
                let text: Vec<u8> = (0..n).map(|_| rng.gen_range(0..4)).collect();
                let expected = dp::semi_global(&pattern, &text).unwrap();
                let masks = BlockMasks::new(&pattern);
                let got = search(&masks, &text, m as u32).expect("within m errors");
                assert_eq!(got.distance, expected.distance, "m={m} n={n}");
                assert_eq!(got.end, expected.end, "m={m} n={n}");
            }
        }
    }

    #[test]
    fn read_length_150_with_errors() {
        let mut rng = StdRng::seed_from_u64(54);
        let read: Vec<u8> = (0..150).map(|_| rng.gen_range(0..4)).collect();
        // Embed the read with 3 substitutions.
        let mut window = vec![2u8; 10];
        let mut mutated = read.clone();
        for pos in [10usize, 80, 140] {
            mutated[pos] ^= 1;
        }
        window.extend_from_slice(&mutated);
        window.extend_from_slice(&[1u8; 10]);
        let masks = BlockMasks::new(&read);
        let hit = search(&masks, &window, 5).unwrap();
        assert_eq!(hit.distance, 3);
        assert!(search(&masks, &window, 2).is_none());
    }

    #[test]
    fn max_distance_zero_finds_exact_only() {
        let pattern: Vec<u8> = (0..100).map(|i| (i % 4) as u8).collect();
        let mut text = vec![3u8; 5];
        text.extend_from_slice(&pattern);
        let masks = BlockMasks::new(&pattern);
        let hit = search(&masks, &text, 0).unwrap();
        assert_eq!(hit.distance, 0);
        assert_eq!(hit.end, 105);
    }

    #[test]
    fn work_reuse_is_equivalent() {
        let mut rng = StdRng::seed_from_u64(55);
        let mut work = BlockWork::default();
        for _ in 0..20 {
            let m = rng.gen_range(60..=140usize);
            let pattern: Vec<u8> = (0..m).map(|_| rng.gen_range(0..4)).collect();
            let text: Vec<u8> = (0..200).map(|_| rng.gen_range(0..4)).collect();
            let masks = BlockMasks::new(&pattern);
            let fresh = search(&masks, &text, m as u32);
            let reused = search_with(&masks, &text, m as u32, &mut work);
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn block_count() {
        assert_eq!(BlockMasks::new(&[0; 64]).blocks(), 1);
        assert_eq!(BlockMasks::new(&[0; 65]).blocks(), 2);
        assert_eq!(BlockMasks::new(&[0; 150]).blocks(), 3);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_pattern_rejected() {
        let _ = BlockMasks::new(&[]);
    }
}
