//! Blocked Myers bit-vector algorithm for patterns of any length.
//!
//! Reads in the paper are 100–150 bases, which does not fit the single
//! 64-bit word of [`crate::myers`]; the blocked extension (Hyyrö 2003)
//! chains the carry between ⌈m/64⌉ words per text column. The paper's
//! hardware/software co-design keeps exactly this kernel small enough for
//! GPU private memory; here the same structure keeps the inner loop
//! allocation-free.

const WORD: usize = 64;

/// Per-base match masks for a pattern of arbitrary length, split into
/// 64-base blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMasks {
    /// `peq[base][block]`.
    peq: [Vec<u64>; 4],
    len: usize,
    blocks: usize,
    /// Bit position of the last pattern row within the final block.
    last_bit: u32,
}

impl BlockMasks {
    /// Builds blocked match masks.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is empty or contains a code above 3.
    pub fn new(pattern: &[u8]) -> BlockMasks {
        assert!(!pattern.is_empty(), "pattern must not be empty");
        let blocks = pattern.len().div_ceil(WORD);
        let mut peq = [
            vec![0u64; blocks],
            vec![0u64; blocks],
            vec![0u64; blocks],
            vec![0u64; blocks],
        ];
        for (i, &c) in pattern.iter().enumerate() {
            assert!(c <= 3, "base code {c} out of range");
            peq[c as usize][i / WORD] |= 1u64 << (i % WORD);
        }
        // Rows past the pattern end in the final block never match; the
        // Myers recurrence only propagates information toward higher bits
        // (carries and shifts move upward), so those junk rows cannot
        // contaminate the tracked pattern rows below them.
        BlockMasks {
            peq,
            len: pattern.len(),
            blocks,
            last_bit: ((pattern.len() - 1) % WORD) as u32,
        }
    }

    /// Pattern length in bases.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `false` always (patterns cannot be empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of 64-base blocks.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// The per-base blocked match masks, for the batch kernel.
    pub(crate) fn peq(&self) -> &[Vec<u64>; 4] {
        &self.peq
    }

    /// Bit position of the last pattern row within the final block.
    pub(crate) fn last_bit(&self) -> u32 {
        self.last_bit
    }
}

/// Result of a blocked semi-global scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockHit {
    /// Best edit distance over all end positions.
    pub distance: u32,
    /// Leftmost end position (exclusive) achieving that distance.
    pub end: usize,
}

/// Reusable working memory for [`search_with`]; one instance per thread
/// avoids reallocation across the millions of verifications a mapping run
/// performs (the "low memory footprint kernel" concern of the paper).
///
/// Each call also records the number of `advance_block` steps it actually
/// executed (readable via [`BlockWork::word_updates`]), which is what the
/// verification stage charges to the platform simulator — with the
/// Ukkonen band of [`search_with`] this is generally *less* than the
/// naive `columns × blocks` product.
#[derive(Debug, Clone, Default)]
pub struct BlockWork {
    pv: Vec<u64>,
    mv: Vec<u64>,
    updates: u64,
}

impl BlockWork {
    /// Number of 64-cell word updates (`advance_block` steps) executed by
    /// the most recent [`search_with`] call using this scratch. Reset at
    /// the start of every call.
    pub fn word_updates(&self) -> u64 {
        self.updates
    }
}

/// One column step for a single block (Hyyrö's `advance_block`).
///
/// `hin` is the horizontal delta entering the block top (−1, 0, +1).
/// Returns `(hout, ph, mh)` where `hout` is the delta leaving the block
/// bottom and `ph`/`mh` are the *pre-shift* horizontal delta vectors (bit
/// `i` is the delta entering column-cell of pattern row `i`).
#[inline]
pub(crate) fn advance_block(pv: &mut u64, mv: &mut u64, eq: u64, hin: i32) -> (i32, u64, u64) {
    let mut eq = eq;
    if hin < 0 {
        eq |= 1;
    }
    let xv = eq | *mv;
    let xh = (((eq & *pv).wrapping_add(*pv)) ^ *pv) | eq;
    let ph = *mv | !(xh | *pv);
    let mh = *pv & xh;
    let mut hout = 0i32;
    if ph & (1 << (WORD - 1)) != 0 {
        hout += 1;
    }
    if mh & (1 << (WORD - 1)) != 0 {
        hout -= 1;
    }
    let mut ph_shift = ph << 1;
    let mut mh_shift = mh << 1;
    if hin < 0 {
        mh_shift |= 1;
    } else if hin > 0 {
        ph_shift |= 1;
    }
    *pv = mh_shift | !(xv | ph_shift);
    *mv = ph_shift & xv;
    (hout, ph, mh)
}

/// Number of leading blocks the Ukkonen band computes for DP column
/// `column` (the number of text characters consumed so far) at error
/// budget `k`: every block whose first pattern row `64·b` satisfies
/// `64·b ≤ column + k`, capped at `blocks`.
///
/// Soundness of skipping the rest: `cell(i, c) ≥ i − c` (aligning `i`
/// pattern bases against at most `c` text bases needs ≥ `i − c` edits),
/// so every cell with true value ≤ `k` has `i ≤ c + k` and lies inside
/// the band. Skipped blocks keep their virgin `pv = !0, mv = 0` state —
/// a per-row `+1` delta, which *over*-estimates their true values — and
/// since the DP recurrence is monotone in its inputs, overestimates can
/// never pull an in-band cell below its true value, while the optimal
/// path of any cell with true value ≤ `k` runs entirely through in-band
/// (hence exactly computed) cells. Reported hits are therefore
/// bit-identical to the full computation.
#[inline]
pub(crate) fn band_blocks(blocks: usize, k: usize, column: usize) -> usize {
    ((column + k) / WORD + 1).min(blocks)
}

/// Semi-global scan with caller-provided working memory.
///
/// Returns the minimum distance ≤ `max_distance` over all text end
/// positions, with the leftmost end achieving it, or `None`. The scan is
/// banded (Ukkonen cutoff, see [`band_blocks`]): at column `c` only
/// blocks covering pattern rows ≤ `c + max_distance` are advanced, which
/// skips most of the early columns' lower blocks for realistic
/// `read ≫ 64, δ ≪ 64` verification calls without changing any result.
/// The number of block updates actually executed is recorded in
/// `work` ([`BlockWork::word_updates`]).
#[allow(clippy::needless_range_loop)] // per-block state is indexed in lockstep
pub fn search_with(
    masks: &BlockMasks,
    text: &[u8],
    max_distance: u32,
    work: &mut BlockWork,
) -> Option<BlockHit> {
    let blocks = masks.blocks;
    let m = masks.len;
    let k = max_distance as usize;
    work.pv.clear();
    work.pv.resize(blocks, !0u64);
    work.mv.clear();
    work.mv.resize(blocks, 0u64);
    work.updates = 0;
    let last_mask = 1u64 << masks.last_bit;
    // Initially active band at column 0 (cell(i, 0) = i + 1, the virgin
    // state, is exact everywhere, so the initial cut is free).
    let mut active = band_blocks(blocks, k, 0);
    // When `active < blocks`: represented value at the bottom row of the
    // last active block (row `64·active − 1`), i.e. `64·active` at column
    // 0. When `active == blocks`: `score` is the represented value of the
    // bottom *pattern* row (bit `last_bit` of the last block).
    let mut border = (active * WORD) as u32;
    let mut score = m as u32;
    let mut best: Option<BlockHit> = if (m as u32) <= max_distance {
        // m ≤ k forces active == blocks, so `score` is live here.
        Some(BlockHit {
            distance: m as u32,
            end: 0,
        })
    } else {
        None
    };
    for (j, &c) in text.iter().enumerate() {
        debug_assert!(c <= 3, "base code out of range");
        // Grow the band before producing column j + 1: newly activated
        // blocks start from their virgin state, whose represented values
        // continue the border with +1 per row.
        let needed = band_blocks(blocks, k, j + 1);
        while active < needed {
            active += 1;
            if active == blocks {
                score = border + (m - (active - 1) * WORD) as u32;
            } else {
                border += WORD as u32;
            }
        }
        let peq = &masks.peq[(c & 3) as usize];
        let mut hin = 0i32; // free start: top row is all zeros
        let mut last_ph = 0u64;
        let mut last_mh = 0u64;
        for b in 0..active {
            let (hout, ph, mh) = advance_block(&mut work.pv[b], &mut work.mv[b], peq[b], hin);
            hin = hout;
            if b + 1 == active {
                last_ph = ph;
                last_mh = mh;
            }
        }
        work.updates += active as u64;
        if active == blocks {
            if last_ph & last_mask != 0 {
                score += 1;
            } else if last_mh & last_mask != 0 {
                score -= 1;
            }
            if score <= max_distance && best.is_none_or(|b| score < b.distance) {
                best = Some(BlockHit {
                    distance: score,
                    end: j + 1,
                });
            }
        } else {
            // Track the border down the last active block's bottom row.
            border = border.wrapping_add_signed(hin);
        }
    }
    best
}

/// Semi-global scan allocating its own working memory.
///
/// See [`search_with`] for reuse across calls.
pub fn search(masks: &BlockMasks, text: &[u8], max_distance: u32) -> Option<BlockHit> {
    let mut work = BlockWork::default();
    search_with(masks, text, max_distance, &mut work)
}

/// The unbanded kernel: every block advanced on every column, exactly
/// the verification stage before the Ukkonen band landed. Retained as
/// the differential oracle for [`search_with`]'s band (same results,
/// strictly more work) and as the benchmark baseline the batch SWAR
/// path is measured against. `work` records the full
/// `columns × blocks` update count.
#[allow(clippy::needless_range_loop)] // per-block state is indexed in lockstep
pub fn search_full(
    masks: &BlockMasks,
    text: &[u8],
    max_distance: u32,
    work: &mut BlockWork,
) -> Option<BlockHit> {
    let blocks = masks.blocks;
    let m = masks.len;
    work.pv.clear();
    work.pv.resize(blocks, !0u64);
    work.mv.clear();
    work.mv.resize(blocks, 0u64);
    work.updates = 0;
    let last_mask = 1u64 << masks.last_bit;
    let mut score = m as u32;
    let mut best: Option<BlockHit> = if score <= max_distance {
        Some(BlockHit {
            distance: score,
            end: 0,
        })
    } else {
        None
    };
    for (j, &c) in text.iter().enumerate() {
        debug_assert!(c <= 3, "base code out of range");
        let peq = &masks.peq[(c & 3) as usize];
        let mut hin = 0i32; // free start: top row is all zeros
        let mut last_ph = 0u64;
        let mut last_mh = 0u64;
        for b in 0..blocks {
            let (hout, ph, mh) = advance_block(&mut work.pv[b], &mut work.mv[b], peq[b], hin);
            hin = hout;
            if b + 1 == blocks {
                last_ph = ph;
                last_mh = mh;
            }
        }
        work.updates += blocks as u64;
        if last_ph & last_mask != 0 {
            score += 1;
        } else if last_mh & last_mask != 0 {
            score -= 1;
        }
        if score <= max_distance && best.is_none_or(|b| score < b.distance) {
            best = Some(BlockHit {
                distance: score,
                end: j + 1,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp;
    use repute_genome::rng::StdRng;

    #[test]
    fn matches_single_word_behaviour_for_short_patterns() {
        let pattern = [0u8, 1, 2, 3];
        let text = [3u8, 3, 0, 1, 2, 3, 3];
        let masks = BlockMasks::new(&pattern);
        let hit = search(&masks, &text, 1).unwrap();
        assert_eq!(hit.distance, 0);
        assert_eq!(hit.end, 6);
    }

    #[test]
    fn agrees_with_dp_across_block_boundaries() {
        let mut rng = StdRng::seed_from_u64(53);
        for m in [1usize, 63, 64, 65, 100, 127, 128, 129, 150, 200] {
            for _ in 0..8 {
                let n = rng.gen_range(0..=(m * 2 + 20));
                let pattern: Vec<u8> = (0..m).map(|_| rng.gen_range(0..4)).collect();
                let text: Vec<u8> = (0..n).map(|_| rng.gen_range(0..4)).collect();
                let expected = dp::semi_global(&pattern, &text).unwrap();
                let masks = BlockMasks::new(&pattern);
                let got = search(&masks, &text, m as u32).expect("within m errors");
                assert_eq!(got.distance, expected.distance, "m={m} n={n}");
                assert_eq!(got.end, expected.end, "m={m} n={n}");
            }
        }
    }

    #[test]
    fn read_length_150_with_errors() {
        let mut rng = StdRng::seed_from_u64(54);
        let read: Vec<u8> = (0..150).map(|_| rng.gen_range(0..4)).collect();
        // Embed the read with 3 substitutions.
        let mut window = vec![2u8; 10];
        let mut mutated = read.clone();
        for pos in [10usize, 80, 140] {
            mutated[pos] ^= 1;
        }
        window.extend_from_slice(&mutated);
        window.extend_from_slice(&[1u8; 10]);
        let masks = BlockMasks::new(&read);
        let hit = search(&masks, &window, 5).unwrap();
        assert_eq!(hit.distance, 3);
        assert!(search(&masks, &window, 2).is_none());
    }

    #[test]
    fn max_distance_zero_finds_exact_only() {
        let pattern: Vec<u8> = (0..100).map(|i| (i % 4) as u8).collect();
        let mut text = vec![3u8; 5];
        text.extend_from_slice(&pattern);
        let masks = BlockMasks::new(&pattern);
        let hit = search(&masks, &text, 0).unwrap();
        assert_eq!(hit.distance, 0);
        assert_eq!(hit.end, 105);
    }

    #[test]
    fn work_reuse_is_equivalent() {
        let mut rng = StdRng::seed_from_u64(55);
        let mut work = BlockWork::default();
        for _ in 0..20 {
            let m = rng.gen_range(60..=140usize);
            let pattern: Vec<u8> = (0..m).map(|_| rng.gen_range(0..4)).collect();
            let text: Vec<u8> = (0..200).map(|_| rng.gen_range(0..4)).collect();
            let masks = BlockMasks::new(&pattern);
            let fresh = search(&masks, &text, m as u32);
            let reused = search_with(&masks, &text, m as u32, &mut work);
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn banded_small_k_agrees_with_dp() {
        // The Ukkonen band must not change any reported (distance, end),
        // including rejections, at realistic small error budgets.
        let mut rng = StdRng::seed_from_u64(56);
        for m in [65usize, 100, 128, 150, 200, 300] {
            for k in [0u32, 1, 3, 7, 15] {
                for _ in 0..6 {
                    let n = rng.gen_range(0..=(m + 40));
                    let pattern: Vec<u8> = (0..m).map(|_| rng.gen_range(0..4)).collect();
                    let mut text: Vec<u8> = (0..n).map(|_| rng.gen_range(0..4)).collect();
                    // Half the cases embed a mutated copy so accepts occur.
                    if n >= m && rng.gen_range(0..2) == 0 {
                        let at = rng.gen_range(0..=(n - m));
                        text[at..at + m].copy_from_slice(&pattern);
                        for _ in 0..rng.gen_range(0..=k) {
                            let p = at + rng.gen_range(0..m);
                            text[p] = (text[p] + rng.gen_range(1..4u8)) % 4;
                        }
                    }
                    let expected = dp::semi_global(&pattern, &text).unwrap();
                    let masks = BlockMasks::new(&pattern);
                    let got = search(&masks, &text, k);
                    if expected.distance <= k {
                        let got = got.expect("within budget must be found");
                        assert_eq!(got.distance, expected.distance, "m={m} n={n} k={k}");
                        assert_eq!(got.end, expected.end, "m={m} n={n} k={k}");
                    } else {
                        assert!(got.is_none(), "m={m} n={n} k={k}: {got:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn banded_agrees_with_unbanded_oracle() {
        let mut rng = StdRng::seed_from_u64(57);
        let mut banded_work = BlockWork::default();
        let mut full_work = BlockWork::default();
        for _ in 0..40 {
            let m = rng.gen_range(65..=220usize);
            let n = rng.gen_range(0..=(m + 60));
            let k = rng.gen_range(0..=16u32);
            let pattern: Vec<u8> = (0..m).map(|_| rng.gen_range(0..4)).collect();
            let mut text: Vec<u8> = (0..n).map(|_| rng.gen_range(0..4)).collect();
            if n >= m && rng.gen_range(0..2) == 0 {
                let at = rng.gen_range(0..=(n - m));
                text[at..at + m].copy_from_slice(&pattern);
                for _ in 0..rng.gen_range(0..=k) {
                    let p = at + rng.gen_range(0..m);
                    text[p] = (text[p] + rng.gen_range(1..4u8)) % 4;
                }
            }
            let masks = BlockMasks::new(&pattern);
            let banded = search_with(&masks, &text, k, &mut banded_work);
            let full = search_full(&masks, &text, k, &mut full_work);
            assert_eq!(banded, full, "m={m} n={n} k={k}");
            assert!(banded_work.word_updates() <= full_work.word_updates());
            assert_eq!(full_work.word_updates(), (n * masks.blocks()) as u64);
        }
    }

    #[test]
    fn band_records_and_reduces_work() {
        let pattern: Vec<u8> = (0..150).map(|i| (i % 4) as u8).collect();
        let text: Vec<u8> = (0..200).map(|i| ((i * 3) % 4) as u8).collect();
        let masks = BlockMasks::new(&pattern);
        let mut work = BlockWork::default();
        // Wide budget: band covers all 3 blocks from column 0.
        let _ = search_with(&masks, &text, 150, &mut work);
        assert_eq!(work.word_updates(), 200 * 3);
        // Narrow budget: block b only activates at column 64·b − k, so
        // the recorded work is the banded sum, not columns × blocks.
        let _ = search_with(&masks, &text, 7, &mut work);
        let expected: u64 = (1..=200u64).map(|col| ((col + 7) / 64 + 1).min(3)).sum();
        assert_eq!(work.word_updates(), expected);
        assert!(work.word_updates() < 200 * 3);
    }

    #[test]
    fn block_count() {
        assert_eq!(BlockMasks::new(&[0; 64]).blocks(), 1);
        assert_eq!(BlockMasks::new(&[0; 65]).blocks(), 2);
        assert_eq!(BlockMasks::new(&[0; 150]).blocks(), 3);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_pattern_rejected() {
        let _ = BlockMasks::new(&[]);
    }
}
