//! Reusable word slabs backing the batch verification kernels.
//!
//! The batch kernels in [`crate::batch`] keep the Myers state of several
//! independent lanes in one contiguous, lane-interleaved slab of `u64`
//! words. Allocating that slab per candidate (the way the scalar path
//! once allocated `BlockWork` and `BlockMasks` per call) is exactly the
//! per-candidate churn the GRIM-Filter class of designs exists to avoid;
//! a [`WordArena`] owns the backing buffer across calls and only ever
//! grows, so steady-state verification performs zero heap allocation.

/// A growable slab of `u64` scratch words, reused across kernel calls.
#[derive(Debug, Clone, Default)]
pub struct WordArena {
    buf: Vec<u64>,
}

impl WordArena {
    /// An empty arena; the first [`WordArena::slab`] call sizes it.
    pub fn new() -> WordArena {
        WordArena::default()
    }

    /// Returns a slab of exactly `len` words, every word set to `fill`.
    ///
    /// The backing buffer is retained between calls: once the arena has
    /// grown to the largest slab a workload needs, further calls
    /// allocate nothing.
    pub fn slab(&mut self, len: usize, fill: u64) -> &mut [u64] {
        if self.buf.len() < len {
            self.buf.resize(len, fill);
        }
        let slab = &mut self.buf[..len];
        slab.fill(fill);
        slab
    }

    /// Words currently held by the backing buffer (its high-water mark).
    pub fn capacity_words(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_fills_and_reuses() {
        let mut arena = WordArena::new();
        let s = arena.slab(3, !0u64);
        assert_eq!(s, &[!0u64; 3]);
        s[1] = 7;
        // A smaller request reuses the buffer and re-fills every word.
        let s = arena.slab(2, 0);
        assert_eq!(s, &[0u64; 2]);
        assert_eq!(arena.capacity_words(), 3);
        let s = arena.slab(5, 1);
        assert_eq!(s, &[1u64; 5]);
        assert_eq!(arena.capacity_words(), 5);
    }
}
