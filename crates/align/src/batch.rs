//! Batch SWAR verification: several candidate windows per kernel pass.
//!
//! The scalar kernels in [`crate::myers`] and [`crate::block`] are a
//! single serial dependency chain: each column's `pv`/`mv` update waits
//! on the previous column's. A read's candidate windows, however, are
//! completely independent of each other, so this module advances
//! [`LANES`] of them in lockstep inside one loop body — four independent
//! dependency chains that a superscalar core can overlap, the software
//! analogue of the work-item batching the paper's OpenCL kernels get
//! from the GPU for free.
//!
//! Layout follows the structure-of-arrays discipline throughout:
//!
//! * [`CandidateBatch`] stores the per-candidate `(diagonal, start,
//!   end)` triples in three parallel vectors — no per-candidate heap
//!   objects — and materialises windows as borrows of the reference.
//! * [`BatchVerifier`] keeps the blocked kernels' `pv`/`mv` state in
//!   lane-interleaved [`WordArena`] slabs (`slab[b * L + l]` is block
//!   `b` of lane `l` for an `L`-lane call), so the words the lanes
//!   touch in one block step are adjacent in memory.
//!
//! Both kernels replicate the scalar recurrences bit for bit — the same
//! column order, the same Ukkonen band (shared across lanes, since the
//! band of [`crate::block::band_blocks`] depends only on the column and
//! the error budget), the same work accounting — so every lane's
//! `(Option<Verification>, VerifyCost)` is identical to what
//! [`crate::verify_with`] returns for that window alone. The scalar
//! path stays in the tree as the differential oracle.

use crate::arena::WordArena;
use crate::block::{band_blocks, BlockMasks};
use crate::myers::PatternMasks;
use crate::verify::{ReadMasks, Verification, VerifyCost};

const WORD: usize = 64;

/// Number of candidate windows a batch kernel pass advances in lockstep.
pub const LANES: usize = 4;

/// Sentinel distance meaning "no end position within budget found yet";
/// real scores never exceed the read length, far below this.
const NO_HIT: u32 = u32::MAX;

/// Branchless [`crate::block::advance_block`]: bit-identical outputs,
/// with the horizontal deltas folded in arithmetically instead of via
/// data-dependent branches. The scalar kernel's `hin`/top-bit branches
/// follow the window content, so on the batch kernels' mix of accepting
/// and rejecting windows they mispredict constantly; here every delta is
/// a mask-and-or. Equality holds because `ph & mh == 0` (the `pv`/`mv`
/// disjointness invariant makes the two top-bit cases exclusive) and
/// `hin ∈ {−1, 0, +1}` makes the two low-bit injections exclusive.
#[inline]
fn advance_block_branchless(pv: &mut u64, mv: &mut u64, eq: u64, hin: i32) -> (i32, u64, u64) {
    debug_assert!((-1..=1).contains(&hin), "hin out of range");
    let hin_neg = ((hin >> 31) & 1) as u64; // 1 iff hin < 0
    let hin_pos = ((-hin >> 31) & 1) as u64; // 1 iff hin > 0
    let eq = eq | hin_neg;
    let xv = eq | *mv;
    let xh = (((eq & *pv).wrapping_add(*pv)) ^ *pv) | eq;
    let ph = *mv | !(xh | *pv);
    let mh = *pv & xh;
    let hout = ((ph >> (WORD - 1)) & 1) as i32 - ((mh >> (WORD - 1)) & 1) as i32;
    let ph_shift = (ph << 1) | hin_pos;
    let mh_shift = (mh << 1) | hin_neg;
    *pv = mh_shift | !(xv | ph_shift);
    *mv = ph_shift & xv;
    (hout, ph, mh)
}

/// A structure-of-arrays buffer of candidate locations for one read.
///
/// Mappers accumulate the candidates a read's seeds vote for as three
/// parallel lanes of plain integers (diagonal, window start, window
/// end); the buffer is reused across reads via [`CandidateBatch::clear`]
/// and never allocates per candidate.
#[derive(Debug, Clone, Default)]
pub struct CandidateBatch {
    diags: Vec<usize>,
    starts: Vec<usize>,
    ends: Vec<usize>,
}

impl CandidateBatch {
    /// An empty batch.
    pub fn new() -> CandidateBatch {
        CandidateBatch::default()
    }

    /// Removes all candidates, keeping the allocation.
    pub fn clear(&mut self) {
        self.diags.clear();
        self.starts.clear();
        self.ends.clear();
    }

    /// Appends a candidate: the diagonal it was voted on and the
    /// half-open reference window `[start, end)` to verify.
    pub fn push(&mut self, diag: usize, start: usize, end: usize) {
        self.diags.push(diag);
        self.starts.push(start);
        self.ends.push(end);
    }

    /// Number of buffered candidates.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// Whether the batch holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Diagonal of candidate `i`.
    pub fn diag(&self, i: usize) -> usize {
        self.diags[i]
    }

    /// Window start of candidate `i`.
    pub fn start(&self, i: usize) -> usize {
        self.starts[i]
    }

    /// Window end (exclusive) of candidate `i`.
    pub fn end(&self, i: usize) -> usize {
        self.ends[i]
    }

    /// The reference window of candidate `i`, borrowed from `reference`.
    pub fn window<'r>(&self, reference: &'r [u8], i: usize) -> &'r [u8] {
        &reference[self.starts[i]..self.ends[i]]
    }
}

/// The batch verification kernel with its arena-backed lane state.
///
/// One instance per worker thread; the slabs grow to the largest
/// `blocks × LANES` a read needs and are reused allocation-free after
/// that. Feed it 1..=[`LANES`] windows of the **same** read per
/// [`BatchVerifier::verify_lanes`] call.
#[derive(Debug, Clone, Default)]
pub struct BatchVerifier {
    pv: WordArena,
    mv: WordArena,
}

impl BatchVerifier {
    /// A verifier with empty arenas.
    pub fn new() -> BatchVerifier {
        BatchVerifier::default()
    }

    /// Verifies up to [`LANES`] windows of the read whose [`ReadMasks`]
    /// are given, pushing one `(hit, cost)` pair per window onto `out`
    /// in input order.
    ///
    /// Each pair is bit-identical to what [`crate::verify_with`] returns
    /// for that window alone — same `(distance, end)`, same
    /// `word_updates` charge (the shared Ukkonen band is a function of
    /// the column and `max_distance` only, so lockstep execution changes
    /// no lane's banded work).
    ///
    /// # Panics
    ///
    /// Panics if `windows` is empty or holds more than [`LANES`] entries.
    pub fn verify_lanes(
        &mut self,
        masks: &ReadMasks,
        windows: &[&[u8]],
        max_distance: u32,
        out: &mut Vec<(Option<Verification>, VerifyCost)>,
    ) {
        assert!(
            !windows.is_empty() && windows.len() <= LANES,
            "lane count {} outside 1..={LANES}",
            windows.len()
        );
        match masks {
            ReadMasks::Short(m) => short_lanes(m, windows, max_distance, out),
            ReadMasks::Blocked(m) => {
                blocked_lanes(&mut self.pv, &mut self.mv, m, windows, max_distance, out);
            }
        }
    }
}

/// Multi-lane single-word kernel: the [`crate::myers::search`] recurrence
/// with the per-lane state held in fixed arrays. Unused lanes idle on
/// zeroed state and are never emitted.
#[allow(clippy::needless_range_loop)] // lanes and columns advance in lockstep
fn short_lanes(
    masks: &PatternMasks,
    windows: &[&[u8]],
    max_distance: u32,
    out: &mut Vec<(Option<Verification>, VerifyCost)>,
) {
    let lanes = windows.len();
    let m = masks.len();
    let high = 1u64 << (m - 1);
    let peq = masks.peq();
    let mut pv = [!0u64; LANES];
    let mut mv = [0u64; LANES];
    let mut score = [m as u32; LANES];
    let mut best_d = [NO_HIT; LANES];
    let mut best_e = [0usize; LANES];
    if (m as u32) <= max_distance {
        best_d = [m as u32; LANES];
    }
    let min_len = windows.iter().map(|w| w.len()).min().unwrap_or(0);
    macro_rules! step {
        ($l:expr, $j:expr) => {{
            let l = $l;
            let c = windows[l][$j];
            debug_assert!(c <= 3, "base code out of range");
            let eq = peq[(c & 3) as usize];
            let xv = eq | mv[l];
            let xh = (((eq & pv[l]).wrapping_add(pv[l])) ^ pv[l]) | eq;
            let ph = mv[l] | !(xh | pv[l]);
            let mh = pv[l] & xh;
            score[l] = score[l]
                .wrapping_add(u32::from(ph & high != 0))
                .wrapping_sub(u32::from(mh & high != 0));
            let ph = ph << 1;
            let mh = mh << 1;
            pv[l] = mh | !(xv | ph);
            mv[l] = ph & xv;
            if score[l] <= max_distance && score[l] < best_d[l] {
                best_d[l] = score[l];
                best_e[l] = $j + 1;
            }
        }};
    }
    // Lockstep over the shared prefix: four independent chains per body.
    for j in 0..min_len {
        for l in 0..lanes {
            step!(l, j);
        }
    }
    // Per-lane scalar tails for the remaining columns.
    for l in 0..lanes {
        for j in min_len..windows[l].len() {
            step!(l, j);
        }
    }
    for l in 0..lanes {
        let hit = (best_d[l] != NO_HIT).then_some(Verification {
            distance: best_d[l],
            end: best_e[l],
        });
        let cost = VerifyCost {
            word_updates: windows[l].len() as u64,
        };
        out.push((hit, cost));
    }
}

/// Dispatches the blocked kernel to a const-lane-count instantiation so
/// the per-lane loops fully unroll and the lane state lives in
/// registers. `verify_lanes` guarantees 1..=[`LANES`] windows.
fn blocked_lanes(
    pv_arena: &mut WordArena,
    mv_arena: &mut WordArena,
    masks: &BlockMasks,
    windows: &[&[u8]],
    max_distance: u32,
    out: &mut Vec<(Option<Verification>, VerifyCost)>,
) {
    match *windows {
        [a] => blocked_lanes_n::<1>(pv_arena, mv_arena, masks, &[a], max_distance, out),
        [a, b] => blocked_lanes_n::<2>(pv_arena, mv_arena, masks, &[a, b], max_distance, out),
        [a, b, c] => blocked_lanes_n::<3>(pv_arena, mv_arena, masks, &[a, b, c], max_distance, out),
        [a, b, c, d] => {
            blocked_lanes_n::<4>(pv_arena, mv_arena, masks, &[a, b, c, d], max_distance, out);
        }
        _ => unreachable!("verify_lanes admits 1..={LANES} windows"),
    }
}

/// Multi-lane blocked kernel: the banded [`crate::block::search_with`]
/// recurrence over lane-interleaved slabs (`slab[b * L + l]` is block
/// `b` of lane `l`). The band width `active` is shared by all lanes
/// over the lockstep prefix (it depends only on the column index and
/// `max_distance`); each lane's tail continues the band formula alone
/// on its strided slab words.
#[allow(clippy::needless_range_loop)] // lanes, blocks and columns advance in lockstep
fn blocked_lanes_n<const L: usize>(
    pv_arena: &mut WordArena,
    mv_arena: &mut WordArena,
    masks: &BlockMasks,
    windows: &[&[u8]; L],
    max_distance: u32,
    out: &mut Vec<(Option<Verification>, VerifyCost)>,
) {
    let blocks = masks.blocks();
    let m = masks.len();
    let k = max_distance as usize;
    let last_mask = 1u64 << masks.last_bit();
    let peq = masks.peq();
    let pv = pv_arena.slab(blocks * L, !0u64);
    let mv = mv_arena.slab(blocks * L, 0u64);
    let mut active = band_blocks(blocks, k, 0);
    let mut border = [(active * WORD) as u32; L];
    let mut score = [m as u32; L];
    let mut best_d = [NO_HIT; L];
    let mut best_e = [0usize; L];
    let mut updates = [0u64; L];
    if (m as u32) <= max_distance {
        best_d = [m as u32; L];
    }
    let min_len = windows.iter().map(|w| w.len()).min().unwrap_or(0);
    // Lockstep over the shared prefix.
    for j in 0..min_len {
        let needed = band_blocks(blocks, k, j + 1);
        while active < needed {
            active += 1;
            for l in 0..L {
                if active == blocks {
                    score[l] = border[l] + (m - (active - 1) * WORD) as u32;
                } else {
                    border[l] += WORD as u32;
                }
            }
        }
        // Hoist each lane's eq row once per column: one slice borrow per
        // lane instead of a Vec indirection per (block, lane) step.
        let mut eqs: [&[u64]; L] = [&[]; L];
        for l in 0..L {
            let c = windows[l][j];
            debug_assert!(c <= 3, "base code out of range");
            eqs[l] = &peq[(c & 3) as usize][..active];
        }
        let mut hin = [0i32; L];
        let mut last_ph = [0u64; L];
        let mut last_mh = [0u64; L];
        // All blocks but the last, then the last one peeled so only it
        // pays for capturing the bottom-row delta vectors.
        for b in 0..active - 1 {
            let row = b * L;
            for l in 0..L {
                let (hout, _, _) =
                    advance_block_branchless(&mut pv[row + l], &mut mv[row + l], eqs[l][b], hin[l]);
                hin[l] = hout;
            }
        }
        let row = (active - 1) * L;
        for l in 0..L {
            let (hout, ph, mh) = advance_block_branchless(
                &mut pv[row + l],
                &mut mv[row + l],
                eqs[l][active - 1],
                hin[l],
            );
            hin[l] = hout;
            last_ph[l] = ph;
            last_mh[l] = mh;
        }
        for l in 0..L {
            updates[l] += active as u64;
            if active == blocks {
                // Branchless score step; `ph & mh == 0` keeps the two
                // cases exclusive, exactly as the scalar if/else chain.
                score[l] = score[l]
                    .wrapping_add(u32::from(last_ph[l] & last_mask != 0))
                    .wrapping_sub(u32::from(last_mh[l] & last_mask != 0));
                if score[l] <= max_distance && score[l] < best_d[l] {
                    best_d[l] = score[l];
                    best_e[l] = j + 1;
                }
            } else {
                border[l] = border[l].wrapping_add_signed(hin[l]);
            }
        }
    }
    // Per-lane tails: each lane keeps advancing its own slab stripe,
    // continuing the band formula from the shared `active`.
    for l in 0..L {
        let mut lane_active = active;
        for j in min_len..windows[l].len() {
            let needed = band_blocks(blocks, k, j + 1);
            while lane_active < needed {
                lane_active += 1;
                if lane_active == blocks {
                    score[l] = border[l] + (m - (lane_active - 1) * WORD) as u32;
                } else {
                    border[l] += WORD as u32;
                }
            }
            let c = windows[l][j];
            debug_assert!(c <= 3, "base code out of range");
            let eq_row = &peq[(c & 3) as usize][..lane_active];
            let mut hin = 0i32;
            for (b, &eq) in eq_row[..lane_active - 1].iter().enumerate() {
                let idx = b * L + l;
                let (hout, _, _) = advance_block_branchless(&mut pv[idx], &mut mv[idx], eq, hin);
                hin = hout;
            }
            let idx = (lane_active - 1) * L + l;
            let (hout, last_ph, last_mh) =
                advance_block_branchless(&mut pv[idx], &mut mv[idx], eq_row[lane_active - 1], hin);
            let hin = hout;
            updates[l] += lane_active as u64;
            if lane_active == blocks {
                score[l] = score[l]
                    .wrapping_add(u32::from(last_ph & last_mask != 0))
                    .wrapping_sub(u32::from(last_mh & last_mask != 0));
                if score[l] <= max_distance && score[l] < best_d[l] {
                    best_d[l] = score[l];
                    best_e[l] = j + 1;
                }
            } else {
                border[l] = border[l].wrapping_add_signed(hin);
            }
        }
        let hit = (best_d[l] != NO_HIT).then_some(Verification {
            distance: best_d[l],
            end: best_e[l],
        });
        let cost = VerifyCost {
            word_updates: updates[l],
        };
        out.push((hit, cost));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_with, VerifyScratch};
    use repute_genome::rng::StdRng;

    fn random_seq(rng: &mut StdRng, len: usize) -> Vec<u8> {
        (0..len).map(|_| rng.gen_range(0..4)).collect()
    }

    /// Windows for one read: a mix of random noise and embedded mutated
    /// copies, with varying lengths so the tails are exercised.
    fn random_windows(rng: &mut StdRng, read: &[u8], lanes: usize) -> Vec<Vec<u8>> {
        (0..lanes)
            .map(|_| {
                let n = rng.gen_range(0..=(read.len() + 40));
                let mut w = random_seq(rng, n);
                if n >= read.len() && rng.gen_range(0..2) == 0 {
                    let at = rng.gen_range(0..=(n - read.len()));
                    w[at..at + read.len()].copy_from_slice(read);
                    for _ in 0..rng.gen_range(0..4) {
                        let p = at + rng.gen_range(0..read.len());
                        w[p] = (w[p] + rng.gen_range(1..4u8)) % 4;
                    }
                }
                w
            })
            .collect()
    }

    #[test]
    fn lanes_match_scalar_oracle() {
        let mut rng = StdRng::seed_from_u64(71);
        let mut verifier = BatchVerifier::new();
        for m in [12usize, 64, 65, 100, 150, 200] {
            for lanes in 1..=LANES {
                for k in [2u32, 7, 20, m as u32] {
                    let read = random_seq(&mut rng, m);
                    let masks = ReadMasks::new(&read);
                    let windows = random_windows(&mut rng, &read, lanes);
                    let refs: Vec<&[u8]> = windows.iter().map(|w| w.as_slice()).collect();
                    let mut got = Vec::new();
                    verifier.verify_lanes(&masks, &refs, k, &mut got);
                    assert_eq!(got.len(), lanes);
                    let mut scratch = VerifyScratch::new();
                    for (l, w) in refs.iter().enumerate() {
                        let expected = verify_with(&masks, w, k, &mut scratch);
                        assert_eq!(got[l], expected, "m={m} lanes={lanes} k={k} lane={l}");
                    }
                }
            }
        }
    }

    #[test]
    fn verifier_reuse_across_reads_is_equivalent() {
        let mut rng = StdRng::seed_from_u64(72);
        let mut verifier = BatchVerifier::new();
        // Alternate big and small reads so slab reuse crosses sizes.
        for m in [150usize, 30, 200, 65, 100] {
            let read = random_seq(&mut rng, m);
            let masks = ReadMasks::new(&read);
            let windows = random_windows(&mut rng, &read, LANES);
            let refs: Vec<&[u8]> = windows.iter().map(|w| w.as_slice()).collect();
            let mut got = Vec::new();
            verifier.verify_lanes(&masks, &refs, 5, &mut got);
            let mut scratch = VerifyScratch::new();
            for (l, w) in refs.iter().enumerate() {
                assert_eq!(
                    got[l],
                    verify_with(&masks, w, 5, &mut scratch),
                    "m={m} l={l}"
                );
            }
        }
    }

    #[test]
    fn empty_windows_cost_nothing_and_miss() {
        let read = vec![0u8; 100];
        let masks = ReadMasks::new(&read);
        let mut verifier = BatchVerifier::new();
        let mut got = Vec::new();
        let empty: &[u8] = &[];
        verifier.verify_lanes(&masks, &[empty, empty], 5, &mut got);
        for (hit, cost) in got {
            assert!(hit.is_none());
            assert_eq!(cost.word_updates, 0);
        }
    }

    #[test]
    fn candidate_batch_is_plain_lanes() {
        let reference: Vec<u8> = (0..40).map(|i| (i % 4) as u8).collect();
        let mut batch = CandidateBatch::new();
        assert!(batch.is_empty());
        batch.push(10, 5, 25);
        batch.push(30, 20, 40);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.diag(1), 30);
        assert_eq!(batch.start(0), 5);
        assert_eq!(batch.end(0), 25);
        assert_eq!(batch.window(&reference, 0), &reference[5..25]);
        batch.clear();
        assert!(batch.is_empty());
    }

    #[test]
    #[should_panic(expected = "lane count")]
    fn too_many_lanes_rejected() {
        let read = vec![0u8; 10];
        let masks = ReadMasks::new(&read);
        let w: &[u8] = &[0, 1, 2];
        let mut out = Vec::new();
        BatchVerifier::new().verify_lanes(&masks, &[w; 5], 1, &mut out);
    }
}
