//! Affine-gap alignment (Gotoh 1982) — an extension beyond the paper.
//!
//! The paper scores alignments by unit-cost edit distance (Myers'
//! algorithm is specific to it). Production mappers such as BWA-MEM score
//! with affine gaps — opening a gap costs more than extending one — which
//! models sequencing indels far better. This module provides the classic
//! three-matrix Gotoh recurrence for *global* alignment under a penalty
//! scheme, validated against an exhaustive recursion in the tests.

/// Penalty scheme for affine-gap alignment (all penalties non-negative;
/// the aligner minimises total penalty, so a perfect alignment costs 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffinePenalties {
    /// Penalty per mismatched base pair.
    pub mismatch: u32,
    /// Penalty for opening a gap (charged once per gap, in addition to
    /// the first extension).
    pub gap_open: u32,
    /// Penalty per gap position.
    pub gap_extend: u32,
}

impl AffinePenalties {
    /// BWA-MEM's default-like scheme (mismatch 4, open 6, extend 1).
    pub const fn bwa_like() -> AffinePenalties {
        AffinePenalties {
            mismatch: 4,
            gap_open: 6,
            gap_extend: 1,
        }
    }

    /// Unit costs: affine alignment degenerates to plain edit distance.
    pub const fn unit() -> AffinePenalties {
        AffinePenalties {
            mismatch: 1,
            gap_open: 0,
            gap_extend: 1,
        }
    }

    fn validate(&self) {
        assert!(
            self.mismatch > 0 || self.gap_extend > 0,
            "a degenerate all-zero scheme scores every alignment 0"
        );
    }
}

/// Sentinel for unreachable DP states.
const INF: u32 = u32::MAX / 2;

/// Minimal affine-gap global alignment penalty between two code
/// sequences.
///
/// # Panics
///
/// Panics for the degenerate all-zero penalty scheme.
///
/// # Example
///
/// ```
/// use repute_align::gotoh::{affine_distance, AffinePenalties};
///
/// let p = AffinePenalties::bwa_like();
/// // One 3-base gap: open 6 + 3 × extend 1 = 9 — cheaper than three
/// // separate 1-base gaps (3 × (6 + 1) = 21).
/// assert_eq!(affine_distance(&[0, 1, 2, 3, 0, 1], &[0, 1, 1], p), 9);
/// // Identity costs nothing.
/// assert_eq!(affine_distance(&[2, 2, 2], &[2, 2, 2], p), 0);
/// ```
pub fn affine_distance(a: &[u8], b: &[u8], penalties: AffinePenalties) -> u32 {
    penalties.validate();
    let (m, n) = (a.len(), b.len());
    let open = penalties.gap_open + penalties.gap_extend; // cost of a gap's first base
    let extend = penalties.gap_extend;

    // Three states per cell: M (diagonal), X (gap in b / consume a),
    // Y (gap in a / consume b). Row-rolling keeps memory O(n).
    let mut m_prev = vec![INF; n + 1];
    let mut x_prev = vec![INF; n + 1];
    let mut y_prev = vec![INF; n + 1];
    m_prev[0] = 0;
    for (j, y) in y_prev.iter_mut().enumerate().skip(1) {
        *y = open + (j as u32 - 1) * extend;
    }
    let mut m_cur = vec![INF; n + 1];
    let mut x_cur = vec![INF; n + 1];
    let mut y_cur = vec![INF; n + 1];

    for i in 1..=m {
        m_cur[0] = INF;
        y_cur[0] = INF;
        x_cur[0] = open + (i as u32 - 1) * extend;
        for j in 1..=n {
            let best_prev_diag = m_prev[j - 1].min(x_prev[j - 1]).min(y_prev[j - 1]);
            let cost = u32::from(a[i - 1] != b[j - 1]) * penalties.mismatch;
            m_cur[j] = best_prev_diag.saturating_add(cost);
            x_cur[j] = (m_prev[j].min(y_prev[j]).saturating_add(open))
                .min(x_prev[j].saturating_add(extend));
            y_cur[j] = (m_cur[j - 1].min(x_cur[j - 1]).saturating_add(open))
                .min(y_cur[j - 1].saturating_add(extend));
        }
        std::mem::swap(&mut m_prev, &mut m_cur);
        std::mem::swap(&mut x_prev, &mut x_cur);
        std::mem::swap(&mut y_prev, &mut y_cur);
    }
    m_prev[n].min(x_prev[n]).min(y_prev[n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::edit_distance;
    use repute_genome::rng::StdRng;

    /// Exhaustive recursion over edit scripts (exponential; tiny inputs
    /// only). `in_gap`: 0 = none, 1 = gap in b (consuming a), 2 = gap in
    /// a (consuming b).
    fn brute(a: &[u8], b: &[u8], p: AffinePenalties, in_gap: u8) -> u32 {
        match (a.is_empty(), b.is_empty()) {
            (true, true) => 0,
            (false, true) => {
                let first = if in_gap == 1 {
                    p.gap_extend
                } else {
                    p.gap_open + p.gap_extend
                };
                first + (a.len() as u32 - 1) * p.gap_extend
            }
            (true, false) => {
                let first = if in_gap == 2 {
                    p.gap_extend
                } else {
                    p.gap_open + p.gap_extend
                };
                first + (b.len() as u32 - 1) * p.gap_extend
            }
            (false, false) => {
                let sub = u32::from(a[0] != b[0]) * p.mismatch + brute(&a[1..], &b[1..], p, 0);
                let del = if in_gap == 1 {
                    p.gap_extend
                } else {
                    p.gap_open + p.gap_extend
                } + brute(&a[1..], b, p, 1);
                let ins = if in_gap == 2 {
                    p.gap_extend
                } else {
                    p.gap_open + p.gap_extend
                } + brute(a, &b[1..], p, 2);
                sub.min(del).min(ins)
            }
        }
    }

    #[test]
    fn matches_exhaustive_recursion_on_small_inputs() {
        let mut rng = StdRng::seed_from_u64(991);
        let schemes = [
            AffinePenalties::bwa_like(),
            AffinePenalties::unit(),
            AffinePenalties {
                mismatch: 2,
                gap_open: 3,
                gap_extend: 2,
            },
        ];
        for _ in 0..120 {
            let m = rng.gen_range(0..7usize);
            let n = rng.gen_range(0..7usize);
            let a: Vec<u8> = (0..m).map(|_| rng.gen_range(0..4)).collect();
            let b: Vec<u8> = (0..n).map(|_| rng.gen_range(0..4)).collect();
            for p in schemes {
                assert_eq!(
                    affine_distance(&a, &b, p),
                    brute(&a, &b, p, 0),
                    "a={a:?} b={b:?} p={p:?}"
                );
            }
        }
    }

    #[test]
    fn unit_scheme_equals_edit_distance() {
        let mut rng = StdRng::seed_from_u64(992);
        for _ in 0..80 {
            let m = rng.gen_range(0..40usize);
            let n = rng.gen_range(0..40usize);
            let a: Vec<u8> = (0..m).map(|_| rng.gen_range(0..4)).collect();
            let b: Vec<u8> = (0..n).map(|_| rng.gen_range(0..4)).collect();
            assert_eq!(
                affine_distance(&a, &b, AffinePenalties::unit()),
                edit_distance(&a, &b)
            );
        }
    }

    #[test]
    fn long_gaps_are_preferred_over_scattered_ones() {
        let p = AffinePenalties::bwa_like();
        // Deleting a contiguous block of 4: open + 4 extends = 10.
        let a = [0u8, 1, 2, 3, 0, 1, 2, 3];
        let b = [0u8, 1, 2, 3];
        assert_eq!(affine_distance(&a, &b, p), p.gap_open + 4 * p.gap_extend);
    }

    #[test]
    fn empty_inputs() {
        let p = AffinePenalties::bwa_like();
        assert_eq!(affine_distance(&[], &[], p), 0);
        assert_eq!(
            affine_distance(&[1, 1], &[], p),
            p.gap_open + 2 * p.gap_extend
        );
        assert_eq!(affine_distance(&[], &[2], p), p.gap_open + p.gap_extend);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn all_zero_scheme_rejected() {
        let _ = affine_distance(
            &[0],
            &[1],
            AffinePenalties {
                mismatch: 0,
                gap_open: 0,
                gap_extend: 0,
            },
        );
    }
}
