//! Alignment and verification substrate for the REPUTE reproduction.
//!
//! The paper's verification stage (§II-A) aligns each read against the
//! reference window around a candidate location with a semi-global variant
//! of Myers' bit-vector algorithm, "one of the fastest and widely used"
//! methods. This crate provides:
//!
//! * [`dp`] — a full dynamic-programming reference implementation with
//!   traceback (the ground truth the bit-vector kernels are tested
//!   against, and the source of CIGAR strings),
//! * [`myers`] — Myers' algorithm for patterns up to 64 bases,
//! * [`block`] — the blocked (multi-word) extension for arbitrary pattern
//!   lengths (reads of 100–150 bases need two or three words),
//! * [`Cigar`] — alignment descriptions (a paper §IV future-work item),
//! * [`verify`] — the verification entry point used by every mapper.
//!
//! # Example
//!
//! ```
//! use repute_align::verify;
//!
//! // read: ACGT, window: TTACGTTT, allow 1 error.
//! let read = [0u8, 1, 2, 3];
//! let window = [3u8, 3, 0, 1, 2, 3, 3, 3];
//! let hit = verify(&read, &window, 1).expect("read occurs");
//! assert_eq!(hit.distance, 0);
//! assert_eq!(hit.end, 6); // match ends before window index 6
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod banded;
pub mod batch;
pub mod block;
mod cigar;
pub mod dp;
pub mod gotoh;
pub mod myers;
mod verify;

pub use batch::{BatchVerifier, CandidateBatch, LANES};
pub use cigar::{Cigar, CigarOp};
pub use verify::{
    verify, verify_counting, verify_metered, verify_with, ReadMasks, Verification, VerifyCost,
    VerifyScratch,
};
