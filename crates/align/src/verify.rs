//! The verification entry point shared by every mapper.
//!
//! Chooses the single-word Myers kernel for short patterns and the blocked
//! kernel otherwise, and reports the bit-vector work performed so the
//! heterogeneous platform simulator can convert algorithmic work into
//! device time.

use crate::block::{self, BlockMasks, BlockWork};
use crate::myers::{self, PatternMasks};

/// A successful verification of a read against a candidate window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verification {
    /// Edit distance of the best alignment (≤ the `max_distance` asked for).
    pub distance: u32,
    /// Leftmost end position (exclusive) in the window achieving it.
    pub end: usize,
}

/// Work performed by a verification call, in bit-vector word-updates.
///
/// One unit is one `advance_block` step (64 DP cells). The device profiles
/// in the platform simulator are calibrated in these units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VerifyCost {
    /// Number of 64-cell word updates executed.
    pub word_updates: u64,
}

/// Verifies `read` against `window` within `max_distance` edits
/// (semi-global: the read may start and end anywhere in the window).
///
/// Returns `None` when no alignment within `max_distance` exists.
///
/// # Panics
///
/// Panics if `read` is empty or contains codes above 3.
///
/// # Example
///
/// ```
/// use repute_align::verify;
///
/// let read = [0u8, 1, 2, 3];
/// assert!(verify(&read, &[3, 0, 1, 2, 3, 3], 0).is_some());
/// assert!(verify(&read, &[3, 3, 3, 3, 3, 3], 1).is_none());
/// ```
pub fn verify(read: &[u8], window: &[u8], max_distance: u32) -> Option<Verification> {
    verify_counting(read, window, max_distance).0
}

/// Like [`verify`], additionally reporting the bit-vector work done.
pub fn verify_counting(
    read: &[u8],
    window: &[u8],
    max_distance: u32,
) -> (Option<Verification>, VerifyCost) {
    assert!(!read.is_empty(), "read must not be empty");
    if read.len() <= myers::MAX_PATTERN {
        let masks = PatternMasks::new(read);
        let cost = VerifyCost {
            word_updates: window.len() as u64,
        };
        let hit = myers::search(&masks, window, max_distance).map(|h| Verification {
            distance: h.distance,
            end: h.end,
        });
        (hit, cost)
    } else {
        let masks = BlockMasks::new(read);
        let cost = VerifyCost {
            word_updates: (window.len() * masks.blocks()) as u64,
        };
        let mut work = BlockWork::default();
        let hit =
            block::search_with(&masks, window, max_distance, &mut work).map(|h| Verification {
                distance: h.distance,
                end: h.end,
            });
        (hit, cost)
    }
}

/// Like [`verify`], recording the call into a [`repute_obs::MapMetrics`]
/// record: one verification, the bit-vector word updates performed, and a
/// hit when the window passes. This is the instrumented entry point the
/// mapping pipeline threads its per-read telemetry through; the counts it
/// adds are exactly what [`verify_counting`] reports, so metered and
/// unmetered callers see identical work accounting.
pub fn verify_metered(
    read: &[u8],
    window: &[u8],
    max_distance: u32,
    metrics: &mut repute_obs::MapMetrics,
) -> Option<Verification> {
    let (hit, cost) = verify_counting(read, window, max_distance);
    metrics.verifications += 1;
    metrics.word_updates += cost.word_updates;
    metrics.hits += u64::from(hit.is_some());
    hit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp;
    use repute_genome::rng::StdRng;

    #[test]
    fn dispatches_by_length_and_agrees_with_dp() {
        let mut rng = StdRng::seed_from_u64(61);
        for m in [10usize, 64, 65, 100, 150] {
            let read: Vec<u8> = (0..m).map(|_| rng.gen_range(0..4)).collect();
            let window: Vec<u8> = (0..m + 30).map(|_| rng.gen_range(0..4)).collect();
            let expected = dp::semi_global(&read, &window).unwrap();
            let got = verify(&read, &window, m as u32).unwrap();
            assert_eq!(got.distance, expected.distance, "m={m}");
            assert_eq!(got.end, expected.end, "m={m}");
        }
    }

    #[test]
    fn cost_scales_with_blocks() {
        let short = vec![0u8; 60];
        let long = vec![0u8; 150];
        let window = vec![0u8; 100];
        let (_, c1) = verify_counting(&short, &window, 60);
        let (_, c2) = verify_counting(&long, &window, 150);
        assert_eq!(c1.word_updates, 100);
        assert_eq!(c2.word_updates, 300); // 3 blocks × 100 columns
    }

    #[test]
    fn rejection_within_budget() {
        let read = vec![0u8; 100];
        let window = vec![3u8; 120];
        assert!(verify(&read, &window, 5).is_none());
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_read_rejected() {
        let _ = verify(&[], &[0, 1], 1);
    }

    #[test]
    fn metered_agrees_with_counting() {
        let mut rng = StdRng::seed_from_u64(62);
        let mut metrics = repute_obs::MapMetrics::new();
        let mut expected_words = 0u64;
        let mut expected_hits = 0u64;
        for m in [40usize, 100] {
            let read: Vec<u8> = (0..m).map(|_| rng.gen_range(0..4)).collect();
            let window: Vec<u8> = (0..m + 20).map(|_| rng.gen_range(0..4)).collect();
            let (hit, cost) = verify_counting(&read, &window, 8);
            expected_words += cost.word_updates;
            expected_hits += u64::from(hit.is_some());
            assert_eq!(verify_metered(&read, &window, 8, &mut metrics), hit);
        }
        assert_eq!(metrics.verifications, 2);
        assert_eq!(metrics.word_updates, expected_words);
        assert_eq!(metrics.hits, expected_hits);
    }
}
