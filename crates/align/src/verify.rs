//! The verification entry point shared by every mapper.
//!
//! Chooses the single-word Myers kernel for short patterns and the blocked
//! kernel otherwise, and reports the bit-vector work performed so the
//! heterogeneous platform simulator can convert algorithmic work into
//! device time.

use crate::block::{self, BlockMasks, BlockWork};
use crate::myers::{self, PatternMasks};

/// A successful verification of a read against a candidate window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verification {
    /// Edit distance of the best alignment (≤ the `max_distance` asked for).
    pub distance: u32,
    /// Leftmost end position (exclusive) in the window achieving it.
    pub end: usize,
}

/// Work performed by a verification call, in bit-vector word-updates.
///
/// One unit is one `advance_block` step (64 DP cells). The device profiles
/// in the platform simulator are calibrated in these units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VerifyCost {
    /// Number of 64-cell word updates executed.
    pub word_updates: u64,
}

/// Precomputed per-read pattern masks, built **once per read** and
/// reused across every candidate window the read is verified against.
///
/// Wraps the kernel dispatch of [`verify`]: short reads (≤ 64 bases)
/// carry single-word [`PatternMasks`], longer reads blocked
/// [`BlockMasks`]. Building either is `O(read)` plus allocations for the
/// blocked case — work that used to be repeated for every window of the
/// same read; construct this handle at the top of the per-read loop and
/// pass it to [`verify_with`] instead.
#[derive(Debug, Clone)]
pub enum ReadMasks {
    /// Single-word masks for reads of up to 64 bases.
    Short(PatternMasks),
    /// Blocked masks for longer reads.
    Blocked(BlockMasks),
}

impl ReadMasks {
    /// Builds the masks for a read of 2-bit base codes.
    ///
    /// # Panics
    ///
    /// Panics if `read` is empty or contains codes above 3.
    pub fn new(read: &[u8]) -> ReadMasks {
        assert!(!read.is_empty(), "read must not be empty");
        if read.len() <= myers::MAX_PATTERN {
            ReadMasks::Short(PatternMasks::new(read))
        } else {
            ReadMasks::Blocked(BlockMasks::new(read))
        }
    }

    /// Read length in bases.
    pub fn len(&self) -> usize {
        match self {
            ReadMasks::Short(m) => m.len(),
            ReadMasks::Blocked(m) => m.len(),
        }
    }

    /// Returns `false` always (reads cannot be empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of 64-base pattern blocks (1 for the short kernel).
    pub fn blocks(&self) -> usize {
        match self {
            ReadMasks::Short(_) => 1,
            ReadMasks::Blocked(m) => m.blocks(),
        }
    }
}

/// Reusable scratch for [`verify_with`]: the blocked kernel's working
/// vectors, allocated once and reused across all of a read's windows
/// (and across reads — the vectors only grow).
#[derive(Debug, Clone, Default)]
pub struct VerifyScratch {
    work: BlockWork,
}

impl VerifyScratch {
    /// An empty scratch.
    pub fn new() -> VerifyScratch {
        VerifyScratch::default()
    }
}

/// Verifies `read` against `window` within `max_distance` edits
/// (semi-global: the read may start and end anywhere in the window).
///
/// Returns `None` when no alignment within `max_distance` exists.
///
/// # Panics
///
/// Panics if `read` is empty or contains codes above 3.
///
/// # Example
///
/// ```
/// use repute_align::verify;
///
/// let read = [0u8, 1, 2, 3];
/// assert!(verify(&read, &[3, 0, 1, 2, 3, 3], 0).is_some());
/// assert!(verify(&read, &[3, 3, 3, 3, 3, 3], 1).is_none());
/// ```
pub fn verify(read: &[u8], window: &[u8], max_distance: u32) -> Option<Verification> {
    verify_counting(read, window, max_distance).0
}

/// Like [`verify`], additionally reporting the bit-vector work done.
///
/// Thin wrapper over [`verify_with`] that rebuilds the pattern masks on
/// every call; hot paths verifying many windows of the same read should
/// build a [`ReadMasks`] once and call [`verify_with`] directly.
pub fn verify_counting(
    read: &[u8],
    window: &[u8],
    max_distance: u32,
) -> (Option<Verification>, VerifyCost) {
    let masks = ReadMasks::new(read);
    let mut scratch = VerifyScratch::new();
    verify_with(&masks, window, max_distance, &mut scratch)
}

/// The masks-accepting verification entry point: verifies the read whose
/// precomputed [`ReadMasks`] are given against `window`, reusing
/// `scratch` across calls.
///
/// The reported [`VerifyCost`] is the work the kernel *actually*
/// executed: one unit per text column for the single-word kernel, and
/// one unit per `advance_block` step for the blocked kernel — whose
/// Ukkonen band skips out-of-band blocks, so the charge is generally
/// below the naive `window × blocks` product. Metered device time and
/// simulated kernel time therefore agree by construction.
pub fn verify_with(
    masks: &ReadMasks,
    window: &[u8],
    max_distance: u32,
    scratch: &mut VerifyScratch,
) -> (Option<Verification>, VerifyCost) {
    match masks {
        ReadMasks::Short(m) => {
            let cost = VerifyCost {
                word_updates: window.len() as u64,
            };
            let hit = myers::search(m, window, max_distance).map(|h| Verification {
                distance: h.distance,
                end: h.end,
            });
            (hit, cost)
        }
        ReadMasks::Blocked(m) => {
            let hit = block::search_with(m, window, max_distance, &mut scratch.work).map(|h| {
                Verification {
                    distance: h.distance,
                    end: h.end,
                }
            });
            let cost = VerifyCost {
                word_updates: scratch.work.word_updates(),
            };
            (hit, cost)
        }
    }
}

/// Like [`verify`], recording the call into a [`repute_obs::MapMetrics`]
/// record: one verification, the bit-vector word updates performed, and a
/// hit when the window passes. This is the instrumented entry point the
/// mapping pipeline threads its per-read telemetry through; the counts it
/// adds are exactly what [`verify_counting`] reports, so metered and
/// unmetered callers see identical work accounting.
pub fn verify_metered(
    read: &[u8],
    window: &[u8],
    max_distance: u32,
    metrics: &mut repute_obs::MapMetrics,
) -> Option<Verification> {
    let (hit, cost) = verify_counting(read, window, max_distance);
    metrics.verifications += 1;
    metrics.word_updates += cost.word_updates;
    metrics.hits += u64::from(hit.is_some());
    hit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp;
    use repute_genome::rng::StdRng;

    #[test]
    fn dispatches_by_length_and_agrees_with_dp() {
        let mut rng = StdRng::seed_from_u64(61);
        for m in [10usize, 64, 65, 100, 150] {
            let read: Vec<u8> = (0..m).map(|_| rng.gen_range(0..4)).collect();
            let window: Vec<u8> = (0..m + 30).map(|_| rng.gen_range(0..4)).collect();
            let expected = dp::semi_global(&read, &window).unwrap();
            let got = verify(&read, &window, m as u32).unwrap();
            assert_eq!(got.distance, expected.distance, "m={m}");
            assert_eq!(got.end, expected.end, "m={m}");
        }
    }

    #[test]
    fn cost_scales_with_blocks() {
        let short = vec![0u8; 60];
        let long = vec![0u8; 150];
        let window = vec![0u8; 100];
        let (_, c1) = verify_counting(&short, &window, 60);
        let (_, c2) = verify_counting(&long, &window, 150);
        assert_eq!(c1.word_updates, 100);
        assert_eq!(c2.word_updates, 300); // 3 blocks × 100 columns, band wide open
                                          // Banded case: at δ = 7 the blocked kernel only advances blocks
                                          // covering pattern rows ≤ column + δ, and the charged cost must
                                          // equal that actual work, not the naive 300.
        let (_, c3) = verify_counting(&long, &window, 7);
        let banded: u64 = (1..=100u64).map(|col| ((col + 7) / 64 + 1).min(3)).sum();
        assert_eq!(c3.word_updates, banded);
        assert!(c3.word_updates < 300);
    }

    #[test]
    fn masks_reuse_matches_per_call_rebuild() {
        let mut rng = StdRng::seed_from_u64(63);
        for m in [30usize, 64, 100, 150] {
            let read: Vec<u8> = (0..m).map(|_| rng.gen_range(0..4)).collect();
            let masks = ReadMasks::new(&read);
            assert_eq!(masks.len(), m);
            assert_eq!(masks.blocks(), m.div_ceil(64));
            assert!(!masks.is_empty());
            let mut scratch = VerifyScratch::new();
            for _ in 0..4 {
                let n = rng.gen_range(0..=(m + 30));
                let window: Vec<u8> = (0..n).map(|_| rng.gen_range(0..4)).collect();
                for k in [3u32, m as u32] {
                    let fresh = verify_counting(&read, &window, k);
                    let reused = verify_with(&masks, &window, k, &mut scratch);
                    assert_eq!(fresh, reused, "m={m} n={n} k={k}");
                }
            }
        }
    }

    #[test]
    fn rejection_within_budget() {
        let read = vec![0u8; 100];
        let window = vec![3u8; 120];
        assert!(verify(&read, &window, 5).is_none());
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_read_rejected() {
        let _ = verify(&[], &[0, 1], 1);
    }

    #[test]
    fn metered_agrees_with_counting() {
        let mut rng = StdRng::seed_from_u64(62);
        let mut metrics = repute_obs::MapMetrics::new();
        let mut expected_words = 0u64;
        let mut expected_hits = 0u64;
        for m in [40usize, 100] {
            let read: Vec<u8> = (0..m).map(|_| rng.gen_range(0..4)).collect();
            let window: Vec<u8> = (0..m + 20).map(|_| rng.gen_range(0..4)).collect();
            let (hit, cost) = verify_counting(&read, &window, 8);
            expected_words += cost.word_updates;
            expected_hits += u64::from(hit.is_some());
            assert_eq!(verify_metered(&read, &window, 8, &mut metrics), hit);
        }
        assert_eq!(metrics.verifications, 2);
        assert_eq!(metrics.word_updates, expected_words);
        assert_eq!(metrics.hits, expected_hits);
    }
}
