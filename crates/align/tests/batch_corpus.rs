//! Fixed regression corpus for the batch SWAR kernels: candidate counts
//! 1–7 chunked the way the verification engine chunks them (full
//! [`LANES`]-wide groups, then the 1–3 lane remainder), for both the
//! single-word and the blocked kernel, differentially against the
//! scalar oracle. Deterministic by construction — no RNG — so any
//! divergence bisects cleanly.

use repute_align::{verify_counting, BatchVerifier, ReadMasks, Verification, VerifyCost, LANES};

/// A deterministic "reference" long enough to cut windows from.
fn reference() -> Vec<u8> {
    (0..2048usize)
        .map(|i| ((i * 7 + i / 5 + i / 31) % 4) as u8)
        .collect()
}

/// A deterministic read sliced out of the reference.
fn read(reference: &[u8], at: usize, len: usize) -> Vec<u8> {
    reference[at..at + len].to_vec()
}

/// Candidate window `c` for a read of length `m`: mixes true sites
/// (with 0–3 planted substitutions), shifted sites, unrelated windows,
/// short windows, and the empty window.
fn window(reference: &[u8], at: usize, m: usize, c: usize) -> Vec<u8> {
    match c % 7 {
        0 => reference[at..(at + m + 10).min(reference.len())].to_vec(), // true site
        1 => {
            let mut w = reference[at.saturating_sub(4)..at + m + 4].to_vec();
            for p in [m / 5, m / 2, m - 3] {
                w[4 + p] = (w[4 + p] + 1) % 4; // 3 substitutions
            }
            w
        }
        2 => reference[at + 300..at + 300 + m + 8].to_vec(), // unrelated
        3 => reference[at + 5..at + m].to_vec(),             // truncated site
        4 => Vec::new(),                                     // empty window
        5 => reference[at..at + m / 2].to_vec(),             // half window
        _ => {
            let mut w = reference[at..at + m + 6].to_vec();
            w[0] = (w[0] + 2) % 4; // edge substitution
            w
        }
    }
}

#[test]
fn lane_remainders_1_through_7_match_scalar() {
    let reference = reference();
    let mut verifier = BatchVerifier::new();
    // 48bp exercises the single-word kernel, 100/150bp the blocked one
    // (2 and 3 blocks).
    for (at, m) in [(64usize, 48usize), (256, 100), (512, 150)] {
        let r = read(&reference, at, m);
        let masks = ReadMasks::new(&r);
        for total in 1usize..=7 {
            let windows: Vec<Vec<u8>> = (0..total).map(|c| window(&reference, at, m, c)).collect();
            let mut got: Vec<(Option<Verification>, VerifyCost)> = Vec::new();
            // Chunk exactly like the engine: LANES at a time, remainder
            // last (total=7 → 4+3, total=5 → 4+1, ...).
            for chunk in windows.chunks(LANES) {
                let refs: Vec<&[u8]> = chunk.iter().map(|w| w.as_slice()).collect();
                verifier.verify_lanes(&masks, &refs, 5, &mut got);
            }
            assert_eq!(got.len(), total);
            for (c, w) in windows.iter().enumerate() {
                let expected = verify_counting(&r, w, 5);
                assert_eq!(got[c], expected, "m={m} total={total} candidate={c}");
            }
        }
    }
}

#[test]
fn corpus_contains_accepts_and_rejects() {
    // Guard against the corpus degenerating into all-accept or
    // all-reject (which would silence half the differential).
    let reference = reference();
    let r = read(&reference, 256, 100);
    let mut accepts = 0;
    let mut rejects = 0;
    for c in 0..7 {
        let w = window(&reference, 256, 100, c);
        match verify_counting(&r, &w, 5).0 {
            Some(_) => accepts += 1,
            None => rejects += 1,
        }
    }
    assert!(accepts >= 2, "corpus lost its accepting windows");
    assert!(rejects >= 2, "corpus lost its rejecting windows");
}
