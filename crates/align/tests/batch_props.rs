#![cfg(feature = "proptest")]
//! NOTE: gated behind the non-default `proptest` feature because the
//! external `proptest` crate cannot be resolved in the offline build
//! environment. Enabling the feature additionally requires restoring a
//! `proptest` dev-dependency where registry access exists.

//! Property-based differential: the batch SWAR kernels against the
//! scalar verification oracle, over random read/window batches.

use proptest::prelude::*;

use repute_align::{verify_counting, BatchVerifier, ReadMasks, LANES};

fn codes(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..4, len)
}

/// 1..=LANES windows of independently random lengths.
fn window_batch() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(codes(0..240), 1..=LANES)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn batch_lanes_match_scalar_oracle(
        read in codes(1..200),
        windows in window_batch(),
        k in 0u32..24,
    ) {
        let masks = ReadMasks::new(&read);
        let refs: Vec<&[u8]> = windows.iter().map(|w| w.as_slice()).collect();
        let mut verifier = BatchVerifier::new();
        let mut got = Vec::new();
        verifier.verify_lanes(&masks, &refs, k, &mut got);
        prop_assert_eq!(got.len(), refs.len());
        for (lane, window) in refs.iter().enumerate() {
            // Oracle: the scalar per-candidate path, masks rebuilt per
            // call. Both the (distance, end) result and the word-update
            // accounting must be identical.
            let expected = verify_counting(&read, window, k);
            prop_assert_eq!(got[lane], expected, "lane {}", lane);
        }
    }

    #[test]
    fn embedded_mutated_reads_are_found_by_both_paths(
        read in codes(32..160),
        flank in codes(0..64),
        subs in proptest::collection::vec(any::<u16>(), 0..6),
        k in 0u32..12,
    ) {
        // Build one window that truly contains the read (mutated), and
        // verify batch and scalar agree on acceptance and distance.
        let mut window = flank.clone();
        let mut copy = read.clone();
        for (i, s) in subs.iter().enumerate() {
            let p = (*s as usize) % copy.len();
            copy[p] = (copy[p] + 1 + (i as u8 % 3)) % 4;
        }
        window.extend_from_slice(&copy);
        window.extend_from_slice(&flank);
        let masks = ReadMasks::new(&read);
        let mut verifier = BatchVerifier::new();
        let mut got = Vec::new();
        verifier.verify_lanes(&masks, &[window.as_slice()], k, &mut got);
        let expected = verify_counting(&read, &window, k);
        prop_assert_eq!(got[0], expected);
    }
}
