//! Seed selection strategies compared on one read (the paper's Fig. 1).
//!
//! Shows why REPUTE's DP filtration is the contribution: for the same
//! read, the uniform partition, the serial greedy heuristic (CORAL) and
//! the DP optimum produce very different candidate totals — and candidate
//! totals are what verification time is made of.
//!
//! ```text
//! cargo run --release --example seed_selection
//! ```

use repute_filter::freq::FreqTable;
use repute_filter::greedy::GreedySelector;
use repute_filter::oss::{OssParams, OssSolver};
use repute_filter::pigeonhole::UniformSelector;
use repute_filter::segmented::SegmentedSelector;
use repute_filter::sparse::SparseSolver;
use repute_filter::SeedSelection;
use repute_genome::reads::ReadSimulator;
use repute_genome::synth::ReferenceBuilder;
use repute_index::FmIndex;

fn show(label: &str, selection: &SeedSelection) {
    print!("{label:<24}");
    for seed in &selection.seeds {
        print!(" [{}:{}]{}", seed.start, seed.len, seed.count);
    }
    println!("  → total {}", selection.total_candidates());
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let reference = ReferenceBuilder::new(2_000_000).seed(21).build();
    println!("indexing 2 Mbp reference…");
    let fm = FmIndex::build(&reference);

    let reads = ReadSimulator::new(100, 5).seed(3).simulate(&reference);
    let (delta, s_min) = (5u32, 12usize);
    let params = OssParams::new(delta, s_min)?;
    println!(
        "\nseeds as [start:len]count for δ={delta}, S_min={s_min} \
         (lower total ⇒ less verification work)\n"
    );

    for read in &reads {
        let codes = read.seq.to_codes();
        println!(
            "read {} (origin {:?}):",
            read.id,
            read.origin.map(|o| o.position)
        );
        let (uniform, _) = UniformSelector::new(delta).select(&codes, &fm);
        show("  uniform (RazerS3)", &uniform);
        let (segmented, _) = SegmentedSelector::new(delta, s_min).select(&codes, &fm);
        show("  per-section (CORAL)", &segmented);
        let (greedy, _) = GreedySelector::new(delta, s_min).select(&codes, &fm);
        show("  greedy threshold", &greedy);
        let table = FreqTable::build(&fm, &codes, &params);
        let dp = OssSolver::new(params).select(&codes, &table);
        show("  DP covering (REPUTE)", &dp.selection);
        let sparse_solver = SparseSolver::new(params);
        let sparse_table = FreqTable::build(&fm, &codes, sparse_solver.params());
        let sparse = sparse_solver.select(&codes, &sparse_table);
        show("  DP sparse (orig. OSS)", &sparse.selection);
        println!(
            "  DP work: {} FM extensions, {} DP cells, {} bytes peak\n",
            dp.stats.extend_ops, dp.stats.dp_cells, dp.stats.peak_bytes
        );
    }
    Ok(())
}
