//! Task-parallel mapping across CPU + 2 GPUs (the paper's System 1).
//!
//! Demonstrates the multi-device launch of §III-B: the same read set is
//! mapped with different CPU/GPU distributions, showing the bottleneck
//! moving from one device to another — the experiment behind Fig. 3 —
//! and the §III-D power/energy readings for each split.
//!
//! ```text
//! cargo run --release --example heterogeneous_mapping
//! ```

use std::sync::Arc;

use repute_core::{map_on_platform, ReputeConfig, ReputeMapper};
use repute_genome::reads::{ErrorProfile, ReadSimulator};
use repute_genome::synth::ReferenceBuilder;
use repute_hetsim::{profiles, Share};
use repute_mappers::{IndexedReference, Mapper};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("building workload…");
    let reference = ReferenceBuilder::new(1_000_000).seed(5).build();
    let reads: Vec<_> = ReadSimulator::new(150, 300)
        .profile(ErrorProfile::srr826460())
        .seed(9)
        .simulate(&reference)
        .into_iter()
        .map(|r| r.seq)
        .collect();
    let indexed = Arc::new(IndexedReference::build(reference));
    let mapper = ReputeMapper::new(Arc::clone(&indexed), ReputeConfig::new(5, 15)?);

    let platform = profiles::system1();
    println!(
        "platform: {} ({} devices, {} W idle)\n",
        platform.name(),
        platform.devices().len(),
        platform.idle_power_w()
    );
    println!(
        "{:<28} | {:>10} | {:>8} | {:>10}",
        "distribution (cpu/gpu/gpu)", "T(s) sim", "P(W)", "E(J)"
    );
    println!("{}", "-".repeat(66));
    let total = reads.len();
    for gpu_fraction in [0.0f64, 0.2, 0.35, 0.5] {
        let per_gpu = (total as f64 * gpu_fraction / 2.0) as usize;
        let cpu = total - 2 * per_gpu;
        let shares = vec![
            Share {
                device: 0,
                items: cpu,
            },
            Share {
                device: 1,
                items: per_gpu,
            },
            Share {
                device: 2,
                items: per_gpu,
            },
        ];
        let run = map_on_platform(&mapper, &platform, &shares, &reads)?;
        println!(
            "{:<28} | {:>10.4} | {:>8.1} | {:>10.3}",
            format!("{cpu}/{per_gpu}/{per_gpu}"),
            run.simulated_seconds,
            run.energy.average_power_w,
            run.energy.energy_j
        );
    }
    println!(
        "\nmore GPU share → more power drawn, but (up to the bottleneck flip)\n\
         shorter mapping time and lower energy — §IV's REPUTE-all observation."
    );

    // Per-device utilisation at the balanced split: the task-parallel
    // barrier means non-bottleneck devices idle.
    let run = map_on_platform(&mapper, &platform, &platform.even_shares(total), &reads)?;
    println!("\nutilisation at the throughput-proportional split:");
    let shadow = repute_hetsim::PlatformRun::<()> {
        outputs: vec![],
        device_runs: run.device_runs.clone(),
        simulated_seconds: run.simulated_seconds,
        wall_seconds: run.wall_seconds,
    };
    for (device, utilisation) in shadow.device_utilization() {
        println!(
            "  {:<22} {:>5.1}%",
            platform.devices()[device].name(),
            utilisation * 100.0
        );
    }

    // OpenCL-style command queue: chunk one device's share into batches
    // (the quarter-RAM rule of §III) and show the profiling timeline.
    let gpu = &platform.devices()[1];
    let mut queue = repute_hetsim::CommandQueue::new(gpu);
    for (i, chunk) in reads.chunks(60).take(3).enumerate() {
        let kernel = repute_hetsim::FnKernel::new(|idx: usize| {
            let out = mapper.map_read(&chunk[idx]);
            let work = out.work;
            (out.mappings.len(), work)
        });
        queue.enqueue(format!("batch-{i}"), chunk.len(), &kernel);
    }
    println!("\nGPU command-queue timeline (3 batches of 60 reads):");
    print!("{}", queue.timeline());
    println!("queue finished at {:.4}s simulated", queue.finish_seconds());
    Ok(())
}
