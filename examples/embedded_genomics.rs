//! Embedded genomics on the HiKey970 (the paper's headline).
//!
//! Maps the same read set on a workstation profile and on the embedded
//! big.LITTLE profile, compares time and energy (the paper's ≈20–27×
//! energy saving), and writes the mappings of a few reads as SAM — the
//! output-format extension of §IV.
//!
//! ```text
//! cargo run --release --example embedded_genomics
//! ```

use std::sync::Arc;

use repute_core::{map_on_platform, ReputeConfig, ReputeMapper};
use repute_eval::sam;
use repute_genome::reads::{ErrorProfile, ReadSimulator};
use repute_genome::synth::ReferenceBuilder;
use repute_hetsim::profiles;
use repute_mappers::IndexedReference;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("building workload…");
    let reference = ReferenceBuilder::new(1_000_000).seed(77).build();
    let reference_len = reference.len();
    let sim_reads = ReadSimulator::new(100, 200)
        .profile(ErrorProfile::err012100())
        .seed(11)
        .simulate(&reference);
    let reads: Vec<_> = sim_reads.iter().map(|r| r.seq.clone()).collect();
    let indexed = Arc::new(IndexedReference::build(reference));
    let mapper = ReputeMapper::new(
        Arc::clone(&indexed),
        ReputeConfig::new(3, 15)?.with_max_locations(100),
    );

    let workstation = profiles::system1_cpu_only();
    let hikey = profiles::system2_hikey970();

    let w_run = map_on_platform(
        &mapper,
        &workstation,
        &workstation.single_device_share(0, reads.len()),
        &reads,
    )?;
    let h_run = map_on_platform(&mapper, &hikey, &hikey.even_shares(reads.len()), &reads)?;

    println!(
        "\n{:<26} | {:>10} | {:>8} | {:>10}",
        "platform", "T(s) sim", "P(W)", "E(J)"
    );
    println!("{}", "-".repeat(64));
    for (name, run) in [
        ("workstation (i7-2600)", &w_run),
        ("HiKey970 (A73+A53)", &h_run),
    ] {
        println!(
            "{:<26} | {:>10.4} | {:>8.1} | {:>10.3}",
            name, run.simulated_seconds, run.energy.average_power_w, run.energy.energy_j
        );
    }
    println!(
        "\nenergy saving on the embedded SoC: {:.1}× (paper: up to 27×)\n\
         at a slowdown of only {:.1}×",
        w_run.energy.energy_j / h_run.energy.energy_j,
        h_run.simulated_seconds / w_run.simulated_seconds
    );

    // SAM output for the first three reads (§IV extension).
    println!("\nSAM output of the first reads:");
    let mut sam_text = Vec::new();
    sam::write_header(&mut sam_text, "chr21sim", reference_len)?;
    for (sim, out) in sim_reads.iter().zip(&h_run.outputs).take(3) {
        let name = format!("read{}", sim.id);
        sam::write_record(
            &mut sam_text,
            "chr21sim",
            &sam::SamRecord {
                name: &name,
                seq: &sim.seq,
                mappings: &out.mappings[..out.mappings.len().min(2)],
                cigar: None,
            },
        )?;
    }
    print!("{}", String::from_utf8(sam_text)?);
    Ok(())
}
