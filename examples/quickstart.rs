//! Quickstart: index a reference, map reads, print the mappings.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use repute_core::{ReputeConfig, ReputeMapper};
use repute_genome::reads::{ErrorProfile, ReadSimulator};
use repute_genome::synth::ReferenceBuilder;
use repute_mappers::{IndexedReference, Mapper};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A reference genome. Real users load a FASTA via
    //    `repute_genome::fasta`; here we synthesise a chr21-like sequence.
    println!("building a 1 Mbp synthetic reference…");
    let reference = ReferenceBuilder::new(1_000_000).seed(42).build();

    // 2. Sequencing reads. Real users load FASTQ via
    //    `repute_genome::fastq`; here we simulate an Illumina-like run.
    let reads = ReadSimulator::new(100, 10)
        .profile(ErrorProfile::err012100())
        .seed(7)
        .simulate(&reference);

    // 3. Preprocess once (FM-Index + suffix array, §II-A of the paper).
    println!("indexing…");
    let indexed = Arc::new(IndexedReference::build(reference));

    // 4. Configure REPUTE: error budget δ=5, minimum k-mer length 12,
    //    first 100 locations per read.
    let config = ReputeConfig::new(5, 12)?.with_max_locations(100);
    let mapper = ReputeMapper::new(indexed, config);

    // 5. Map.
    println!("mapping {} reads…\n", reads.len());
    for read in &reads {
        let out = mapper.map_read(&read.seq);
        let truth = read
            .origin
            .map(|o| format!("truth: {}{}", o.strand.symbol(), o.position))
            .unwrap_or_else(|| "truth: unmappable".into());
        println!(
            "read {:>2} ({truth}): {} location(s), {} candidates verified",
            read.id,
            out.mappings.len(),
            out.candidates
        );
        for m in out.mappings.iter().take(3) {
            println!(
                "    {}{:>8}  distance {}",
                m.strand.symbol(),
                m.position,
                m.distance
            );
        }
        if out.mappings.len() > 3 {
            println!("    … and {} more", out.mappings.len() - 3);
        }
    }
    Ok(())
}
