//! Clinical gene-panel scenario: multi-record reference, coverage report.
//!
//! The paper's motivation is P4 medicine (§I): genomics cheap enough for
//! routine diagnostics. A targeted gene panel is the everyday version of
//! that workload — reads from a handful of genes, mapped and summarised
//! per target. This example builds a three-"gene" panel, maps simulated
//! reads with REPUTE on the embedded (HiKey970) profile, resolves
//! mappings per record and reports depth/breadth of coverage per gene.
//!
//! ```text
//! cargo run --release --example gene_panel
//! ```

use std::sync::Arc;

use repute_core::{map_on_platform, ReputeConfig, ReputeMapper};
use repute_eval::coverage::CoverageMap;
use repute_genome::reads::{ErrorProfile, ReadSimulator};
use repute_genome::synth::ReferenceBuilder;
use repute_hetsim::profiles;
use repute_mappers::multiref::ReferenceSet;
use repute_mappers::Mapping;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("building a 3-gene panel…");
    let genes = vec![
        (
            "BRCA1-like".to_string(),
            ReferenceBuilder::new(80_000).seed(31).build(),
        ),
        (
            "TP53-like".to_string(),
            ReferenceBuilder::new(20_000).seed(32).build(),
        ),
        (
            "CFTR-like".to_string(),
            ReferenceBuilder::new(250_000).seed(33).build(),
        ),
    ];
    let set = ReferenceSet::build(genes);

    // Panel sequencing: reads drawn across the whole panel.
    let reads: Vec<_> = ReadSimulator::new(100, 2_000)
        .profile(ErrorProfile::err012100())
        .unmappable_fraction(0.03)
        .seed(34)
        .simulate(set.indexed().seq())
        .into_iter()
        .map(|r| r.seq)
        .collect();

    let mapper = ReputeMapper::new(
        Arc::clone(set.indexed()),
        ReputeConfig::new(4, 15)?.with_max_locations(20),
    );
    let platform = profiles::system2_hikey970();
    println!("mapping {} reads on {}…", reads.len(), platform.name());
    let run = map_on_platform(
        &mapper,
        &platform,
        &platform.even_shares(reads.len()),
        &reads,
    )?;

    // Per-gene coverage from resolved mappings (primary location only).
    let mut tracks: Vec<CoverageMap> = set
        .records()
        .iter()
        .map(|(_, len)| CoverageMap::new(*len))
        .collect();
    let mut unmapped = 0usize;
    for (read, out) in reads.iter().zip(&run.outputs) {
        let resolved = set.resolve_mappings(read.len(), &out.mappings);
        match resolved.first() {
            Some(primary) => tracks[primary.record].add(
                &Mapping {
                    position: primary.position,
                    strand: primary.strand,
                    distance: primary.distance,
                },
                read.len(),
            ),
            None => unmapped += 1,
        }
    }

    println!(
        "\n{:<12} | {:>9} | {:>11} | {:>13}",
        "gene", "length", "mean depth", "breadth ≥1x"
    );
    println!("{}", "-".repeat(54));
    for ((name, len), track) in set.records().iter().zip(&mut tracks) {
        println!(
            "{:<12} | {:>9} | {:>10.2}x | {:>12.1}%",
            name,
            len,
            track.mean_depth(0..*len),
            track.breadth(0..*len, 1) * 100.0
        );
    }
    println!(
        "\n{unmapped} reads unmapped | {:.3}s simulated on the SoC | {:.2} J",
        run.simulated_seconds, run.energy.energy_j
    );
    println!(
        "the embedded-genomics pitch of §IV: this panel costs millijoules-per-read\n\
         on a battery-powered device instead of a workstation."
    );
    Ok(())
}
